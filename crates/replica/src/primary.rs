//! Primary-tier replica: Byzantine serialization + certified dissemination
//! (§4.4.3, §4.4.4).
//!
//! Each primary embeds a PBFT replica (from `oceanstore-consensus`). When
//! agreement executes an update, the primary deterministically applies it
//! to its object store, signs the resulting commit record, and sends its
//! signature share to the record's *disseminator* (a tier member chosen by
//! rotation). The disseminator assembles an `m + 1`-of-`n` serialization
//! certificate — the offline-verifiable artifact of §4.4.3 — and pushes the
//! certified record into the dissemination tree.

use std::collections::HashMap;
use std::sync::Arc;

use oceanstore_consensus::messages::PbftMsg;
use oceanstore_consensus::replica::{Replica, TierConfig};
use oceanstore_crypto::schnorr::{verify, KeyPair, Signature};
use oceanstore_crypto::threshold::SerializationCert;
use oceanstore_naming::guid::Guid;
use oceanstore_sim::{Context, NodeId};
use oceanstore_update::decode_update;

use crate::config::ChildMode;
use crate::messages::{CommitRecord, ReplicaMsg, TentativeId};
use crate::store::ObjectStore;

/// Encodes an agreement payload: object GUID followed by the encoded
/// update.
pub fn encode_payload(object: &Guid, update_bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(20 + update_bytes.len());
    out.extend_from_slice(object.as_bytes());
    out.extend_from_slice(update_bytes);
    out
}

/// Splits an agreement payload back into GUID and update bytes.
pub fn decode_payload(bytes: &[u8]) -> Option<(Guid, &[u8])> {
    if bytes.len() < 20 {
        return None;
    }
    let guid = Guid::from_bytes(bytes[..20].try_into().expect("20 bytes"));
    Some((guid, &bytes[20..]))
}

/// A primary-tier server.
#[derive(Debug)]
pub struct Primary {
    /// The embedded agreement machine.
    pbft: Replica,
    cfg: TierConfig,
    index: usize,
    keypair: KeyPair,
    /// Committed object state (primaries hold the active form too).
    pub store: ObjectStore,
    /// Dissemination-tree children fed by this primary when it
    /// disseminates.
    children: Vec<(NodeId, ChildMode)>,
    /// Executed agreement entries already turned into records.
    drained: usize,
    /// Certificate assembly: (object, index) → (record, cert so far).
    assembling: HashMap<(Guid, u64), (CommitRecord, SerializationCert)>,
    /// Records already disseminated (so late shares don't re-send).
    disseminated: std::collections::HashSet<(Guid, u64)>,
}

impl Primary {
    /// Creates primary `index` with its embedded PBFT replica.
    pub fn new(
        cfg: TierConfig,
        index: usize,
        keypair: KeyPair,
        fault: oceanstore_consensus::replica::FaultMode,
        children: Vec<(NodeId, ChildMode)>,
    ) -> Self {
        let pbft = Replica::new(cfg.clone(), index, keypair.clone(), fault);
        Primary {
            pbft,
            cfg,
            index,
            keypair,
            store: ObjectStore::new(),
            children,
            drained: 0,
            assembling: HashMap::new(),
            disseminated: Default::default(),
        }
    }

    /// Tier index of this primary.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The embedded agreement replica (tests / inspection).
    pub fn pbft(&self) -> &Replica {
        &self.pbft
    }

    /// Which tier member disseminates record `index` of `object`
    /// (rotation keyed by object and index so one faulty member only
    /// stalls a slice of traffic).
    fn disseminator(&self, object: &Guid, index: u64) -> usize {
        ((object.low_u64().wrapping_add(index)) % self.cfg.n() as u64) as usize
    }

    /// Handles an embedded agreement message, then turns any newly
    /// executed updates into signed commit records.
    pub fn on_pbft(&mut self, ctx: &mut Context<'_, ReplicaMsg>, from: NodeId, msg: PbftMsg) {
        ctx.with_inner(ReplicaMsg::Pbft, |ictx| self.pbft.on_message(ictx, from, msg));
        self.drain_executed(ctx);
    }

    /// Forwards an agreement timer.
    pub fn on_pbft_timer(&mut self, ctx: &mut Context<'_, ReplicaMsg>, tag: u64) {
        ctx.with_inner(ReplicaMsg::Pbft, |ictx| self.pbft.on_timer(ictx, tag));
        self.drain_executed(ctx);
    }

    fn drain_executed(&mut self, ctx: &mut Context<'_, ReplicaMsg>) {
        while self.drained < self.pbft.executed().len() {
            let entry = self.pbft.executed()[self.drained].clone();
            self.drained += 1;
            let Some((object, update_bytes)) = decode_payload(&entry.payload.bytes) else {
                continue; // malformed payload agreed on; logged nowhere to go
            };
            let Ok(update) = decode_update(update_bytes) else { continue };
            let id = TentativeId { client: entry.request.client, counter: entry.request.seq };
            let record = self.store.serialize_update(
                object,
                &update,
                Arc::new(update_bytes.to_vec()),
                entry.timestamp,
                id,
            );
            // Sign and route the share to the disseminator.
            let sig = self.keypair.sign(&record.signing_bytes());
            let diss = self.disseminator(&object, record.index);
            let share = ReplicaMsg::ResultShare {
                object,
                index: record.index,
                update_digest: oceanstore_crypto::sha1::sha1(&record.update),
                version: record.version,
                replica: self.index,
                sig,
            };
            if diss == self.index {
                self.accept_share(ctx, object, record.index, self.index, sig);
            } else {
                ctx.send(self.cfg.members[diss], share);
            }
        }
    }

    /// Handles a signature share (we are the disseminator for it).
    #[allow(clippy::too_many_arguments)]
    pub fn on_result_share(
        &mut self,
        ctx: &mut Context<'_, ReplicaMsg>,
        object: Guid,
        index: u64,
        update_digest: [u8; 20],
        version: Option<u64>,
        replica: usize,
        sig: Signature,
    ) {
        // Only meaningful once we executed the same record ourselves.
        let our: Vec<CommitRecord> = self.store.records_from(&object, index);
        let Some(record) = our.first().filter(|r| r.index == index) else {
            // We haven't executed this far yet; shares from faster peers
            // will be re-derived when we do (they also resend via fetch).
            return;
        };
        if oceanstore_crypto::sha1::sha1(&record.update) != update_digest
            || record.version != version
        {
            return; // share disagrees with our deterministic result
        }
        let Some(key) = self.cfg.replica_keys.get(replica) else { return };
        if !verify(*key, &record.signing_bytes(), &sig) {
            return;
        }
        self.accept_share(ctx, object, index, replica, sig);
    }

    fn accept_share(
        &mut self,
        ctx: &mut Context<'_, ReplicaMsg>,
        object: Guid,
        index: u64,
        replica: usize,
        sig: Signature,
    ) {
        if self.disseminated.contains(&(object, index)) {
            return;
        }
        let record = {
            let recs = self.store.records_from(&object, index);
            match recs.into_iter().next() {
                Some(r) if r.index == index => r,
                _ => return,
            }
        };
        let entry = self
            .assembling
            .entry((object, index))
            .or_insert_with(|| (record, SerializationCert::new()));
        entry.1.add(self.cfg.replica_keys[replica], sig);
        // Make sure our own share is always in the pool.
        let own = self.keypair.sign(&entry.0.signing_bytes());
        entry.1.add(self.keypair.public(), own);
        if entry.1.valid_count(&entry.0.signing_bytes(), &self.cfg.replica_keys)
            > self.cfg.m
        {
            let (mut record, cert) = self
                .assembling
                .remove(&(object, index))
                .expect("entry just touched");
            record.cert = cert.clone();
            // Persist the cert so fetch responses serve verifiable records.
            self.store.set_cert(&object, index, cert);
            self.disseminated.insert((object, index));
            for (child, mode) in self.children.clone() {
                match mode {
                    ChildMode::Push => ctx.send(child, ReplicaMsg::Commit(record.clone())),
                    ChildMode::Invalidate => ctx.send(
                        child,
                        ReplicaMsg::Invalidate {
                            object,
                            index: record.index,
                            version: record.version,
                        },
                    ),
                }
            }
        }
    }

    /// Adopts an orphaned secondary as a dissemination child (the
    /// last-resort rejoin path: the primary ring is always attachable).
    pub fn on_attach(&mut self, ctx: &mut Context<'_, ReplicaMsg>, from: NodeId) {
        if !self.children.iter().any(|(c, _)| *c == from) {
            self.children.push((from, ChildMode::Push));
        }
        ctx.send(from, ReplicaMsg::AttachOk { grandparent: None });
    }

    /// Serves the pull path for children and stale secondaries.
    pub fn on_fetch(
        &mut self,
        ctx: &mut Context<'_, ReplicaMsg>,
        from: NodeId,
        object: Guid,
        from_index: u64,
    ) {
        // Only serve records whose certificate is assembled; a record
        // without one is unverifiable for the requester.
        let records: Vec<_> = self
            .store
            .records_from(&object, from_index)
            .into_iter()
            .filter(|r| !r.cert.is_empty())
            .collect();
        if !records.is_empty() {
            ctx.send(from, ReplicaMsg::Commits { records });
        }
    }
}
