//! Wire messages of the two-tier replication layer (§4.4.3, §4.4.4).

use std::sync::Arc;

use oceanstore_consensus::messages::PbftMsg;
use oceanstore_crypto::schnorr::Signature;
use oceanstore_crypto::threshold::SerializationCert;
use oceanstore_naming::guid::Guid;
use oceanstore_sim::{Message, NodeId};

/// Identity of a tentative update: (origin client, client-local counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TentativeId {
    /// Client that generated the update.
    pub client: NodeId,
    /// Client-local counter.
    pub counter: u64,
}

/// A commit record as certified by the primary tier and streamed down the
/// dissemination tree.
#[derive(Debug, Clone)]
pub struct CommitRecord {
    /// The object this commit belongs to.
    pub object: Guid,
    /// Per-object serialization index (dense, starting at 0; counts aborts
    /// too — "the update itself is logged regardless").
    pub index: u64,
    /// The encoded update.
    pub update: Arc<Vec<u8>>,
    /// Resulting version if the update committed; `None` if it aborted.
    pub version: Option<u64>,
    /// Client timestamp (tentative-order hint).
    pub timestamp: u64,
    /// Tentative identity, for reconciling the optimistic path.
    pub id: TentativeId,
    /// k-of-n certificate from the primary tier over this record.
    pub cert: SerializationCert,
}

impl CommitRecord {
    /// The bytes the tier signs for this record.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut out = b"commit-record".to_vec();
        out.extend_from_slice(self.object.as_bytes());
        out.extend_from_slice(&self.index.to_be_bytes());
        out.extend_from_slice(&oceanstore_crypto::sha1::sha1(&self.update));
        match self.version {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_be_bytes());
            }
            None => out.push(0),
        }
        out
    }

    /// Wire size of the record inside messages.
    pub fn wire_size(&self) -> usize {
        Guid::WIRE_SIZE + 8 + self.update.len() + 9 + 8 + 16 + self.cert.wire_size()
    }
}

/// Messages of the replication layer.
#[derive(Debug, Clone)]
pub enum ReplicaMsg {
    /// An embedded Byzantine-agreement message (primary tier traffic).
    Pbft(PbftMsg),
    /// An optimistic update spreading epidemically among secondaries
    /// (Figure 5b).
    Tentative {
        /// Target object.
        object: Guid,
        /// Encoded update.
        update: Arc<Vec<u8>>,
        /// Client's optimistic timestamp.
        timestamp: u64,
        /// Identity for dedup/reconciliation.
        id: TentativeId,
    },
    /// A primary replica's signature share over a commit record, sent to
    /// the disseminating replica.
    ResultShare {
        /// Record being vouched for (without a cert yet).
        object: Guid,
        /// Per-object serialization index.
        index: u64,
        /// Digest of the encoded update.
        update_digest: [u8; 20],
        /// Resulting version (None = abort).
        version: Option<u64>,
        /// Tier index of the signer.
        replica: usize,
        /// Signature over the record's signing bytes.
        sig: Signature,
    },
    /// A signature share re-routed to a fallback disseminator after the
    /// original failed to certify the record within the deadline. The
    /// fallback for attempt `a` is tier member `(base + a) % n`, so any
    /// `f + 1` consecutive attempts reach at least one live member.
    ShareRebroadcast {
        /// Record being vouched for (without a cert yet).
        object: Guid,
        /// Per-object serialization index.
        index: u64,
        /// Digest of the encoded update.
        update_digest: [u8; 20],
        /// Resulting version (None = abort).
        version: Option<u64>,
        /// Tier index of the signer.
        replica: usize,
        /// Signature over the record's signing bytes.
        sig: Signature,
        /// Failover attempt number (1 = first fallback).
        attempt: u64,
    },
    /// Tier-internal: the serialization certificate for `(object, index)`
    /// exists. Signers stop their retry timers, and every member stores
    /// the cert so *any* live primary can serve the record on the pull
    /// path (not just the disseminator that assembled it).
    CertFormed {
        /// The certified object.
        object: Guid,
        /// Per-object serialization index.
        index: u64,
        /// The assembled `m + 1`-of-`n` certificate.
        cert: SerializationCert,
    },
    /// A certified commit pushed down the dissemination tree (Figure 5c).
    Commit(CommitRecord),
    /// Delivery acknowledgment for a tier→tree `Commit` push. A secondary
    /// that holds `(object, index)` certified and received it (or a
    /// duplicate) from a *primary* acks the whole primary ring, so the
    /// disseminator's re-push schedule and every observer primary's
    /// watchdog stand down together. Acks from deeper tree edges are never
    /// generated (secondary parents repair through anti-entropy instead).
    CommitAck {
        /// The acknowledged object.
        object: Guid,
        /// Per-object serialization index now held certified.
        index: u64,
    },
    /// Leaf-edge transformation: "dissemination trees transform updates
    /// into invalidations ... at the leaves of the network where bandwidth
    /// is limited" (§4.4.3).
    Invalidate {
        /// The stale object.
        object: Guid,
        /// Serialization index the child is now behind.
        index: u64,
        /// Latest version number.
        version: Option<u64>,
    },
    /// Pull path: give me commit records from `from_index` on.
    FetchCommits {
        /// Object to catch up.
        object: Guid,
        /// First missing index.
        from_index: u64,
    },
    /// Response to [`ReplicaMsg::FetchCommits`].
    Commits {
        /// The records, in index order.
        records: Vec<CommitRecord>,
    },
    /// Periodic anti-entropy summary between secondaries.
    AntiEntropy {
        /// Object being summarized.
        object: Guid,
        /// Sender's next expected commit index.
        committed_index: u64,
        /// Tentative updates the sender holds.
        tentative_ids: Vec<TentativeId>,
    },
    /// Liveness probe from a dissemination-tree child to its parent.
    Ping,
    /// Liveness reply to [`ReplicaMsg::Ping`].
    Pong,
    /// An orphaned secondary (its parent stopped answering) asking to be
    /// adopted as a dissemination child.
    Attach,
    /// Adoption granted: the sender now feeds the requester commits.
    AttachOk {
        /// The adopter's own parent, which becomes the requester's new
        /// grandparent (next-in-line re-parenting candidate).
        grandparent: Option<NodeId>,
    },
}

impl Message for ReplicaMsg {
    fn wire_size(&self) -> usize {
        match self {
            ReplicaMsg::Pbft(m) => m.wire_size(),
            ReplicaMsg::Tentative { update, .. } => Guid::WIRE_SIZE + update.len() + 32,
            ReplicaMsg::ResultShare { .. } => {
                Guid::WIRE_SIZE + 8 + 20 + 9 + 8 + Signature::WIRE_SIZE
            }
            ReplicaMsg::ShareRebroadcast { .. } => {
                Guid::WIRE_SIZE + 8 + 20 + 9 + 8 + Signature::WIRE_SIZE + 8
            }
            ReplicaMsg::CertFormed { cert, .. } => Guid::WIRE_SIZE + 8 + cert.wire_size(),
            ReplicaMsg::Commit(r) => r.wire_size(),
            ReplicaMsg::CommitAck { .. } => Guid::WIRE_SIZE + 8,
            ReplicaMsg::Invalidate { .. } => Guid::WIRE_SIZE + 24,
            ReplicaMsg::FetchCommits { .. } => Guid::WIRE_SIZE + 16,
            ReplicaMsg::Commits { records } => {
                16 + records.iter().map(CommitRecord::wire_size).sum::<usize>()
            }
            ReplicaMsg::AntiEntropy { tentative_ids, .. } => {
                Guid::WIRE_SIZE + 16 + tentative_ids.len() * 16
            }
            ReplicaMsg::Ping | ReplicaMsg::Pong => 8,
            ReplicaMsg::Attach => 8,
            ReplicaMsg::AttachOk { .. } => 16,
        }
    }

    fn class(&self) -> &'static str {
        match self {
            ReplicaMsg::Pbft(m) => m.class(),
            ReplicaMsg::Tentative { .. } => "replica/tentative",
            ReplicaMsg::ResultShare { .. } => "replica/resultshare",
            ReplicaMsg::ShareRebroadcast { .. } => "replica/sharerebroadcast",
            ReplicaMsg::CertFormed { .. } => "replica/certformed",
            ReplicaMsg::Commit(_) => "replica/commit",
            ReplicaMsg::CommitAck { .. } => "replica/commitack",
            ReplicaMsg::Invalidate { .. } => "replica/invalidate",
            ReplicaMsg::FetchCommits { .. } => "replica/fetch",
            ReplicaMsg::Commits { .. } => "replica/commits",
            ReplicaMsg::AntiEntropy { .. } => "replica/antientropy",
            ReplicaMsg::Ping | ReplicaMsg::Pong => "replica/heartbeat",
            ReplicaMsg::Attach | ReplicaMsg::AttachOk { .. } => "replica/attach",
        }
    }
}
