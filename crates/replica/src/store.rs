//! Per-server object store: committed state, a *bounded* commit-record
//! log, and the content-addressed blob layer underneath.
//!
//! Two changes over the original in-memory-only store:
//!
//! * **Block state routes through a [`BlobStore`]** (§4.5's
//!   content-addressed storage made real): every data block of an
//!   object's committed version is mirrored into a pluggable blob store
//!   under its CID, with refcounted dedup. The in-memory `DataObject`
//!   stays authoritative for deterministic re-execution — the blob layer
//!   is the storage backend, and reads that miss it (a dead provider, a
//!   corrupt disk blob) fall back to the replica, which is exactly the
//!   paper's durability argument: any server can hold a replica, so no
//!   single provider's death loses committed data.
//! * **The record log is bounded.** `records` used to grow by one
//!   `CommitRecord` per commit forever — O(total commits) memory even
//!   after PR 6 bounded the consensus log. The log is now dense from
//!   [`ObjectState::first_index`] and truncated below
//!   `certified frontier − retention`: anti-entropy and fetch serving
//!   come from the retained (certified) suffix only, and history the
//!   whole tier has certified is dropped.

use std::collections::HashMap;
use std::sync::Arc;

use oceanstore_naming::guid::Guid;
use oceanstore_store::{BlobStore, DedupStore};
use oceanstore_update::object::{Block, DataObject};
use oceanstore_update::update::{apply, Outcome};
use oceanstore_update::{decode_update, Update};

use crate::messages::CommitRecord;

/// Commit records retained *below* the certified frontier. Matches the
/// consensus admission window (PR 6), so a peer the agreement protocol
/// still talks to can always be served record-by-record; anything
/// further behind recovers via the state-transfer / frontier paths. The
/// pinned short-run suites never certify this many records per object,
/// so the default changes no golden trace.
pub const RECORD_RETENTION: u64 = 128;

/// Per-slot blob-sync cache: which `Arc` we last hashed for this slot,
/// and the CID we stored it under.
#[derive(Debug, Clone)]
struct SlotSync {
    /// `Arc::as_ptr` of the block last synced (cheap change detection —
    /// versions share unchanged blocks by `Arc`).
    ptr: usize,
    /// The block's CID in the blob store.
    cid: Guid,
}

/// One object's replicated state on a server.
#[derive(Debug, Default)]
pub struct ObjectState {
    /// The committed object (active form).
    pub data: DataObject,
    /// Commit records in index order, dense from `first_index`.
    pub records: Vec<CommitRecord>,
    /// Log floor: records below this index have been certified tier-wide
    /// and truncated.
    pub first_index: u64,
    /// Next expected serialization index.
    pub next_index: u64,
    /// For invalidation-mode children: highest index known to exist (may
    /// exceed `next_index` when stale).
    pub known_index: u64,
    /// All indices below this carry a serialization certificate.
    certified_upto: u64,
    /// Blob-sync state per block slot of the current version (`None` for
    /// index blocks and slots whose last put was refused).
    slots: Vec<Option<SlotSync>>,
}

impl ObjectState {
    /// Whether this replica knows it is missing commits.
    pub fn is_stale(&self) -> bool {
        self.known_index > self.next_index
    }

    /// Records currently retained for this object.
    pub fn retained_records(&self) -> u64 {
        self.records.len() as u64
    }
}

/// Aggregate store-health counters, exported field-by-field to the
/// introspection gauges (the replica crate stays free of an introspect
/// dependency, mirroring how consensus exports `ReplicaHealth`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreHealth {
    /// Objects resident.
    pub objects: u64,
    /// Commit records currently retained across all objects.
    pub retained_records: u64,
    /// Peak of `retained_records` over the store's lifetime.
    pub peak_retained_records: u64,
    /// Records ever applied (monotonic; the O(total commits) quantity the
    /// retained count must stay decoupled from).
    pub total_records_applied: u64,
    /// Records dropped below the certified low-water mark.
    pub records_dropped: u64,
    /// Blobs held by the backend.
    pub blob_count: u64,
    /// Logical bytes held by the backend.
    pub blob_bytes: u64,
    /// Dedup hits (puts elided by refcounting).
    pub dedup_hits: u64,
    /// Bytes those elided puts saved.
    pub dedup_bytes_saved: u64,
    /// Block reads the blob layer missed and the in-memory replica
    /// served instead (dead provider, corrupt blob).
    pub fallback_reads: u64,
    /// Block puts the backend refused (retried on the next commit).
    pub blob_put_failures: u64,
}

/// A server's store of replicated objects.
#[derive(Debug)]
pub struct ObjectStore {
    objects: HashMap<Guid, ObjectState>,
    /// The pluggable content-addressed backend, dedup-wrapped.
    blobs: DedupStore,
    /// Records kept below the certified frontier.
    retention: u64,
    /// Σ `records.len()` across objects (kept incrementally).
    retained_total: u64,
    peak_retained: u64,
    total_applied: u64,
    dropped: u64,
    fallback_reads: u64,
    blob_put_failures: u64,
}

impl Default for ObjectStore {
    fn default() -> Self {
        ObjectStore::new()
    }
}

impl ObjectStore {
    /// An empty store over the environment-selected blob backend
    /// (`OCEANSTORE_STORE_BACKEND`; in-memory by default).
    pub fn new() -> Self {
        Self::with_backend(oceanstore_store::default_store())
    }

    /// An empty store over a specific blob backend.
    pub fn with_backend(backend: Box<dyn BlobStore>) -> Self {
        ObjectStore {
            objects: HashMap::new(),
            blobs: DedupStore::new(backend),
            retention: RECORD_RETENTION,
            retained_total: 0,
            peak_retained: 0,
            total_applied: 0,
            dropped: 0,
            fallback_reads: 0,
            blob_put_failures: 0,
        }
    }

    /// Swaps the blob backend (chaos scenarios wire provider composites
    /// in before traffic starts). Existing objects re-sync their block
    /// state into the new backend immediately.
    pub fn set_blob_store(&mut self, backend: Box<dyn BlobStore>) {
        self.blobs = DedupStore::new(backend);
        for st in self.objects.values_mut() {
            st.slots.clear();
            self.blob_put_failures +=
                sync_blocks(&mut self.blobs, st);
        }
    }

    /// Overrides the record-log retention window (tests and the
    /// unbounded-baseline bench side use this; deployments keep
    /// [`RECORD_RETENTION`]).
    pub fn set_record_retention(&mut self, retention: u64) {
        self.retention = retention;
    }

    /// State for `object`, creating an empty one on first touch.
    pub fn entry(&mut self, object: Guid) -> &mut ObjectState {
        self.objects.entry(object).or_default()
    }

    /// Read-only lookup.
    pub fn get(&self, object: &Guid) -> Option<&ObjectState> {
        self.objects.get(object)
    }

    /// All object GUIDs present.
    pub fn guids(&self) -> impl Iterator<Item = &Guid> {
        self.objects.keys()
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Point-in-time store-health counters.
    pub fn health(&self) -> StoreHealth {
        let blob = self.blobs.stats();
        let dedup = self.blobs.dedup_stats();
        StoreHealth {
            objects: self.objects.len() as u64,
            retained_records: self.retained_total,
            peak_retained_records: self.peak_retained,
            total_records_applied: self.total_applied,
            records_dropped: self.dropped,
            blob_count: blob.blobs,
            blob_bytes: blob.bytes,
            dedup_hits: dedup.hits,
            dedup_bytes_saved: dedup.bytes_saved,
            fallback_reads: self.fallback_reads,
            blob_put_failures: self.blob_put_failures,
        }
    }

    /// Applies `record` if it is the next expected index. Returns `true`
    /// if applied (or already applied), `false` if a gap remains.
    ///
    /// The record's embedded outcome is **recomputed locally** — a correct
    /// replica never trusts the claimed version without the deterministic
    /// re-execution matching (the cert's job is authenticating the
    /// *serialization order*, determinism does the rest).
    pub fn apply_record(&mut self, record: &CommitRecord) -> bool {
        let st = self.objects.entry(record.object).or_default();
        st.known_index = st.known_index.max(record.index + 1);
        if record.index < st.next_index {
            return true; // duplicate
        }
        if record.index > st.next_index {
            return false; // gap
        }
        let outcome = match decode_update(&record.update) {
            Ok(update) => apply(&mut st.data, &update),
            Err(_) => Outcome::Aborted(oceanstore_update::update::AbortReason::NoPredicateHeld),
        };
        debug_assert_eq!(
            match &outcome {
                Outcome::Committed { version } => Some(*version),
                Outcome::Aborted(_) => None,
            },
            record.version,
            "deterministic replay must match the tier's outcome"
        );
        st.records.push(record.clone());
        st.next_index += 1;
        self.retained_total += 1;
        self.total_applied += 1;
        self.peak_retained = self.peak_retained.max(self.retained_total);
        self.blob_put_failures += sync_blocks(&mut self.blobs, st);
        self.note_certs(record.object);
        true
    }

    /// Attaches an assembled serialization certificate to a stored record
    /// (primary-tier path: records are created before their cert exists).
    /// An index below the log floor is already certified and truncated —
    /// a no-op.
    pub fn set_cert(
        &mut self,
        object: &Guid,
        index: u64,
        cert: oceanstore_crypto::threshold::SerializationCert,
    ) {
        if let Some(st) = self.objects.get_mut(object) {
            if let Some(r) = st.records.iter_mut().find(|r| r.index == index) {
                r.cert = cert;
            }
        }
        self.note_certs(*object);
    }

    /// Advances the certified frontier past every dense leading cert and
    /// truncates history below `frontier − retention`. Serving stays on
    /// the retained suffix; everything dropped was certified tier-wide.
    fn note_certs(&mut self, object: Guid) {
        let Some(st) = self.objects.get_mut(&object) else { return };
        if st.certified_upto < st.first_index {
            // A fresh entry starts at 0; certification is only tracked
            // from the log floor up.
            st.certified_upto = st.first_index;
        }
        while let Some(r) = st.records.get((st.certified_upto - st.first_index) as usize) {
            if r.cert.is_empty() {
                break;
            }
            st.certified_upto += 1;
        }
        let low_water = st.certified_upto.saturating_sub(self.retention);
        if low_water > st.first_index {
            let drop = (low_water - st.first_index) as usize;
            st.records.drain(..drop);
            st.first_index = low_water;
            self.retained_total -= drop as u64;
            self.dropped += drop as u64;
        }
    }

    /// Serialized-but-unapplied catch-up: retained commit records from
    /// `from_index` up. History below the log floor is gone — callers
    /// that far behind recover through the frontier/state-transfer
    /// paths, not record replay.
    pub fn records_from(&self, object: &Guid, from_index: u64) -> Vec<CommitRecord> {
        let Some(st) = self.objects.get(object) else { return Vec::new() };
        st.records
            .iter()
            .filter(|r| r.index >= from_index)
            .cloned()
            .collect()
    }

    /// Serializes and applies `update` directly (primary-tier path, where
    /// the order is already decided). Returns the new record (without
    /// cert).
    pub fn serialize_update(
        &mut self,
        object: Guid,
        update: &Update,
        encoded: Arc<Vec<u8>>,
        timestamp: u64,
        id: crate::messages::TentativeId,
    ) -> CommitRecord {
        let st = self.objects.entry(object).or_default();
        let outcome = apply(&mut st.data, update);
        let version = match outcome {
            Outcome::Committed { version } => Some(version),
            Outcome::Aborted(_) => None,
        };
        let record = CommitRecord {
            object,
            index: st.next_index,
            update: encoded,
            version,
            timestamp,
            id,
            cert: Default::default(),
        };
        st.records.push(record.clone());
        st.next_index += 1;
        st.known_index = st.known_index.max(st.next_index);
        self.retained_total += 1;
        self.total_applied += 1;
        self.peak_retained = self.peak_retained.max(self.retained_total);
        self.blob_put_failures += sync_blocks(&mut self.blobs, st);
        record
    }

    /// Reads one data-block slot of `object`'s committed version through
    /// the blob layer, falling back to the in-memory replica when the
    /// backend misses (dead provider, corrupt blob) — committed data
    /// survives any single store's death because the replica *is* a
    /// store of it.
    pub fn read_block(&mut self, object: &Guid, slot: usize) -> Option<Vec<u8>> {
        let st = self.objects.get(object)?;
        let version = Arc::clone(st.data.current());
        let Block::Data(mem) = version.blocks.get(slot)? else { return None };
        let mem = Arc::clone(mem);
        let synced = st.slots.get(slot).cloned().flatten();
        if let Some(s) = synced {
            if let Ok(Some(bytes)) = self.blobs.get(&s.cid) {
                return Some(bytes);
            }
        }
        self.fallback_reads += 1;
        Some(mem.as_ref().clone())
    }

    /// Reads `object`'s full committed byte sequence (logical block
    /// order) through the blob layer with replica fallback.
    pub fn read_object_bytes(&mut self, object: &Guid) -> Option<Vec<u8>> {
        let version = Arc::clone(self.objects.get(object)?.data.current());
        let mut out = Vec::new();
        for slot in version.logical_order() {
            out.extend_from_slice(&self.read_block(object, slot)?);
        }
        Some(out)
    }
}

/// Mirrors the current version's data blocks into the blob store:
/// changed/new slots are put (dedup-refcounted), replaced/removed slots
/// drop their reference. Returns the number of refused puts.
fn sync_blocks(blobs: &mut DedupStore, st: &mut ObjectState) -> u64 {
    let version = Arc::clone(st.data.current());
    let blocks = &version.blocks;
    let mut failures = 0;
    // Slots removed by a shrinking version drop their blob references.
    for old in st.slots.drain(blocks.len().min(st.slots.len())..).flatten() {
        let _ = blobs.delete(&old.cid);
    }
    for (i, block) in blocks.iter().enumerate() {
        let desired = match block {
            Block::Data(d) => Some(Arc::as_ptr(d) as *const u8 as usize),
            Block::Index(_) => None,
        };
        if i < st.slots.len() {
            if st.slots[i].as_ref().map(|s| s.ptr) == desired
                && (desired.is_some() || st.slots[i].is_none())
            {
                continue; // unchanged slot (or still an index block)
            }
            if let Some(old) = st.slots[i].take() {
                let _ = blobs.delete(&old.cid);
            }
        } else {
            st.slots.push(None);
        }
        if let Block::Data(d) = block {
            match blobs.put(d) {
                Ok(cid) => {
                    st.slots[i] = Some(SlotSync { ptr: Arc::as_ptr(d) as *const u8 as usize, cid })
                }
                Err(_) => failures += 1, // retried on the next commit
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::TentativeId;
    use oceanstore_crypto::threshold::SerializationCert;
    use oceanstore_sim::NodeId;
    use oceanstore_store::cid_of;
    use oceanstore_update::encode_update;
    use oceanstore_update::update::Action;

    fn update(tag: u8) -> (Update, Arc<Vec<u8>>) {
        let u = Update::unconditional(vec![Action::Append { ciphertext: vec![tag; 4] }]);
        let enc = Arc::new(encode_update(&u));
        (u, enc)
    }

    fn tid(c: u64) -> TentativeId {
        TentativeId { client: NodeId(99), counter: c }
    }

    /// A cert that counts as "present" for frontier tracking (store-level
    /// tests don't verify signatures; ingest paths do that upstream).
    fn fake_cert() -> SerializationCert {
        let kp = oceanstore_crypto::schnorr::KeyPair::from_seed(b"store-test-signer");
        let mut cert = SerializationCert::new();
        cert.add(kp.public(), kp.sign(b"store-test"));
        cert
    }

    #[test]
    fn serialize_then_replay_elsewhere() {
        let obj = Guid::from_label("o");
        let mut primary = ObjectStore::new();
        let mut secondary = ObjectStore::new();
        for (i, tag) in [1u8, 2, 3].iter().enumerate() {
            let (u, enc) = update(*tag);
            let rec = primary.serialize_update(obj, &u, enc, i as u64, tid(i as u64));
            assert!(secondary.apply_record(&rec));
        }
        let p = primary.get(&obj).unwrap();
        let s = secondary.get(&obj).unwrap();
        assert_eq!(p.data.current().blocks, s.data.current().blocks);
        assert_eq!(s.next_index, 3);
    }

    #[test]
    fn gap_detected_and_catchup_works() {
        let obj = Guid::from_label("o");
        let mut primary = ObjectStore::new();
        let mut secondary = ObjectStore::new();
        let mut recs = Vec::new();
        for i in 0..4u8 {
            let (u, enc) = update(i);
            recs.push(primary.serialize_update(obj, &u, enc, i as u64, tid(i as u64)));
        }
        // Deliver out of order: record 2 first.
        assert!(!secondary.apply_record(&recs[2]));
        assert!(secondary.entry(obj).is_stale());
        // Catch up from the primary's log.
        for r in primary.records_from(&obj, 0) {
            assert!(secondary.apply_record(&r));
        }
        assert_eq!(secondary.get(&obj).unwrap().next_index, 4);
        assert!(!secondary.entry(obj).is_stale());
    }

    #[test]
    fn duplicates_are_idempotent() {
        let obj = Guid::from_label("o");
        let mut primary = ObjectStore::new();
        let mut secondary = ObjectStore::new();
        let (u, enc) = update(1);
        let rec = primary.serialize_update(obj, &u, enc, 0, tid(0));
        assert!(secondary.apply_record(&rec));
        assert!(secondary.apply_record(&rec));
        assert_eq!(secondary.get(&obj).unwrap().next_index, 1);
        assert_eq!(secondary.get(&obj).unwrap().data.version_number(), 1);
    }

    #[test]
    fn aborted_updates_advance_index_not_version() {
        use oceanstore_update::update::Predicate;
        let obj = Guid::from_label("o");
        let mut primary = ObjectStore::new();
        let u = Update::default().with_clause(Predicate::CompareVersion(42), vec![]);
        let enc = Arc::new(encode_update(&u));
        let rec = primary.serialize_update(obj, &u, enc, 0, tid(0));
        assert_eq!(rec.version, None);
        let st = primary.get(&obj).unwrap();
        assert_eq!(st.next_index, 1);
        assert_eq!(st.data.version_number(), 0);
    }

    #[test]
    fn committed_blocks_route_through_the_blob_store() {
        let obj = Guid::from_label("blobs");
        let mut store = ObjectStore::new();
        for i in 0..3u8 {
            let (u, enc) = update(i);
            store.serialize_update(obj, &u, enc, i as u64, tid(i as u64));
        }
        let health = store.health();
        assert_eq!(health.blob_count, 3, "one blob per distinct appended block");
        assert_eq!(health.blob_bytes, 12);
        // The blob layer serves each block under its CID.
        for (slot, tag) in [(0usize, 0u8), (1, 1), (2, 2)] {
            assert_eq!(store.read_block(&obj, slot).unwrap(), vec![tag; 4]);
        }
        assert_eq!(store.health().fallback_reads, 0, "healthy backend, no fallback");
        assert_eq!(
            store.read_object_bytes(&obj).unwrap(),
            [vec![0u8; 4], vec![1u8; 4], vec![2u8; 4]].concat()
        );
    }

    #[test]
    fn identical_blocks_dedup_across_objects() {
        let mut store = ObjectStore::new();
        for label in ["a", "b", "c"] {
            let (u, enc) = update(7); // same block bytes everywhere
            store.serialize_update(Guid::from_label(label), &u, enc, 0, tid(0));
        }
        let health = store.health();
        assert_eq!(health.blob_count, 1, "identical content stored once");
        assert_eq!(health.dedup_hits, 2);
        assert_eq!(health.dedup_bytes_saved, 8);
    }

    #[test]
    fn dead_backend_reads_fall_back_to_the_replica() {
        use oceanstore_store::{SharedStore, SimRemoteStore};
        let provider = SharedStore::new(SimRemoteStore::new(1, 0, 0.0));
        let mut store = ObjectStore::with_backend(Box::new(provider.clone()));
        let obj = Guid::from_label("fallback");
        let (u, enc) = update(9);
        store.serialize_update(obj, &u, enc, 0, tid(0));
        assert_eq!(store.read_block(&obj, 0).unwrap(), vec![9u8; 4]);
        assert_eq!(store.health().fallback_reads, 0);
        provider.with(|p| p.set_down(true));
        // The provider is dead; the committed bytes still read.
        assert_eq!(store.read_block(&obj, 0).unwrap(), vec![9u8; 4]);
        assert_eq!(store.health().fallback_reads, 1);
        assert_eq!(
            store.read_object_bytes(&obj).unwrap(),
            vec![9u8; 4],
            "object reads survive provider death via the replica"
        );
    }

    #[test]
    fn writes_to_a_dead_backend_do_not_lose_commits() {
        use oceanstore_store::{SharedStore, SimRemoteStore};
        let provider = SharedStore::new(SimRemoteStore::new(2, 0, 0.0));
        provider.with(|p| p.set_down(true));
        let mut store = ObjectStore::with_backend(Box::new(provider.clone()));
        let obj = Guid::from_label("dead-writes");
        let (u, enc) = update(4);
        store.serialize_update(obj, &u, enc, 0, tid(0));
        assert!(store.health().blob_put_failures > 0);
        assert_eq!(store.read_block(&obj, 0).unwrap(), vec![4u8; 4], "replica serves");
        // Provider revives: the next commit re-syncs everything pending.
        provider.with(|p| p.set_down(false));
        let (u, enc) = update(5);
        store.serialize_update(obj, &u, enc, 1, tid(1));
        assert_eq!(store.health().blob_count, 2, "missed block re-synced on next commit");
        assert!(provider.clone().has(&cid_of(&[4u8; 4])));
    }

    #[test]
    fn record_log_is_bounded_by_certified_frontier() {
        let obj = Guid::from_label("bounded");
        let mut store = ObjectStore::new();
        store.set_record_retention(16);
        let total = 200u64;
        for i in 0..total {
            let (u, enc) = update((i % 251) as u8);
            store.serialize_update(obj, &u, enc, i, tid(i));
            store.set_cert(&obj, i, fake_cert());
        }
        let st = store.get(&obj).unwrap();
        assert_eq!(st.next_index, total);
        assert_eq!(st.retained_records(), 16, "only the retention window survives");
        assert_eq!(st.first_index, total - 16);
        let health = store.health();
        assert_eq!(health.total_records_applied, total);
        assert_eq!(health.records_dropped, total - 16);
        assert!(
            health.peak_retained_records <= 17,
            "peak {} must track the window, not total commits",
            health.peak_retained_records
        );
        // Serving comes from the retained certified suffix only.
        let served = store.records_from(&obj, 0);
        assert_eq!(served.len(), 16);
        assert_eq!(served[0].index, total - 16);
        assert!(served.iter().all(|r| !r.cert.is_empty()));
    }

    #[test]
    fn uncertified_tail_is_never_truncated() {
        let obj = Guid::from_label("uncertified");
        let mut store = ObjectStore::new();
        store.set_record_retention(4);
        // 50 commits, none certified: the frontier never advances, so
        // nothing may be dropped (certs are the proof the tier has the
        // history; without them every record is still needed).
        for i in 0..50u64 {
            let (u, enc) = update(i as u8);
            store.serialize_update(obj, &u, enc, i, tid(i));
        }
        assert_eq!(store.get(&obj).unwrap().retained_records(), 50);
        // Certifying up to 40 allows truncation below 40 − retention.
        for i in 0..40u64 {
            store.set_cert(&obj, i, fake_cert());
        }
        let st = store.get(&obj).unwrap();
        assert_eq!(st.first_index, 36);
        assert_eq!(st.retained_records(), 14, "4 certified + 10 uncertified tail");
    }

    #[test]
    fn truncated_history_set_cert_is_a_noop() {
        let obj = Guid::from_label("late-cert");
        let mut store = ObjectStore::new();
        store.set_record_retention(2);
        for i in 0..10u64 {
            let (u, enc) = update(i as u8);
            store.serialize_update(obj, &u, enc, i, tid(i));
            store.set_cert(&obj, i, fake_cert());
        }
        assert_eq!(store.get(&obj).unwrap().first_index, 8);
        // A duplicate cert for dropped history must not panic or resurrect.
        store.set_cert(&obj, 1, fake_cert());
        assert_eq!(store.get(&obj).unwrap().first_index, 8);
        assert_eq!(store.get(&obj).unwrap().retained_records(), 2);
    }

    #[test]
    fn default_retention_never_truncates_short_runs() {
        let obj = Guid::from_label("short-run");
        let mut store = ObjectStore::new();
        for i in 0..100u64 {
            let (u, enc) = update(i as u8);
            store.serialize_update(obj, &u, enc, i, tid(i));
            store.set_cert(&obj, i, fake_cert());
        }
        // 100 < RECORD_RETENTION: the full log is retained, so every
        // pinned short-run schedule is byte-identical to the unbounded
        // behaviour.
        assert_eq!(store.get(&obj).unwrap().first_index, 0);
        assert_eq!(store.health().records_dropped, 0);
    }
}
