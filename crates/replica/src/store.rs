//! Per-server object store: committed state plus the commit-record log.

use std::collections::HashMap;
use std::sync::Arc;

use oceanstore_naming::guid::Guid;
use oceanstore_update::object::DataObject;
use oceanstore_update::update::{apply, Outcome};
use oceanstore_update::{decode_update, Update};

use crate::messages::CommitRecord;

/// One object's replicated state on a server.
#[derive(Debug, Default)]
pub struct ObjectState {
    /// The committed object (active form).
    pub data: DataObject,
    /// Commit records in index order (dense from `first_index`).
    pub records: Vec<CommitRecord>,
    /// Next expected serialization index.
    pub next_index: u64,
    /// For invalidation-mode children: highest index known to exist (may
    /// exceed `next_index` when stale).
    pub known_index: u64,
}

impl ObjectState {

    /// Whether this replica knows it is missing commits.
    pub fn is_stale(&self) -> bool {
        self.known_index > self.next_index
    }
}

/// A server's store of replicated objects.
#[derive(Debug, Default)]
pub struct ObjectStore {
    objects: HashMap<Guid, ObjectState>,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// State for `object`, creating an empty one on first touch.
    pub fn entry(&mut self, object: Guid) -> &mut ObjectState {
        self.objects.entry(object).or_default()
    }

    /// Read-only lookup.
    pub fn get(&self, object: &Guid) -> Option<&ObjectState> {
        self.objects.get(object)
    }

    /// All object GUIDs present.
    pub fn guids(&self) -> impl Iterator<Item = &Guid> {
        self.objects.keys()
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Applies `record` if it is the next expected index. Returns `true`
    /// if applied (or already applied), `false` if a gap remains.
    ///
    /// The record's embedded outcome is **recomputed locally** — a correct
    /// replica never trusts the claimed version without the deterministic
    /// re-execution matching (the cert's job is authenticating the
    /// *serialization order*, determinism does the rest).
    pub fn apply_record(&mut self, record: &CommitRecord) -> bool {
        let st = self.entry(record.object);
        st.known_index = st.known_index.max(record.index + 1);
        if record.index < st.next_index {
            return true; // duplicate
        }
        if record.index > st.next_index {
            return false; // gap
        }
        let outcome = match decode_update(&record.update) {
            Ok(update) => apply(&mut st.data, &update),
            Err(_) => Outcome::Aborted(oceanstore_update::update::AbortReason::NoPredicateHeld),
        };
        debug_assert_eq!(
            match &outcome {
                Outcome::Committed { version } => Some(*version),
                Outcome::Aborted(_) => None,
            },
            record.version,
            "deterministic replay must match the tier's outcome"
        );
        st.records.push(record.clone());
        st.next_index += 1;
        true
    }

    /// Attaches an assembled serialization certificate to a stored record
    /// (primary-tier path: records are created before their cert exists).
    pub fn set_cert(
        &mut self,
        object: &Guid,
        index: u64,
        cert: oceanstore_crypto::threshold::SerializationCert,
    ) {
        if let Some(st) = self.objects.get_mut(object) {
            if let Some(r) = st.records.iter_mut().find(|r| r.index == index) {
                r.cert = cert;
            }
        }
    }

    /// Serialized-but-unapplied catch-up: commit records from `from_index`.
    pub fn records_from(&self, object: &Guid, from_index: u64) -> Vec<CommitRecord> {
        let Some(st) = self.objects.get(object) else { return Vec::new() };
        st.records
            .iter()
            .filter(|r| r.index >= from_index)
            .cloned()
            .collect()
    }

    /// Serializes and applies `update` directly (primary-tier path, where
    /// the order is already decided). Returns the new record (without
    /// cert).
    pub fn serialize_update(
        &mut self,
        object: Guid,
        update: &Update,
        encoded: Arc<Vec<u8>>,
        timestamp: u64,
        id: crate::messages::TentativeId,
    ) -> CommitRecord {
        let st = self.entry(object);
        let outcome = apply(&mut st.data, update);
        let version = match outcome {
            Outcome::Committed { version } => Some(version),
            Outcome::Aborted(_) => None,
        };
        let record = CommitRecord {
            object,
            index: st.next_index,
            update: encoded,
            version,
            timestamp,
            id,
            cert: Default::default(),
        };
        st.records.push(record.clone());
        st.next_index += 1;
        st.known_index = st.known_index.max(st.next_index);
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::TentativeId;
    use oceanstore_sim::NodeId;
    use oceanstore_update::encode_update;
    use oceanstore_update::update::Action;

    fn update(tag: u8) -> (Update, Arc<Vec<u8>>) {
        let u = Update::unconditional(vec![Action::Append { ciphertext: vec![tag; 4] }]);
        let enc = Arc::new(encode_update(&u));
        (u, enc)
    }

    fn tid(c: u64) -> TentativeId {
        TentativeId { client: NodeId(99), counter: c }
    }

    #[test]
    fn serialize_then_replay_elsewhere() {
        let obj = Guid::from_label("o");
        let mut primary = ObjectStore::new();
        let mut secondary = ObjectStore::new();
        for (i, tag) in [1u8, 2, 3].iter().enumerate() {
            let (u, enc) = update(*tag);
            let rec = primary.serialize_update(obj, &u, enc, i as u64, tid(i as u64));
            assert!(secondary.apply_record(&rec));
        }
        let p = primary.get(&obj).unwrap();
        let s = secondary.get(&obj).unwrap();
        assert_eq!(p.data.current().blocks, s.data.current().blocks);
        assert_eq!(s.next_index, 3);
    }

    #[test]
    fn gap_detected_and_catchup_works() {
        let obj = Guid::from_label("o");
        let mut primary = ObjectStore::new();
        let mut secondary = ObjectStore::new();
        let mut recs = Vec::new();
        for i in 0..4u8 {
            let (u, enc) = update(i);
            recs.push(primary.serialize_update(obj, &u, enc, i as u64, tid(i as u64)));
        }
        // Deliver out of order: record 2 first.
        assert!(!secondary.apply_record(&recs[2]));
        assert!(secondary.entry(obj).is_stale());
        // Catch up from the primary's log.
        for r in primary.records_from(&obj, 0) {
            assert!(secondary.apply_record(&r));
        }
        assert_eq!(secondary.get(&obj).unwrap().next_index, 4);
        assert!(!secondary.entry(obj).is_stale());
    }

    #[test]
    fn duplicates_are_idempotent() {
        let obj = Guid::from_label("o");
        let mut primary = ObjectStore::new();
        let mut secondary = ObjectStore::new();
        let (u, enc) = update(1);
        let rec = primary.serialize_update(obj, &u, enc, 0, tid(0));
        assert!(secondary.apply_record(&rec));
        assert!(secondary.apply_record(&rec));
        assert_eq!(secondary.get(&obj).unwrap().next_index, 1);
        assert_eq!(secondary.get(&obj).unwrap().data.version_number(), 1);
    }

    #[test]
    fn aborted_updates_advance_index_not_version() {
        use oceanstore_update::update::Predicate;
        let obj = Guid::from_label("o");
        let mut primary = ObjectStore::new();
        let u = Update::default().with_clause(Predicate::CompareVersion(42), vec![]);
        let enc = Arc::new(encode_update(&u));
        let rec = primary.serialize_update(obj, &u, enc, 0, tid(0));
        assert_eq!(rec.version, None);
        let st = primary.get(&obj).unwrap();
        assert_eq!(st.next_index, 1);
        assert_eq!(st.data.version_number(), 0);
    }
}
