//! Ready-made two-tier deployments for tests, benches, and examples.
//!
//! One deployment is `rings` independent consensus rings (each a full PBFT
//! tier of `3m + 1` primaries) sharing a single secondary-tier substrate:
//! one binary dissemination tree, one epidemic peer set, one client
//! population. Objects are partitioned over the rings by a
//! [`ShardRouter`]; with `rings = 1` (the default) the layout, key seeds,
//! and schedule are bit-identical to the historical single-ring harness
//! that the pinned golden traces and chaos fingerprints depend on.

use std::collections::HashMap;

use oceanstore_consensus::replica::{CheckpointConfig, FaultMode, TierConfig};
use oceanstore_crypto::schnorr::KeyPair;
use oceanstore_naming::guid::Guid;
use oceanstore_sim::cluster::{tree_children, tree_grandparent, tree_parent, tree_sibling};
use oceanstore_sim::{ClusterSpec, NodeId, SimDuration, Simulator};

use crate::client::UpdateClient;
use crate::config::{ChildMode, FailoverConfig, RepushConfig, SecondaryConfig, SecondaryFault};
use crate::node::OceanNode;
use crate::primary::Primary;
use crate::secondary::Secondary;
use crate::shard::ShardRouter;

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct DeploymentOpts {
    /// Number of independent consensus rings sharing the secondary tier.
    pub rings: usize,
    /// Faults tolerated by each ring (ring size = 3m + 1 primaries).
    pub m: usize,
    /// Number of secondary replicas.
    pub secondaries: usize,
    /// Number of clients.
    pub clients: usize,
    /// Uniform one-way latency of the mesh.
    pub latency: SimDuration,
    /// Secondary indices fed by invalidation instead of full pushes.
    pub invalidate_leaves: Vec<usize>,
    /// Whether orphaned secondaries re-attach to the tree (disable to
    /// demonstrate the orphaned-subtree failure mode).
    pub reparent: bool,
    /// Override for the secondaries' anti-entropy period (`None` keeps the
    /// [`SecondaryConfig`] default). Chaos scenarios stretch this to
    /// isolate the dissemination tree from the epidemic repair path.
    pub anti_entropy: Option<SimDuration>,
    /// Whether signers re-route their shares past a crashed disseminator.
    /// Disable to demonstrate the single-disseminator liveness hole.
    pub failover: bool,
    /// Whether certified records stay on an acked re-push schedule until
    /// every `Push` child confirms them. Disable (or build with the
    /// `repush-off` feature, which flips this default) to fall back to
    /// anti-entropy-only repair of a lost tier→tree push.
    pub repush: bool,
    /// Secondary indices that run [`SecondaryFault::ForgeOnServe`].
    pub byzantine_secondaries: Vec<usize>,
    /// Checkpoint/GC knobs of the primary tiers (long-horizon chaos
    /// scenarios shrink the interval; the `checkpoint-off` feature flips
    /// the default off).
    pub checkpoint: CheckpointConfig,
    /// RNG/key seed.
    pub seed: u64,
}

impl Default for DeploymentOpts {
    fn default() -> Self {
        DeploymentOpts {
            rings: 1,
            m: 1,
            secondaries: 6,
            clients: 1,
            latency: SimDuration::from_millis(20),
            invalidate_leaves: Vec::new(),
            reparent: true,
            anti_entropy: None,
            failover: true,
            repush: cfg!(not(feature = "repush-off")),
            byzantine_secondaries: Vec::new(),
            checkpoint: CheckpointConfig::default(),
            seed: 1,
        }
    }
}

/// One consensus ring of a deployment.
pub struct Ring {
    /// Tier configuration of this ring.
    pub cfg: TierConfig,
    /// Node ids of this ring's primaries (tier order).
    pub primaries: Vec<NodeId>,
}

/// A constructed deployment.
pub struct Deployment {
    /// The driving simulator.
    pub sim: Simulator<OceanNode>,
    /// The consensus rings (ring 0 is the historical single ring).
    pub rings: Vec<Ring>,
    /// Object → ring assignment shared by clients, primaries, and
    /// secondaries.
    pub router: ShardRouter,
    /// Node ids of the secondaries (tree order: 0 is the root).
    pub secondaries: Vec<NodeId>,
    /// Node ids of the clients.
    pub clients: Vec<NodeId>,
}

impl Deployment {
    /// Ring 0's tier configuration (the only ring in single-ring
    /// deployments, which is every test written before sharding).
    pub fn cfg(&self) -> &TierConfig {
        &self.rings[0].cfg
    }

    /// Ring 0's primaries (tier order).
    pub fn primaries(&self) -> &[NodeId] {
        &self.rings[0].primaries
    }

    /// Every primary of every ring, ring-major.
    pub fn all_primaries(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.rings.iter().flat_map(|r| r.primaries.iter().copied())
    }

    /// The ring index that owns `object`.
    pub fn ring_of(&self, object: &Guid) -> usize {
        self.router.ring_of(object)
    }

    /// The ring that owns `object`.
    pub fn ring_for(&self, object: &Guid) -> &Ring {
        &self.rings[self.ring_of(object)]
    }
}

/// Above this many secondaries the epidemic peer list is a deterministic
/// sample instead of "everyone else" — all-to-all peer lists are O(s²)
/// memory, which matters at the 10k-node scale the workload harness
/// drives. Below the cap the historical full list is kept bit-identical.
const PEER_FULL_LIMIT: usize = 128;
/// Sampled peer-set size above [`PEER_FULL_LIMIT`].
const PEER_SAMPLE: usize = 16;

/// splitmix64 finalizer: the peer sampler's stateless RNG.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The epidemic peer set of secondary `j` out of `s`: everyone else when
/// the tier is small, otherwise a deterministic `PEER_SAMPLE`-sized sample
/// (seeded by the deployment seed, so schedules stay reproducible).
fn peer_set(secondaries: &[NodeId], j: usize, seed: u64) -> Vec<NodeId> {
    let s = secondaries.len();
    if s <= PEER_FULL_LIMIT {
        return secondaries.iter().copied().filter(|&p| p != secondaries[j]).collect();
    }
    let mut peers = Vec::with_capacity(PEER_SAMPLE);
    let mut chosen = std::collections::HashSet::with_capacity(PEER_SAMPLE);
    let mut k = 0u64;
    while peers.len() < PEER_SAMPLE.min(s - 1) {
        let cand = (mix(seed ^ ((j as u64) << 32) ^ k) % s as u64) as usize;
        k += 1;
        if cand != j && chosen.insert(cand) {
            peers.push(secondaries[cand]);
        }
    }
    peers
}

/// Builds a deployment: ring `r`'s primaries at nodes
/// `[r·(3m+1), (r+1)·(3m+1))`, secondaries next (in a binary dissemination
/// tree rooted at secondary 0, which all primaries feed), then clients.
pub fn build_deployment(opts: &DeploymentOpts) -> Deployment {
    assert!(opts.rings >= 1, "need at least one ring");
    let n = 3 * opts.m + 1;
    let s = opts.secondaries;
    assert!(s >= 1, "need at least one secondary for the tree root");
    let spec = ClusterSpec {
        rings: opts.rings,
        ring_size: n,
        secondaries: s,
        clients: opts.clients,
    };
    let total = spec.total();
    let topo = spec.mesh(opts.latency);
    let router = ShardRouter::new(opts.rings);

    let secondaries = spec.secondaries();
    let clients = spec.clients();

    // Ring 0 keeps the historical key seeds (pinned traces depend on
    // them); further rings get their own namespace.
    let ring_keys: Vec<Vec<KeyPair>> = (0..opts.rings)
        .map(|r| {
            (0..n)
                .map(|i| {
                    let label = if r == 0 {
                        format!("dep-{}-primary-{i}", opts.seed)
                    } else {
                        format!("dep-{}-ring{r}-primary-{i}", opts.seed)
                    };
                    KeyPair::from_seed(label.as_bytes())
                })
                .collect()
        })
        .collect();
    let client_keys: Vec<KeyPair> = (0..opts.clients)
        .map(|i| KeyPair::from_seed(format!("dep-{}-client-{i}", opts.seed).as_bytes()))
        .collect();
    let client_key_map: HashMap<NodeId, _> = clients
        .iter()
        .zip(&client_keys)
        .map(|(node, kp)| (*node, kp.public()))
        .collect();
    let rings: Vec<Ring> = (0..opts.rings)
        .map(|r| Ring {
            cfg: TierConfig {
                m: opts.m,
                members: spec.ring(r),
                replica_keys: ring_keys[r].iter().map(KeyPair::public).collect(),
                client_keys: client_key_map.clone(),
                view_timeout: SimDuration::from_micros(opts.latency.as_micros() * 30),
                checkpoint: opts.checkpoint.clone(),
            },
            primaries: spec.ring(r),
        })
        .collect();
    // Ring-aware certificate verification for the shared secondary tier.
    let verify_keys: Vec<(Vec<_>, usize)> =
        rings.iter().map(|r| (r.cfg.replica_keys.clone(), opts.m)).collect();

    // Binary tree over the secondaries (heap indexing).
    let child_mode = |j: usize| {
        if opts.invalidate_leaves.contains(&j) {
            ChildMode::Invalidate
        } else {
            ChildMode::Push
        }
    };
    let mut nodes: Vec<OceanNode> = Vec::with_capacity(total);
    // The retry deadline must outlast a disseminator's normal assembly
    // round-trip (share in, commit out) or healthy records double-send.
    let failover = FailoverConfig {
        enabled: opts.failover,
        share_retry_timeout: SimDuration::from_micros(opts.latency.as_micros() * 25),
    };
    // The ack deadline must exceed one push+ack round trip (2 × latency)
    // or healthy records double-send; 3 × latency gives one-way slack
    // while keeping dropped-push recovery at roughly one RTT + backoff
    // step instead of one anti-entropy period.
    let repush = RepushConfig {
        enabled: opts.repush,
        ack_timeout: SimDuration::from_micros(opts.latency.as_micros() * 3),
        ..RepushConfig::default()
    };
    for (r, keys) in ring_keys.into_iter().enumerate() {
        for (i, kp) in keys.into_iter().enumerate() {
            let mut primary = Primary::with_knobs(
                rings[r].cfg.clone(),
                i,
                kp,
                FaultMode::Honest,
                vec![(secondaries[0], child_mode(0))],
                failover.clone(),
                repush.clone(),
            );
            primary.set_shard(router, r);
            // Primaries gossip certified records among themselves on the
            // same cadence as the tree's epidemic layer — the catch-up
            // path for a member whose agreement replica missed commits
            // for good.
            primary.set_tier_anti_entropy(
                opts.anti_entropy.unwrap_or(SecondaryConfig::default().anti_entropy_interval),
            );
            nodes.push(OceanNode::Primary(primary));
        }
    }
    for j in 0..s {
        let parent = match tree_parent(j) {
            None => rings[0].primaries[0],
            Some(p) => secondaries[p],
        };
        // Grandparent in the heap tree: the parent's parent; the root's
        // parent is a primary, so its children fall straight through to
        // the primary ring.
        let grandparent = tree_parent(j).map(|p| match tree_grandparent(j) {
            None if p == 0 => rings[0].primaries[0],
            None => secondaries[0],
            Some(g) => secondaries[g],
        });
        // The other child of the same parent, if it exists.
        let siblings: Vec<NodeId> =
            tree_sibling(j, s).map(|sib| secondaries[sib]).into_iter().collect();
        let children: Vec<(NodeId, ChildMode)> =
            tree_children(j, s).map(|c| (secondaries[c], child_mode(c))).collect();
        let peers = peer_set(&secondaries, j, opts.seed);
        let defaults = SecondaryConfig::default();
        let scfg = SecondaryConfig {
            parent: Some(parent),
            children,
            peers,
            anti_entropy_interval: opts.anti_entropy.unwrap_or(defaults.anti_entropy_interval),
            grandparent,
            siblings,
            fallback_parents: rings[0].primaries.clone(),
            heartbeat_interval: SimDuration::from_micros(opts.latency.as_micros() * 5),
            parent_timeout: SimDuration::from_micros(opts.latency.as_micros() * 25),
            reparent_enabled: opts.reparent,
            fault: if opts.byzantine_secondaries.contains(&j) {
                SecondaryFault::ForgeOnServe
            } else {
                SecondaryFault::Honest
            },
            ..defaults
        };
        nodes.push(OceanNode::Secondary(Secondary::new_sharded(
            scfg,
            verify_keys.clone(),
            router,
        )));
    }
    for kp in client_keys {
        let mut c = UpdateClient::new_sharded(
            rings.iter().map(|r| r.cfg.clone()).collect(),
            router,
            kp,
            secondaries.clone(),
        );
        c.enable_retransmit(SimDuration::from_micros(opts.latency.as_micros() * 60));
        nodes.push(OceanNode::Client(c));
    }

    let mut sim = Simulator::new(topo, nodes, opts.seed);
    sim.start();
    Deployment { sim, rings, router, secondaries, clients }
}
