//! Ready-made two-tier deployments for tests, benches, and examples.

use std::collections::HashMap;

use oceanstore_consensus::replica::{CheckpointConfig, FaultMode, TierConfig};
use oceanstore_crypto::schnorr::KeyPair;
use oceanstore_sim::{NodeId, SimDuration, Simulator, Topology};

use crate::client::UpdateClient;
use crate::config::{ChildMode, FailoverConfig, RepushConfig, SecondaryConfig, SecondaryFault};
use crate::node::OceanNode;
use crate::primary::Primary;
use crate::secondary::Secondary;

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct DeploymentOpts {
    /// Faults tolerated by the tier (n = 3m + 1 primaries).
    pub m: usize,
    /// Number of secondary replicas.
    pub secondaries: usize,
    /// Number of clients.
    pub clients: usize,
    /// Uniform one-way latency of the mesh.
    pub latency: SimDuration,
    /// Secondary indices fed by invalidation instead of full pushes.
    pub invalidate_leaves: Vec<usize>,
    /// Whether orphaned secondaries re-attach to the tree (disable to
    /// demonstrate the orphaned-subtree failure mode).
    pub reparent: bool,
    /// Override for the secondaries' anti-entropy period (`None` keeps the
    /// [`SecondaryConfig`] default). Chaos scenarios stretch this to
    /// isolate the dissemination tree from the epidemic repair path.
    pub anti_entropy: Option<SimDuration>,
    /// Whether signers re-route their shares past a crashed disseminator.
    /// Disable to demonstrate the single-disseminator liveness hole.
    pub failover: bool,
    /// Whether certified records stay on an acked re-push schedule until
    /// every `Push` child confirms them. Disable (or build with the
    /// `repush-off` feature, which flips this default) to fall back to
    /// anti-entropy-only repair of a lost tier→tree push.
    pub repush: bool,
    /// Secondary indices that run [`SecondaryFault::ForgeOnServe`].
    pub byzantine_secondaries: Vec<usize>,
    /// Checkpoint/GC knobs of the primary tier (long-horizon chaos
    /// scenarios shrink the interval; the `checkpoint-off` feature flips
    /// the default off).
    pub checkpoint: CheckpointConfig,
    /// RNG/key seed.
    pub seed: u64,
}

impl Default for DeploymentOpts {
    fn default() -> Self {
        DeploymentOpts {
            m: 1,
            secondaries: 6,
            clients: 1,
            latency: SimDuration::from_millis(20),
            invalidate_leaves: Vec::new(),
            reparent: true,
            anti_entropy: None,
            failover: true,
            repush: cfg!(not(feature = "repush-off")),
            byzantine_secondaries: Vec::new(),
            checkpoint: CheckpointConfig::default(),
            seed: 1,
        }
    }
}

/// A constructed deployment.
pub struct Deployment {
    /// The driving simulator.
    pub sim: Simulator<OceanNode>,
    /// Tier configuration.
    pub cfg: TierConfig,
    /// Node ids of the primaries (tier order).
    pub primaries: Vec<NodeId>,
    /// Node ids of the secondaries (tree order: 0 is the root).
    pub secondaries: Vec<NodeId>,
    /// Node ids of the clients.
    pub clients: Vec<NodeId>,
}

/// Builds a deployment: primaries at nodes `0..n`, secondaries next (in a
/// binary dissemination tree rooted at secondary 0, which all primaries
/// feed), then clients.
pub fn build_deployment(opts: &DeploymentOpts) -> Deployment {
    let n = 3 * opts.m + 1;
    let s = opts.secondaries;
    assert!(s >= 1, "need at least one secondary for the tree root");
    let total = n + s + opts.clients;
    let topo = Topology::full_mesh(total, opts.latency);

    let primaries: Vec<NodeId> = (0..n).map(NodeId).collect();
    let secondaries: Vec<NodeId> = (n..n + s).map(NodeId).collect();
    let clients: Vec<NodeId> = (n + s..total).map(NodeId).collect();

    let replica_keys: Vec<KeyPair> = (0..n)
        .map(|i| KeyPair::from_seed(format!("dep-{}-primary-{i}", opts.seed).as_bytes()))
        .collect();
    let client_keys: Vec<KeyPair> = (0..opts.clients)
        .map(|i| KeyPair::from_seed(format!("dep-{}-client-{i}", opts.seed).as_bytes()))
        .collect();
    let cfg = TierConfig {
        m: opts.m,
        members: primaries.clone(),
        replica_keys: replica_keys.iter().map(KeyPair::public).collect(),
        client_keys: clients
            .iter()
            .zip(&client_keys)
            .map(|(node, kp)| (*node, kp.public()))
            .collect::<HashMap<_, _>>(),
        view_timeout: SimDuration::from_micros(opts.latency.as_micros() * 30),
        checkpoint: opts.checkpoint.clone(),
    };

    // Binary tree over the secondaries (heap indexing).
    let child_mode = |j: usize| {
        if opts.invalidate_leaves.contains(&j) {
            ChildMode::Invalidate
        } else {
            ChildMode::Push
        }
    };
    let mut nodes: Vec<OceanNode> = Vec::with_capacity(total);
    // The retry deadline must outlast a disseminator's normal assembly
    // round-trip (share in, commit out) or healthy records double-send.
    let failover = FailoverConfig {
        enabled: opts.failover,
        share_retry_timeout: SimDuration::from_micros(opts.latency.as_micros() * 25),
    };
    // The ack deadline must exceed one push+ack round trip (2 × latency)
    // or healthy records double-send; 3 × latency gives one-way slack
    // while keeping dropped-push recovery at roughly one RTT + backoff
    // step instead of one anti-entropy period.
    let repush = RepushConfig {
        enabled: opts.repush,
        ack_timeout: SimDuration::from_micros(opts.latency.as_micros() * 3),
        ..RepushConfig::default()
    };
    for (i, kp) in replica_keys.into_iter().enumerate() {
        let mut primary = Primary::with_knobs(
            cfg.clone(),
            i,
            kp,
            FaultMode::Honest,
            vec![(secondaries[0], child_mode(0))],
            failover.clone(),
            repush.clone(),
        );
        // Primaries gossip certified records among themselves on the same
        // cadence as the tree's epidemic layer — the catch-up path for a
        // member whose agreement replica missed commits for good.
        primary.set_tier_anti_entropy(
            opts.anti_entropy.unwrap_or(SecondaryConfig::default().anti_entropy_interval),
        );
        nodes.push(OceanNode::Primary(primary));
    }
    for j in 0..s {
        let parent = if j == 0 { primaries[0] } else { secondaries[(j - 1) / 2] };
        // Grandparent in the heap tree: the parent's parent; the root's
        // parent is a primary, so its children fall straight through to
        // the primary ring.
        let grandparent = if j == 0 {
            None
        } else {
            let p = (j - 1) / 2;
            Some(if p == 0 { primaries[0] } else { secondaries[(p - 1) / 2] })
        };
        // The other child of the same parent, if it exists.
        let siblings: Vec<NodeId> = if j == 0 {
            Vec::new()
        } else {
            let sib = if j % 2 == 1 { j + 1 } else { j - 1 };
            (sib < s).then(|| secondaries[sib]).into_iter().collect()
        };
        let children: Vec<(NodeId, ChildMode)> = [2 * j + 1, 2 * j + 2]
            .into_iter()
            .filter(|&c| c < s)
            .map(|c| (secondaries[c], child_mode(c)))
            .collect();
        let peers: Vec<NodeId> =
            secondaries.iter().copied().filter(|&p| p != secondaries[j]).collect();
        let defaults = SecondaryConfig::default();
        let scfg = SecondaryConfig {
            parent: Some(parent),
            children,
            peers,
            anti_entropy_interval: opts.anti_entropy.unwrap_or(defaults.anti_entropy_interval),
            grandparent,
            siblings,
            fallback_parents: primaries.clone(),
            heartbeat_interval: SimDuration::from_micros(opts.latency.as_micros() * 5),
            parent_timeout: SimDuration::from_micros(opts.latency.as_micros() * 25),
            reparent_enabled: opts.reparent,
            fault: if opts.byzantine_secondaries.contains(&j) {
                SecondaryFault::ForgeOnServe
            } else {
                SecondaryFault::Honest
            },
            ..defaults
        };
        nodes.push(OceanNode::Secondary(Secondary::new(
            scfg,
            cfg.replica_keys.clone(),
            opts.m,
        )));
    }
    for kp in client_keys {
        let mut c = UpdateClient::new(cfg.clone(), kp, secondaries.clone());
        c.enable_retransmit(SimDuration::from_micros(opts.latency.as_micros() * 60));
        nodes.push(OceanNode::Client(c));
    }

    let mut sim = Simulator::new(topo, nodes, opts.seed);
    sim.start();
    Deployment { sim, cfg, primaries, secondaries, clients }
}
