//! Configuration of the secondary tier and dissemination trees.

use oceanstore_sim::{NodeId, SimDuration};

/// How a dissemination-tree parent feeds one child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildMode {
    /// Stream full certified commit records.
    Push,
    /// Send only invalidations; the child pulls on demand ("such a
    /// transformation is exploited at the leaves of the network where
    /// bandwidth is limited", §4.4.3).
    Invalidate,
}

/// Configuration of one secondary replica.
#[derive(Debug, Clone)]
pub struct SecondaryConfig {
    /// Dissemination-tree parent (a primary's disseminator reaches the
    /// root secondaries directly).
    pub parent: Option<NodeId>,
    /// Children this node feeds, with their modes.
    pub children: Vec<(NodeId, ChildMode)>,
    /// Epidemic gossip partners (other secondaries).
    pub peers: Vec<NodeId>,
    /// How many peers a fresh tentative update is rumored to.
    pub gossip_fanout: usize,
    /// Anti-entropy exchange period.
    pub anti_entropy_interval: SimDuration,
}

impl Default for SecondaryConfig {
    fn default() -> Self {
        SecondaryConfig {
            parent: None,
            children: Vec::new(),
            peers: Vec::new(),
            gossip_fanout: 2,
            anti_entropy_interval: SimDuration::from_millis(500),
        }
    }
}
