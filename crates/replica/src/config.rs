//! Configuration of the secondary tier and dissemination trees.

use oceanstore_sim::{NodeId, SimDuration};

/// Disseminator-failover knobs for the primary tier.
///
/// A record's serialization certificate is assembled by one rotating
/// member; if that member is crashed the signature shares go nowhere and
/// the record never reaches the dissemination tree. With failover enabled
/// every signer re-broadcasts its share to the next member in rotation
/// order (`(base + attempt) % n`) whenever no certificate materializes
/// within the deadline, so any `f + 1` consecutive rotation slots contain
/// at least one live disseminator.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Whether share re-broadcast runs at all. Disable to demonstrate the
    /// single-disseminator liveness hole (chaos `disseminator_crash`).
    pub enabled: bool,
    /// How long a signer waits for the certificate before re-routing its
    /// share to the next fallback disseminator.
    pub share_retry_timeout: SimDuration,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig { enabled: true, share_retry_timeout: SimDuration::from_millis(500) }
    }
}

/// Acked re-push knobs for the tier→tree edge.
///
/// The disseminator pushes each certified record to its `Push` children
/// exactly once; if that single `Commit` is lost, recovery used to wait
/// for a full anti-entropy period. With re-push enabled the disseminator
/// keeps every certified record on a bounded retry schedule until each
/// `Push` child acks it (`CommitAck`), backing off exponentially; and any
/// *other* primary that learns of the cert (`CertFormed`) arms a delayed
/// watchdog, so a crashed or islanded disseminator is covered too. The
/// retry budget is capped: once exhausted, the record degrades gracefully
/// to the existing anti-entropy repair path.
#[derive(Debug, Clone)]
pub struct RepushConfig {
    /// Whether acked re-push runs at all. The `repush-off` cargo feature
    /// flips this default to `false` so the degraded (anti-entropy-only)
    /// mode stays covered by the full test matrix.
    pub enabled: bool,
    /// How long the disseminator waits for a child's ack before
    /// re-pushing. Must exceed one push+ack round trip or healthy records
    /// double-send.
    pub ack_timeout: SimDuration,
    /// Deadline multiplier per retry (exponential backoff).
    pub backoff: u32,
    /// Re-pushes per record before giving up and leaving the record to
    /// anti-entropy.
    pub max_retries: u32,
    /// Observer primaries (who saw `CertFormed` but are not the
    /// disseminator) arm their first watchdog at `ack_timeout *
    /// observer_grace`, giving the disseminator first crack and keeping
    /// the healthy path free of duplicate pushes.
    pub observer_grace: u32,
}

impl Default for RepushConfig {
    fn default() -> Self {
        RepushConfig {
            enabled: cfg!(not(feature = "repush-off")),
            ack_timeout: SimDuration::from_millis(60),
            backoff: 2,
            max_retries: 4,
            observer_grace: 2,
        }
    }
}

/// Fault behavior of a secondary replica (the tier is built from
/// "untrusted infrastructure", so the chaos suite needs servers that lie,
/// not just servers that stop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SecondaryFault {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Byzantine: inflates its anti-entropy summaries to bait pulls, then
    /// serves forged, uncertified commit records on the pull path. Honest
    /// peers must reject every byte of it (certificates are checked on
    /// *all* ingest paths).
    ForgeOnServe,
}

/// How a dissemination-tree parent feeds one child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildMode {
    /// Stream full certified commit records.
    Push,
    /// Send only invalidations; the child pulls on demand ("such a
    /// transformation is exploited at the leaves of the network where
    /// bandwidth is limited", §4.4.3).
    Invalidate,
}

/// Configuration of one secondary replica.
#[derive(Debug, Clone)]
pub struct SecondaryConfig {
    /// Dissemination-tree parent (a primary's disseminator reaches the
    /// root secondaries directly).
    pub parent: Option<NodeId>,
    /// Children this node feeds, with their modes.
    pub children: Vec<(NodeId, ChildMode)>,
    /// Epidemic gossip partners (other secondaries).
    pub peers: Vec<NodeId>,
    /// How many peers a fresh tentative update is rumored to.
    pub gossip_fanout: usize,
    /// Anti-entropy exchange period.
    pub anti_entropy_interval: SimDuration,
    /// Tree metadata: the parent's parent, first candidate when the
    /// parent dies and this node must re-attach.
    pub grandparent: Option<NodeId>,
    /// Tree metadata: same-parent nodes, next re-parenting candidates
    /// after the grandparent.
    pub siblings: Vec<NodeId>,
    /// Last-resort attach points (the primary ring): always reachable
    /// re-join targets when the whole neighborhood is gone.
    pub fallback_parents: Vec<NodeId>,
    /// Parent liveness probe period.
    pub heartbeat_interval: SimDuration,
    /// Silence from the parent longer than this declares it dead.
    pub parent_timeout: SimDuration,
    /// Whether an orphaned node seeks a new parent. Disable to study the
    /// failure mode (orphaned subtrees stop converging through the tree).
    pub reparent_enabled: bool,
    /// After this many FetchCommits pulls with no Commits response, pull
    /// from a random gossip peer instead of the (possibly dead) parent.
    pub max_unanswered_pulls: u32,
    /// Fault behavior of this replica (Byzantine chaos scenarios).
    pub fault: SecondaryFault,
}

impl Default for SecondaryConfig {
    fn default() -> Self {
        SecondaryConfig {
            parent: None,
            children: Vec::new(),
            peers: Vec::new(),
            gossip_fanout: 2,
            anti_entropy_interval: SimDuration::from_millis(500),
            grandparent: None,
            siblings: Vec::new(),
            fallback_parents: Vec::new(),
            heartbeat_interval: SimDuration::from_millis(200),
            parent_timeout: SimDuration::from_millis(1000),
            reparent_enabled: true,
            max_unanswered_pulls: 3,
            fault: SecondaryFault::Honest,
        }
    }
}
