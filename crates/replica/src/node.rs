//! Composite simulation node for the replication layer.

use oceanstore_sim::{Context, NodeId, Protocol};

use crate::client::UpdateClient;
use crate::messages::ReplicaMsg;
use crate::primary::Primary;
use crate::secondary::Secondary;

/// A node in a two-tier replication deployment.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum OceanNode {
    /// Primary-tier server (agreement + dissemination).
    Primary(Primary),
    /// Secondary-tier server (epidemic + tree).
    Secondary(Secondary),
    /// An update-submitting client.
    Client(UpdateClient),
    /// Bystander.
    Idle,
}

impl OceanNode {
    /// Primary accessor.
    pub fn as_primary(&self) -> Option<&Primary> {
        match self {
            OceanNode::Primary(p) => Some(p),
            _ => None,
        }
    }

    /// Secondary accessor.
    pub fn as_secondary(&self) -> Option<&Secondary> {
        match self {
            OceanNode::Secondary(s) => Some(s),
            _ => None,
        }
    }

    /// Mutable primary accessor.
    pub fn as_primary_mut(&mut self) -> Option<&mut Primary> {
        match self {
            OceanNode::Primary(p) => Some(p),
            _ => None,
        }
    }

    /// Mutable secondary accessor.
    pub fn as_secondary_mut(&mut self) -> Option<&mut Secondary> {
        match self {
            OceanNode::Secondary(s) => Some(s),
            _ => None,
        }
    }

    /// Client accessor.
    pub fn as_client(&self) -> Option<&UpdateClient> {
        match self {
            OceanNode::Client(c) => Some(c),
            _ => None,
        }
    }

    /// Mutable client accessor.
    pub fn as_client_mut(&mut self) -> Option<&mut UpdateClient> {
        match self {
            OceanNode::Client(c) => Some(c),
            _ => None,
        }
    }
}

impl Protocol for OceanNode {
    type Msg = ReplicaMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ReplicaMsg>) {
        match self {
            OceanNode::Primary(p) => p.on_start(ctx),
            OceanNode::Secondary(s) => s.on_start(ctx),
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ReplicaMsg>, from: NodeId, msg: ReplicaMsg) {
        match self {
            OceanNode::Primary(p) => match msg {
                ReplicaMsg::Pbft(inner) => p.on_pbft(ctx, from, inner),
                ReplicaMsg::ResultShare { object, index, update_digest, version, replica, sig }
                | ReplicaMsg::ShareRebroadcast {
                    object,
                    index,
                    update_digest,
                    version,
                    replica,
                    sig,
                    ..
                } => {
                    p.on_result_share(ctx, object, index, update_digest, version, replica, sig);
                }
                ReplicaMsg::CertFormed { object, index, cert } => {
                    p.on_cert_formed(ctx, object, index, cert);
                }
                ReplicaMsg::CommitAck { object, index } => {
                    p.on_commit_ack(ctx, from, object, index);
                }
                ReplicaMsg::FetchCommits { object, from_index } => {
                    p.on_fetch(ctx, from, object, from_index);
                }
                ReplicaMsg::Commits { records } => p.on_commits(ctx, records),
                ReplicaMsg::AntiEntropy { object, committed_index, .. } => {
                    p.on_anti_entropy(ctx, from, object, committed_index);
                }
                ReplicaMsg::Ping => ctx.send(from, ReplicaMsg::Pong),
                ReplicaMsg::Attach => p.on_attach(ctx, from),
                _ => {}
            },
            OceanNode::Secondary(s) => {
                // Anything the parent sends proves it alive.
                s.note_traffic(from, ctx.now());
                match msg {
                    ReplicaMsg::Tentative { object, update, timestamp, id } => {
                        s.on_tentative(ctx, object, update, timestamp, id);
                    }
                    ReplicaMsg::Commit(record) => {
                        s.on_commit(ctx, from, record);
                    }
                    ReplicaMsg::Commits { records } => s.on_commits(ctx, from, records),
                    ReplicaMsg::Invalidate { object, index, .. } => {
                        s.on_invalidate(ctx, object, index)
                    }
                    ReplicaMsg::FetchCommits { object, from_index } => {
                        s.on_fetch(ctx, from, object, from_index);
                    }
                    ReplicaMsg::AntiEntropy { object, committed_index, tentative_ids } => {
                        s.on_anti_entropy(ctx, from, object, committed_index, tentative_ids);
                    }
                    ReplicaMsg::Ping => s.on_ping(ctx, from),
                    ReplicaMsg::Pong => {}
                    ReplicaMsg::Attach => s.on_attach(ctx, from),
                    ReplicaMsg::AttachOk { grandparent } => s.on_attach_ok(ctx, from, grandparent),
                    _ => {}
                }
            }
            OceanNode::Client(c) => c.on_message(ctx, from, msg),
            OceanNode::Idle => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ReplicaMsg>, tag: u64) {
        match self {
            OceanNode::Primary(p) => p.on_timer(ctx, tag),
            OceanNode::Secondary(s) => s.on_timer(ctx, tag),
            OceanNode::Client(c) => c.on_timer(ctx, tag),
            OceanNode::Idle => {}
        }
    }
}
