//! Property-based tests for GUIDs and naming invariants.

use oceanstore_crypto::schnorr::KeyPair;
use oceanstore_naming::guid::{Guid, NIBBLES};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Nibble extraction is a faithful view of the digest bytes.
    #[test]
    fn nibbles_reconstruct_bytes(bytes in any::<[u8; 20]>()) {
        let g = Guid::from_bytes(bytes);
        let mut rebuilt = [0u8; 20];
        for i in 0..NIBBLES {
            let byte = &mut rebuilt[20 - 1 - i / 2];
            if i % 2 == 0 {
                *byte |= g.nibble(i);
            } else {
                *byte |= g.nibble(i) << 4;
            }
        }
        prop_assert_eq!(rebuilt, bytes);
    }

    /// low_nibble_match_len is symmetric, maximal on identity, and
    /// the first mismatching nibble is exactly at the reported length.
    #[test]
    fn match_len_properties(a in any::<[u8; 20]>(), b in any::<[u8; 20]>()) {
        let (ga, gb) = (Guid::from_bytes(a), Guid::from_bytes(b));
        let m = ga.low_nibble_match_len(&gb);
        prop_assert_eq!(m, gb.low_nibble_match_len(&ga));
        prop_assert_eq!(ga.low_nibble_match_len(&ga), NIBBLES);
        for i in 0..m {
            prop_assert_eq!(ga.nibble(i), gb.nibble(i));
        }
        if m < NIBBLES {
            prop_assert_ne!(ga.nibble(m), gb.nibble(m));
        }
    }

    /// Self-certification binds owner and name: any change to either
    /// breaks certification.
    #[test]
    fn self_certification_binds(
        seed1 in proptest::collection::vec(any::<u8>(), 1..16),
        seed2 in proptest::collection::vec(any::<u8>(), 1..16),
        name in "[a-z/]{1,20}",
        other_name in "[a-z/]{1,20}",
    ) {
        let k1 = KeyPair::from_seed(&seed1).public();
        let g = Guid::for_object(k1, &name);
        prop_assert!(g.certifies(k1, &name));
        if name != other_name {
            prop_assert!(!g.certifies(k1, &other_name));
        }
        if seed1 != seed2 {
            let k2 = KeyPair::from_seed(&seed2).public();
            prop_assert!(!g.certifies(k2, &name));
        }
    }

    /// Salting is injective-in-practice and deterministic.
    #[test]
    fn salting_properties(bytes in any::<[u8; 20]>(), s1 in any::<u32>(), s2 in any::<u32>()) {
        let g = Guid::from_bytes(bytes);
        prop_assert_eq!(g.salted(s1), g.salted(s1));
        if s1 != s2 {
            prop_assert_ne!(g.salted(s1), g.salted(s2));
        }
        prop_assert_ne!(g.salted(s1), g, "salting always moves the GUID");
    }
}
