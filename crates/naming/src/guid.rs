//! Globally unique identifiers (§4.1).
//!
//! "At the lowest level, OceanStore objects are identified by a globally
//! unique identifier (GUID), which can be thought of as a pseudo-random,
//! fixed-length bit string." GUIDs are SHA-1 digests (the paper's footnote
//! 3) and name *every* addressable entity:
//!
//! * objects — `hash(owner key ‖ human-readable name)`, making names
//!   self-certifying in the style of Mazières;
//! * servers — `hash(server public key)`;
//! * archival fragments / immutable versions — `hash(content)`.
//!
//! The digit-extraction helpers ([`Guid::nibble`], [`Guid::low_nibble_match_len`])
//! serve the Plaxton mesh, which routes by resolving a GUID one digit at a
//! time starting from the *least* significant (§4.3.3); [`Guid::salted`]
//! produces the replicated roots that remove the single point of failure.

use std::fmt;

use oceanstore_crypto::schnorr::PublicKey;
use oceanstore_crypto::sha1::{sha1_concat, Digest, DIGEST_LEN};

/// Number of hex digits (nibbles) in a GUID.
pub const NIBBLES: usize = DIGEST_LEN * 2;

/// A 160-bit globally unique identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Guid(Digest);

impl fmt::Debug for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Guid({self})")
    }
}

impl fmt::Display for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print the first 8 hex digits; enough to tell GUIDs apart in logs.
        for b in &self.0[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

impl Guid {
    /// Wire size of a GUID (160 bits).
    pub const WIRE_SIZE: usize = DIGEST_LEN;

    /// Constructs a GUID from a raw digest.
    pub fn from_bytes(bytes: Digest) -> Self {
        Guid(bytes)
    }

    /// The raw digest.
    pub fn as_bytes(&self) -> &Digest {
        &self.0
    }

    /// Self-certifying object GUID: the secure hash of the owner's key and
    /// a human-readable name (§4.1).
    pub fn for_object(owner: PublicKey, name: &str) -> Self {
        Guid(sha1_concat(&[b"object", &owner.to_bytes(), name.as_bytes()]))
    }

    /// Server GUID: the secure hash of the server's public key (§4.1).
    pub fn for_server(key: PublicKey) -> Self {
        Guid(sha1_concat(&[b"server", &key.to_bytes()]))
    }

    /// Content GUID for an archival fragment or immutable version: the
    /// secure hash over the data it holds (§4.1, §4.5).
    pub fn for_content(data: &[u8]) -> Self {
        Guid(sha1_concat(&[b"content", data]))
    }

    /// Deterministic GUID from an arbitrary label (used by tests and
    /// workload generators).
    pub fn from_label(label: &str) -> Self {
        Guid(sha1_concat(&[b"label", label.as_bytes()]))
    }

    /// Verifies the self-certifying property: does this GUID belong to
    /// `(owner, name)`? This is how "servers verify an object's owner
    /// efficiently" for access checks and resource accounting.
    pub fn certifies(&self, owner: PublicKey, name: &str) -> bool {
        *self == Guid::for_object(owner, name)
    }

    /// Hashes this GUID with a salt value, yielding the root GUID replica
    /// mapping of §4.3.3 ("hashes each GUID with a small number of
    /// different salt values").
    pub fn salted(&self, salt: u32) -> Self {
        Guid(sha1_concat(&[b"salt", &salt.to_be_bytes(), &self.0]))
    }

    /// The `i`-th nibble counted from the **least significant** end, the
    /// digit order in which the Plaxton mesh resolves GUIDs.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NIBBLES`.
    pub fn nibble(&self, i: usize) -> u8 {
        assert!(i < NIBBLES, "nibble index out of range");
        // Least-significant nibble = low half of the last byte.
        let byte = self.0[DIGEST_LEN - 1 - i / 2];
        if i.is_multiple_of(2) {
            byte & 0x0f
        } else {
            byte >> 4
        }
    }

    /// Number of consecutive matching nibbles between two GUIDs, starting
    /// from the least significant — the "matches the object's GUID in the
    /// most bits (starting from the least significant)" measure used to
    /// choose an object's root node.
    pub fn low_nibble_match_len(&self, other: &Guid) -> usize {
        (0..NIBBLES).take_while(|&i| self.nibble(i) == other.nibble(i)).count()
    }

    /// The `i`-th bit counted from the least significant end.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 160`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < DIGEST_LEN * 8, "bit index out of range");
        let byte = self.0[DIGEST_LEN - 1 - i / 8];
        byte >> (i % 8) & 1 == 1
    }

    /// Interprets the low 8 bytes as an integer (handy for deterministic
    /// hashing into buckets).
    pub fn low_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[DIGEST_LEN - 8..].try_into().expect("8 bytes"))
    }

    /// Full lowercase hex rendering.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oceanstore_crypto::schnorr::KeyPair;

    fn key(seed: &[u8]) -> PublicKey {
        KeyPair::from_seed(seed).public()
    }

    #[test]
    fn self_certifying_names() {
        let owner = key(b"alice");
        let g = Guid::for_object(owner, "calendar");
        assert!(g.certifies(owner, "calendar"));
        assert!(!g.certifies(owner, "mail"));
        assert!(!g.certifies(key(b"mallory"), "calendar"));
    }

    #[test]
    fn entity_kinds_are_domain_separated() {
        // A server key and an object owned by that key with an empty name
        // must not collide (tags differ).
        let k = key(b"s");
        assert_ne!(Guid::for_server(k), Guid::for_object(k, ""));
    }

    #[test]
    fn content_guids_track_content() {
        assert_eq!(Guid::for_content(b"abc"), Guid::for_content(b"abc"));
        assert_ne!(Guid::for_content(b"abc"), Guid::for_content(b"abd"));
    }

    #[test]
    fn salting_disperses_roots() {
        let g = Guid::from_label("object");
        let salts: Vec<Guid> = (0..4).map(|s| g.salted(s)).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(salts[i], salts[j]);
            }
        }
        // And is deterministic.
        assert_eq!(g.salted(2), g.salted(2));
    }

    #[test]
    fn nibble_extraction() {
        let mut bytes = [0u8; DIGEST_LEN];
        bytes[DIGEST_LEN - 1] = 0xAB; // low byte
        bytes[DIGEST_LEN - 2] = 0xCD;
        let g = Guid::from_bytes(bytes);
        assert_eq!(g.nibble(0), 0xB);
        assert_eq!(g.nibble(1), 0xA);
        assert_eq!(g.nibble(2), 0xD);
        assert_eq!(g.nibble(3), 0xC);
    }

    #[test]
    fn low_match_len() {
        let mut a = [0u8; DIGEST_LEN];
        let mut b = [0u8; DIGEST_LEN];
        a[DIGEST_LEN - 1] = 0x34;
        b[DIGEST_LEN - 1] = 0x34;
        a[DIGEST_LEN - 2] = 0x12;
        b[DIGEST_LEN - 2] = 0x52; // differ at nibble 3
        let (ga, gb) = (Guid::from_bytes(a), Guid::from_bytes(b));
        assert_eq!(ga.low_nibble_match_len(&gb), 3);
        assert_eq!(ga.low_nibble_match_len(&ga), NIBBLES);
    }

    #[test]
    fn bit_extraction() {
        let mut bytes = [0u8; DIGEST_LEN];
        bytes[DIGEST_LEN - 1] = 0b0000_0101;
        let g = Guid::from_bytes(bytes);
        assert!(g.bit(0));
        assert!(!g.bit(1));
        assert!(g.bit(2));
        assert!(!g.bit(3));
    }

    #[test]
    fn display_is_short_hex() {
        let g = Guid::from_label("x");
        let s = format!("{g}");
        assert_eq!(s.chars().count(), 9); // 8 hex + ellipsis
        assert!(g.to_hex().starts_with(&s[..8]));
        assert_eq!(g.to_hex().len(), 40);
    }
}
