//! SDSI-style locally linked namespaces (§4.1).
//!
//! Self-certifying GUIDs reduce naming to "a problem of secure key lookup.
//! We address this problem using the locally linked name spaces from the
//! SDSI framework [1, 42]." Every principal (key holder) maintains a local
//! namespace binding nicknames to other principals' public keys; compound
//! names like `alice's bob's calendar-key` resolve by chaining through
//! those local namespaces. There is no global key authority.

use std::collections::BTreeMap;
use std::fmt;

use oceanstore_crypto::schnorr::PublicKey;

/// One principal's local name space: nickname → principal key.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LocalNamespace {
    bindings: BTreeMap<String, PublicKey>,
}

/// Errors during linked-name resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A link in the chain was not bound.
    Unbound {
        /// The nickname that failed to resolve.
        nickname: String,
    },
    /// No namespace is published for an intermediate principal.
    NoNamespace {
        /// The principal whose namespace was unavailable.
        principal: PublicKey,
    },
    /// The chain was empty.
    EmptyChain,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::Unbound { nickname } => write!(f, "nickname {nickname:?} unbound"),
            NameError::NoNamespace { .. } => write!(f, "principal publishes no namespace"),
            NameError::EmptyChain => write!(f, "empty name chain"),
        }
    }
}

impl std::error::Error for NameError {}

impl LocalNamespace {
    /// An empty namespace.
    pub fn new() -> Self {
        LocalNamespace::default()
    }

    /// Binds `nickname` to a principal's key, replacing any prior binding.
    pub fn bind(&mut self, nickname: impl Into<String>, key: PublicKey) {
        self.bindings.insert(nickname.into(), key);
    }

    /// Looks up a single nickname.
    pub fn lookup(&self, nickname: &str) -> Option<PublicKey> {
        self.bindings.get(nickname).copied()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the namespace is empty.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Resolves a linked chain of nicknames ("alice's bob's carol") against
    /// this namespace, fetching intermediate principals' namespaces through
    /// `fetch` (in the full system, namespaces are OceanStore objects named
    /// by their owner's key).
    ///
    /// # Errors
    ///
    /// See [`NameError`].
    pub fn resolve_chain<F>(&self, chain: &[&str], mut fetch: F) -> Result<PublicKey, NameError>
    where
        F: FnMut(PublicKey) -> Option<LocalNamespace>,
    {
        if chain.is_empty() {
            return Err(NameError::EmptyChain);
        }
        let mut current = self.clone();
        let mut resolved = None;
        for (i, nickname) in chain.iter().enumerate() {
            let key = current
                .lookup(nickname)
                .ok_or_else(|| NameError::Unbound { nickname: (*nickname).into() })?;
            resolved = Some(key);
            if i + 1 < chain.len() {
                current = fetch(key).ok_or(NameError::NoNamespace { principal: key })?;
            }
        }
        Ok(resolved.expect("nonempty chain"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oceanstore_crypto::schnorr::KeyPair;
    use std::collections::HashMap;

    fn key(seed: &[u8]) -> PublicKey {
        KeyPair::from_seed(seed).public()
    }

    /// me -> alice -> bob -> carol.
    fn fixture() -> (LocalNamespace, HashMap<PublicKey, LocalNamespace>) {
        let (alice, bob, carol) = (key(b"alice"), key(b"bob"), key(b"carol"));
        let mut me = LocalNamespace::new();
        me.bind("alice", alice);
        let mut alice_ns = LocalNamespace::new();
        alice_ns.bind("bob", bob);
        let mut bob_ns = LocalNamespace::new();
        bob_ns.bind("carol", carol);
        let mut published = HashMap::new();
        published.insert(alice, alice_ns);
        published.insert(bob, bob_ns);
        (me, published)
    }

    #[test]
    fn single_link() {
        let (me, pubs) = fixture();
        let k = me.resolve_chain(&["alice"], |p| pubs.get(&p).cloned()).unwrap();
        assert_eq!(k, key(b"alice"));
    }

    #[test]
    fn chained_resolution() {
        let (me, pubs) = fixture();
        let k = me
            .resolve_chain(&["alice", "bob", "carol"], |p| pubs.get(&p).cloned())
            .unwrap();
        assert_eq!(k, key(b"carol"));
    }

    #[test]
    fn unbound_link() {
        let (me, pubs) = fixture();
        let err = me
            .resolve_chain(&["alice", "dave"], |p| pubs.get(&p).cloned())
            .unwrap_err();
        assert_eq!(err, NameError::Unbound { nickname: "dave".into() });
    }

    #[test]
    fn missing_namespace() {
        let (me, pubs) = fixture();
        // carol publishes no namespace, so chaining *through* her fails...
        let err = me
            .resolve_chain(&["alice", "bob", "carol", "dan"], |p| pubs.get(&p).cloned())
            .unwrap_err();
        assert_eq!(err, NameError::NoNamespace { principal: key(b"carol") });
    }

    #[test]
    fn empty_chain() {
        let (me, pubs) = fixture();
        assert_eq!(
            me.resolve_chain(&[], |p| pubs.get(&p).cloned()),
            Err(NameError::EmptyChain)
        );
    }

    #[test]
    fn names_are_local() {
        // Two principals can use the same nickname for different keys —
        // SDSI names are local, not global.
        let (me, mut pubs) = fixture();
        let mut alice_ns = pubs[&key(b"alice")].clone();
        alice_ns.bind("friend", key(b"x"));
        pubs.insert(key(b"alice"), alice_ns);
        let mut me2 = me.clone();
        me2.bind("friend", key(b"y"));
        let via_alice = me2
            .resolve_chain(&["alice", "friend"], |p| pubs.get(&p).cloned())
            .unwrap();
        let direct = me2.resolve_chain(&["friend"], |p| pubs.get(&p).cloned()).unwrap();
        assert_ne!(via_alice, direct);
    }
}
