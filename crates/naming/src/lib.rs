//! Naming and access control for OceanStore (§4.1, §4.2).
//!
//! * [`guid`] — 160-bit self-certifying GUIDs for objects, servers, and
//!   archival fragments, with the digit-extraction helpers the Plaxton
//!   location mesh routes by.
//! * [`directory`] — directory objects mapping human-readable names to
//!   GUIDs, with client-chosen roots ("the system as a whole has no one
//!   root").
//! * [`namespace`] — SDSI-style locally linked namespaces reducing secure
//!   naming to secure key lookup.
//! * [`acl`] — reader restriction (key distribution + revocation
//!   generations) and writer restriction (signed ACL certificates checked
//!   by servers).
//!
//! # Examples
//!
//! ```
//! use oceanstore_crypto::schnorr::KeyPair;
//! use oceanstore_naming::guid::Guid;
//!
//! let owner = KeyPair::from_seed(b"alice");
//! let guid = Guid::for_object(owner.public(), "calendar");
//! // Any server can check ownership from the GUID alone:
//! assert!(guid.certifies(owner.public(), "calendar"));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod directory;
pub mod guid;
pub mod namespace;

pub use acl::{Acl, AclCertificate, AclChoice, Privilege};
pub use directory::{DirEntry, Directory};
pub use guid::Guid;
pub use namespace::LocalNamespace;
