//! Directory objects (§4.1).
//!
//! "Certain OceanStore objects act as directories, mapping human-readable
//! names to GUIDs. To allow arbitrary directory hierarchies to be built, we
//! allow directories to contain pointers to other directories. A user of
//! the OceanStore can choose several directories as 'roots' ... such root
//! directories are only roots with respect to the clients that use them;
//! the system as a whole has no one root."
//!
//! Directories here are plain data structures; in the full system they
//! live inside OceanStore objects like any other data. Resolution is
//! parameterized over a fetch function so it works against any storage
//! backend (tests use in-memory maps, the core crate uses replicas).

use std::collections::BTreeMap;
use std::fmt;

use crate::guid::Guid;

/// What a directory entry points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirEntry {
    /// A data object.
    Object(Guid),
    /// Another directory (enabling arbitrary hierarchies).
    Directory(Guid),
}

impl DirEntry {
    /// The target GUID regardless of kind.
    pub fn guid(&self) -> Guid {
        match self {
            DirEntry::Object(g) | DirEntry::Directory(g) => *g,
        }
    }
}

/// A directory object: an ordered map of human-readable names to entries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Directory {
    entries: BTreeMap<String, DirEntry>,
}

/// Errors during path resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// A path component was not present in its directory.
    NotFound {
        /// The missing component.
        component: String,
    },
    /// A non-final component named an object rather than a directory.
    NotADirectory {
        /// The offending component.
        component: String,
    },
    /// The backing store could not supply a directory object.
    Unavailable {
        /// GUID of the directory that could not be fetched.
        guid: Guid,
    },
    /// The path was empty.
    EmptyPath,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NotFound { component } => write!(f, "no entry named {component:?}"),
            ResolveError::NotADirectory { component } => {
                write!(f, "{component:?} is not a directory")
            }
            ResolveError::Unavailable { guid } => write!(f, "directory {guid} unavailable"),
            ResolveError::EmptyPath => write!(f, "empty path"),
        }
    }
}

impl std::error::Error for ResolveError {}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Binds `name` to `entry`, replacing any previous binding. Returns the
    /// previous entry, if any.
    pub fn bind(&mut self, name: impl Into<String>, entry: DirEntry) -> Option<DirEntry> {
        self.entries.insert(name.into(), entry)
    }

    /// Removes a binding, returning it.
    pub fn unbind(&mut self, name: &str) -> Option<DirEntry> {
        self.entries.remove(name)
    }

    /// Looks up a single component.
    pub fn lookup(&self, name: &str) -> Option<DirEntry> {
        self.entries.get(name).copied()
    }

    /// Iterates bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, DirEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory has no bindings.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolves a multi-component path starting at this directory. `fetch`
    /// maps a directory GUID to its current contents (returning `None` when
    /// the object cannot be retrieved).
    ///
    /// # Errors
    ///
    /// See [`ResolveError`].
    pub fn resolve<F>(&self, path: &[&str], mut fetch: F) -> Result<DirEntry, ResolveError>
    where
        F: FnMut(Guid) -> Option<Directory>,
    {
        let (&last, init) = path.split_last().ok_or(ResolveError::EmptyPath)?;
        let mut current = self.clone();
        for &component in init {
            match current.lookup(component) {
                None => return Err(ResolveError::NotFound { component: component.into() }),
                Some(DirEntry::Object(_)) => {
                    return Err(ResolveError::NotADirectory { component: component.into() })
                }
                Some(DirEntry::Directory(g)) => {
                    current = fetch(g).ok_or(ResolveError::Unavailable { guid: g })?;
                }
            }
        }
        current
            .lookup(last)
            .ok_or(ResolveError::NotFound { component: last.into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn obj(label: &str) -> Guid {
        Guid::from_label(label)
    }

    /// Builds /home/alice/{calendar,mail} with a store of directories.
    fn fixture() -> (Directory, HashMap<Guid, Directory>) {
        let mut store = HashMap::new();
        let mut alice = Directory::new();
        alice.bind("calendar", DirEntry::Object(obj("cal")));
        alice.bind("mail", DirEntry::Object(obj("mail")));
        let alice_guid = obj("dir:alice");
        store.insert(alice_guid, alice);
        let mut home = Directory::new();
        home.bind("alice", DirEntry::Directory(alice_guid));
        let home_guid = obj("dir:home");
        store.insert(home_guid, home);
        let mut root = Directory::new();
        root.bind("home", DirEntry::Directory(home_guid));
        root.bind("motd", DirEntry::Object(obj("motd")));
        (root, store)
    }

    #[test]
    fn single_component() {
        let (root, store) = fixture();
        let e = root.resolve(&["motd"], |g| store.get(&g).cloned()).unwrap();
        assert_eq!(e, DirEntry::Object(obj("motd")));
    }

    #[test]
    fn nested_resolution() {
        let (root, store) = fixture();
        let e = root
            .resolve(&["home", "alice", "calendar"], |g| store.get(&g).cloned())
            .unwrap();
        assert_eq!(e.guid(), obj("cal"));
    }

    #[test]
    fn missing_component() {
        let (root, store) = fixture();
        let err = root
            .resolve(&["home", "bob", "calendar"], |g| store.get(&g).cloned())
            .unwrap_err();
        assert_eq!(err, ResolveError::NotFound { component: "bob".into() });
    }

    #[test]
    fn object_in_middle_of_path() {
        let (root, store) = fixture();
        let err = root
            .resolve(&["motd", "deeper"], |g| store.get(&g).cloned())
            .unwrap_err();
        assert_eq!(err, ResolveError::NotADirectory { component: "motd".into() });
    }

    #[test]
    fn unavailable_directory() {
        let (root, _) = fixture();
        let err = root
            .resolve(&["home", "alice", "calendar"], |_| None)
            .unwrap_err();
        assert!(matches!(err, ResolveError::Unavailable { .. }));
    }

    #[test]
    fn empty_path() {
        let (root, store) = fixture();
        assert_eq!(
            root.resolve(&[], |g| store.get(&g).cloned()),
            Err(ResolveError::EmptyPath)
        );
    }

    #[test]
    fn rebinding_replaces() {
        let mut d = Directory::new();
        assert_eq!(d.bind("x", DirEntry::Object(obj("a"))), None);
        let prev = d.bind("x", DirEntry::Object(obj("b")));
        assert_eq!(prev, Some(DirEntry::Object(obj("a"))));
        assert_eq!(d.lookup("x"), Some(DirEntry::Object(obj("b"))));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn multiple_roots_see_different_trees() {
        // "The system as a whole has no one root": two clients with
        // different root directories resolve the same name differently.
        let (root_a, store) = fixture();
        let mut root_b = Directory::new();
        root_b.bind("motd", DirEntry::Object(obj("other-motd")));
        let fetch = |g: Guid| store.get(&g).cloned();
        assert_ne!(
            root_a.resolve(&["motd"], fetch).unwrap().guid(),
            root_b.resolve(&["motd"], fetch).unwrap().guid()
        );
    }
}
