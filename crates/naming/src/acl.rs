//! Access control (§4.2): reader restriction and writer restriction.
//!
//! "OceanStore supports two primitive types of access control, namely
//! reader restriction and writer restriction. More complicated access
//! control policies, such as working groups, are constructed from these
//! two."
//!
//! * **Readers** are restricted by *key distribution*: data is encrypted
//!   (see `oceanstore_crypto::cipher`) and only holders of the read key can
//!   decrypt — nothing for servers to enforce, so this module carries only
//!   the revocation bookkeeping ([`ReadKeyState`]).
//! * **Writers** are restricted *at servers*: every write is signed, and
//!   well-behaved servers verify it against an ACL chosen by the owner via
//!   a signed certificate ("Owner says use ACL x for object foo"). ACL
//!   entries name a *signing key*, not an explicit identity.

use std::fmt;

use oceanstore_crypto::schnorr::{verify, KeyPair, PublicKey, Signature};

use crate::guid::Guid;

/// A privilege grantable through an ACL entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// May submit updates to the object.
    Write,
    /// May change the object's ACL (the owner always can).
    Administer,
}

/// One publicly readable ACL entry: a privilege plus the signing key of the
/// privileged user (never an explicit identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AclEntry {
    /// The privilege granted.
    pub privilege: Privilege,
    /// The key whose signatures exercise it.
    pub signer: PublicKey,
}

/// An access control list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Acl {
    entries: Vec<AclEntry>,
}

impl Acl {
    /// An ACL granting nothing (owner-only).
    pub fn empty() -> Self {
        Acl::default()
    }

    /// Builds an ACL from entries.
    pub fn from_entries(entries: Vec<AclEntry>) -> Self {
        Acl { entries }
    }

    /// Grants `privilege` to `signer`.
    pub fn grant(&mut self, signer: PublicKey, privilege: Privilege) {
        let entry = AclEntry { privilege, signer };
        if !self.entries.contains(&entry) {
            self.entries.push(entry);
        }
    }

    /// Removes every grant of `privilege` to `signer`.
    pub fn revoke(&mut self, signer: PublicKey, privilege: Privilege) {
        self.entries.retain(|e| !(e.signer == signer && e.privilege == privilege));
    }

    /// Whether `signer` holds `privilege` under this ACL.
    pub fn permits(&self, signer: PublicKey, privilege: Privilege) -> bool {
        self.entries.iter().any(|e| e.signer == signer && e.privilege == privilege)
    }

    /// The publicly readable entries.
    pub fn entries(&self) -> &[AclEntry] {
        &self.entries
    }

    /// Canonical bytes for signing/hashing.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|e| (e.signer, matches!(e.privilege, Privilege::Administer)));
        for e in sorted {
            out.extend_from_slice(&e.signer.to_bytes());
            out.push(matches!(e.privilege, Privilege::Administer) as u8);
        }
        out
    }
}

/// Which ACL an object uses: a specific one, or "a value indicating a
/// common default" (§4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AclChoice {
    /// A concrete ACL carried inline.
    Inline(Acl),
    /// Another OceanStore object holding the ACL.
    Object(Guid),
    /// The common default: owner-only writes.
    CommonDefault,
}

/// The signed certificate "Owner says use ACL x for object foo" (§4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclCertificate {
    /// The object the choice applies to.
    pub object: Guid,
    /// The chosen ACL.
    pub choice: AclChoice,
    /// The owner's public key (its hash with the object name must equal
    /// the object GUID for the certificate to be meaningful).
    pub owner: PublicKey,
    /// Owner's signature over (object, choice).
    pub signature: Signature,
}

/// Errors from certificate verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertError {
    /// The signature does not verify under the claimed owner key.
    BadSignature,
    /// The owner key does not certify the object GUID for the given name.
    NotOwner,
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::BadSignature => write!(f, "certificate signature invalid"),
            CertError::NotOwner => write!(f, "key does not own the object GUID"),
        }
    }
}

impl std::error::Error for CertError {}

impl AclCertificate {
    fn message(object: &Guid, choice: &AclChoice) -> Vec<u8> {
        let mut msg = b"acl-cert".to_vec();
        msg.extend_from_slice(object.as_bytes());
        match choice {
            AclChoice::Inline(acl) => {
                msg.push(0);
                msg.extend_from_slice(&acl.canonical_bytes());
            }
            AclChoice::Object(g) => {
                msg.push(1);
                msg.extend_from_slice(g.as_bytes());
            }
            AclChoice::CommonDefault => msg.push(2),
        }
        msg
    }

    /// Owner issues a certificate binding `choice` to `object`.
    pub fn issue(owner: &KeyPair, object: Guid, choice: AclChoice) -> Self {
        let signature = owner.sign(&Self::message(&object, &choice));
        AclCertificate { object, choice, owner: owner.public(), signature }
    }

    /// Server-side verification: the signature must verify, and the owner
    /// key must actually own the object's self-certifying GUID under
    /// `object_name`.
    ///
    /// # Errors
    ///
    /// [`CertError::BadSignature`] or [`CertError::NotOwner`].
    pub fn verify(&self, object_name: &str) -> Result<(), CertError> {
        if !verify(self.owner, &Self::message(&self.object, &self.choice), &self.signature) {
            return Err(CertError::BadSignature);
        }
        if !self.object.certifies(self.owner, object_name) {
            return Err(CertError::NotOwner);
        }
        Ok(())
    }
}

/// Reader-restriction bookkeeping: the current read-key generation and the
/// revocation story of §4.2 ("to revoke read permission, the owner must
/// request that replicas be deleted or re-encrypted with the new key").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadKeyState {
    generation: u64,
    /// Keys (by holder) that received the current generation.
    holders: Vec<PublicKey>,
}

impl Default for ReadKeyState {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadKeyState {
    /// Fresh state at generation 0 with no holders.
    pub fn new() -> Self {
        ReadKeyState { generation: 0, holders: Vec::new() }
    }

    /// Current key generation; the actual symmetric key is derived from
    /// the object's master secret and this number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Grants read access (records key distribution to `reader`).
    pub fn grant(&mut self, reader: PublicKey) {
        if !self.holders.contains(&reader) {
            self.holders.push(reader);
        }
    }

    /// Whether `reader` holds the current generation's key.
    pub fn holds_current_key(&self, reader: PublicKey) -> bool {
        self.holders.contains(&reader)
    }

    /// Revokes `reader`: bumps the generation and re-distributes only to
    /// the remaining holders. Returns the new generation, which the caller
    /// must use to re-encrypt replicas.
    pub fn revoke(&mut self, reader: PublicKey) -> u64 {
        self.holders.retain(|h| *h != reader);
        self.generation += 1;
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oceanstore_crypto::schnorr::KeyPair;

    fn kp(seed: &[u8]) -> KeyPair {
        KeyPair::from_seed(seed)
    }

    #[test]
    fn grant_and_revoke_write() {
        let alice = kp(b"alice").public();
        let mut acl = Acl::empty();
        assert!(!acl.permits(alice, Privilege::Write));
        acl.grant(alice, Privilege::Write);
        assert!(acl.permits(alice, Privilege::Write));
        assert!(!acl.permits(alice, Privilege::Administer));
        acl.revoke(alice, Privilege::Write);
        assert!(!acl.permits(alice, Privilege::Write));
    }

    #[test]
    fn duplicate_grants_collapse() {
        let a = kp(b"a").public();
        let mut acl = Acl::empty();
        acl.grant(a, Privilege::Write);
        acl.grant(a, Privilege::Write);
        assert_eq!(acl.entries().len(), 1);
    }

    #[test]
    fn certificate_roundtrip() {
        let owner = kp(b"owner");
        let object = Guid::for_object(owner.public(), "inbox");
        let mut acl = Acl::empty();
        acl.grant(kp(b"bob").public(), Privilege::Write);
        let cert = AclCertificate::issue(&owner, object, AclChoice::Inline(acl));
        assert_eq!(cert.verify("inbox"), Ok(()));
    }

    #[test]
    fn certificate_rejects_non_owner() {
        let owner = kp(b"owner");
        let mallory = kp(b"mallory");
        // Mallory signs a certificate for an object she does not own.
        let object = Guid::for_object(owner.public(), "inbox");
        let cert = AclCertificate::issue(&mallory, object, AclChoice::CommonDefault);
        assert_eq!(cert.verify("inbox"), Err(CertError::NotOwner));
    }

    #[test]
    fn certificate_rejects_tampered_choice() {
        let owner = kp(b"owner");
        let object = Guid::for_object(owner.public(), "inbox");
        let mut cert = AclCertificate::issue(&owner, object, AclChoice::CommonDefault);
        cert.choice = AclChoice::Object(Guid::from_label("evil"));
        assert_eq!(cert.verify("inbox"), Err(CertError::BadSignature));
    }

    #[test]
    fn certificate_rejects_wrong_name() {
        let owner = kp(b"owner");
        let object = Guid::for_object(owner.public(), "inbox");
        let cert = AclCertificate::issue(&owner, object, AclChoice::CommonDefault);
        assert_eq!(cert.verify("outbox"), Err(CertError::NotOwner));
    }

    #[test]
    fn read_revocation_bumps_generation() {
        let (alice, bob) = (kp(b"alice").public(), kp(b"bob").public());
        let mut state = ReadKeyState::new();
        state.grant(alice);
        state.grant(bob);
        assert!(state.holds_current_key(bob));
        let gen = state.revoke(bob);
        assert_eq!(gen, 1);
        assert!(!state.holds_current_key(bob));
        assert!(state.holds_current_key(alice));
    }
}
