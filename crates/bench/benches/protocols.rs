//! Criterion benchmarks for the simulated protocols: one per reproduced
//! experiment family (Byzantine update = Figure 6's kernel, archival fetch
//! = S3's kernel, Plaxton locate = S2's kernel, Bloom query = S1's
//! kernel). These measure *host* CPU time to execute the deterministic
//! simulations, demonstrating the harness is fast enough for the full
//! parameter sweeps in the `report` binary.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use oceanstore_bloom::routing::{converge_filters, make_network, BloomConfig};
use oceanstore_consensus::harness::{build_tier, run_updates};
use oceanstore_naming::guid::Guid;
use oceanstore_plaxton::{build_network, PlaxtonConfig};
use oceanstore_sim::{NodeId, SimDuration, Simulator, Topology};

fn bench_pbft_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("pbft_update");
    for m in [1usize, 4] {
        g.bench_function(format!("m{m}_4k"), |b| {
            b.iter(|| {
                let mut tier = build_tier(m, SimDuration::from_millis(100), 42);
                run_updates(&mut tier, 4096, 1)
            })
        });
    }
    g.finish();
}

fn bench_plaxton_locate(c: &mut Criterion) {
    // Build once; bench the publish+locate cycle.
    let seed = 5u64;
    c.bench_function("plaxton/publish_locate_64", |b| {
        b.iter(|| {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let topo = Arc::new(Topology::random_geometric(
                64,
                0.25,
                SimDuration::from_millis(20),
                &mut rng,
            ));
            let (nodes, _) = build_network(&topo, &PlaxtonConfig::default(), seed);
            let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let topo2 =
                Topology::random_geometric(64, 0.25, SimDuration::from_millis(20), &mut rng2);
            let mut sim = Simulator::new(topo2, nodes, seed);
            sim.start();
            let obj = Guid::from_label("bench-object");
            sim.with_node_ctx(NodeId(7), |n, ctx| n.publish(ctx, obj));
            sim.run_for(SimDuration::from_secs(1));
            sim.with_node_ctx(NodeId(50), |n, ctx| n.locate(ctx, 1, obj));
            sim.run_for(SimDuration::from_secs(1));
            assert!(sim.node(NodeId(50)).outcome(1).is_some());
        })
    });
}

fn bench_bloom_query(c: &mut Criterion) {
    c.bench_function("bloom/converge_and_query_48", |b| {
        b.iter(|| {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
            let topo =
                Topology::random_geometric(48, 0.2, SimDuration::from_millis(10), &mut rng);
            let cfg = BloomConfig {
                advertise_interval: SimDuration::from_millis(100),
                ..BloomConfig::default()
            };
            let nodes = make_network(&topo, &cfg);
            let mut sim = Simulator::new(topo, nodes, 9);
            let obj = Guid::from_label("bench-bloom");
            sim.node_mut(NodeId(40)).insert_object(obj);
            sim.start();
            converge_filters(&mut sim, &cfg);
            sim.with_node_ctx(NodeId(0), |n, ctx| n.start_query(ctx, 1, obj));
            sim.run_for(SimDuration::from_millis(500));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pbft_update, bench_plaxton_locate, bench_bloom_query
}
criterion_main!(benches);
