//! Criterion benchmarks for the PR-4 fast paths: word/SIMD GF(2^8)
//! kernels, Reed-Solomon encode across code shapes, and simulator engine
//! throughput against the frozen pre-PR baseline engine.
//!
//! The authoritative before/after numbers live in `BENCH_PR<N>.json`
//! (emitted by the `perf_report` binary, which interleaves A/B batches to
//! cancel host-speed drift); these criterion benches are for local
//! iteration and regression spotting with statistics attached.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oceanstore_bench::baseline;
use oceanstore_erasure::gf256;
use oceanstore_erasure::rs::ReedSolomon;
use oceanstore_sim::engine::{Context, Message, Protocol, Simulator};
use oceanstore_sim::time::{SimDuration, SimTime};
use oceanstore_sim::topology::{NodeId, Topology};

// ---------------------------------------------------------------- gf256 --

fn bench_gf256(c: &mut Criterion) {
    let len = 256 * 1024;
    let src: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
    let mut dst = vec![0u8; len];
    let mut g = c.benchmark_group("gf256/mul_acc_slice");
    g.throughput(Throughput::Bytes(len as u64));
    g.bench_function("ref", |b| b.iter(|| gf256::mul_acc_slice_ref(&mut dst, &src, 0x57)));
    g.bench_function("fast", |b| b.iter(|| gf256::mul_acc_slice(&mut dst, &src, 0x57)));
    g.finish();
}

// ------------------------------------------------------------------- rs --

fn bench_rs_encode(c: &mut Criterion) {
    let shard = 4 * 1024;
    let mut g = c.benchmark_group("rs/encode");
    // k in {16, 32} x n in {32, 64}, minus the parity-free (32, 32) shape.
    for (k, n) in [(16, 32), (16, 64), (32, 64)] {
        let rs = ReedSolomon::new(k, n).expect("valid code");
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..shard).map(|j| ((i * 131 + j * 7) % 256) as u8).collect())
            .collect();
        g.throughput(Throughput::Bytes((k * shard) as u64));
        g.bench_function(format!("k{k}_n{n}"), |b| {
            b.iter(|| rs.encode(&data).expect("encodes"))
        });
        g.bench_function(format!("k{k}_n{n}_ref"), |b| {
            b.iter(|| rs.encode_ref(&data).expect("encodes"))
        });
    }
    g.finish();
}

// --------------------------------------------------------------- engine --

#[derive(Debug, Clone)]
struct Blob(Vec<u8>);

impl Message for Blob {
    fn wire_size(&self) -> usize {
        self.0.len()
    }
}

const PERIOD_MS: u64 = 5;
const MESH_N: usize = 16;
const MESH_ROUNDS: u32 = 30;
const FRAGMENT_BYTES: usize = 4096;

/// Fragment multicast on the production engine (shared-payload delivery).
struct Gossip {
    id: usize,
    rounds_left: u32,
    bytes_seen: u64,
}

impl Protocol for Gossip {
    type Msg = Blob;

    fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
        ctx.set_timer(SimDuration::from_millis(PERIOD_MS), 0);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, Blob>, _from: NodeId, msg: Blob) {
        self.bytes_seen += msg.0.len() as u64 + msg.0[0] as u64;
    }

    fn on_message_ref(&mut self, _ctx: &mut Context<'_, Blob>, _from: NodeId, msg: &Blob) {
        self.bytes_seen += msg.0.len() as u64 + msg.0[0] as u64;
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Blob>, _tag: u64) {
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        let me = self.id;
        ctx.broadcast(
            (0..MESH_N).filter(move |&i| i != me).map(NodeId),
            Blob(vec![0xAB; FRAGMENT_BYTES]),
        );
        ctx.set_timer(SimDuration::from_millis(PERIOD_MS), 0);
    }
}

/// The same protocol against the frozen pre-PR baseline engine.
struct BaselineGossip {
    id: usize,
    rounds_left: u32,
    bytes_seen: u64,
}

impl baseline::Protocol for BaselineGossip {
    type Msg = Blob;

    fn on_start(&mut self, ctx: &mut baseline::Context<'_, Blob>) {
        ctx.set_timer(SimDuration::from_millis(PERIOD_MS), 0);
    }

    fn on_message(&mut self, _ctx: &mut baseline::Context<'_, Blob>, _from: NodeId, msg: Blob) {
        self.bytes_seen += msg.0.len() as u64 + msg.0[0] as u64;
    }

    fn on_timer(&mut self, ctx: &mut baseline::Context<'_, Blob>, _tag: u64) {
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        let me = self.id;
        ctx.broadcast(
            (0..MESH_N).filter(move |&i| i != me).map(NodeId),
            Blob(vec![0xAB; FRAGMENT_BYTES]),
        );
        ctx.set_timer(SimDuration::from_millis(PERIOD_MS), 0);
    }
}

const GRID_SIDE: usize = 16;
const GRID_N: usize = GRID_SIDE * GRID_SIDE;
const GRID_PERIODS_MS: [u64; 4] = [5, 11, 17, 29];
const PARKED_PER_NODE: u64 = 64;

/// Timer-churn workload with a parked long-dated timeout population
/// (the regime the hierarchical wheel is built for).
struct GridTicker {
    id: usize,
    fires: u64,
    horizon: SimTime,
}

impl Protocol for GridTicker {
    type Msg = Blob;

    fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
        for tag in 0..4 {
            ctx.set_timer(
                SimDuration::from_micros(GRID_PERIODS_MS[tag as usize] * 1000 + self.id as u64),
                tag,
            );
        }
        for i in 0..PARKED_PER_NODE {
            ctx.set_timer(
                SimDuration::from_secs(30 + i) + SimDuration::from_micros(self.id as u64),
                100 + i,
            );
        }
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, Blob>, _from: NodeId, _msg: Blob) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, Blob>, tag: u64) {
        if tag >= 100 {
            return;
        }
        self.fires += 1;
        if self.fires.is_multiple_of(4) {
            let to = NodeId((self.id + 1 + (self.fires as usize % 3)) % GRID_N);
            ctx.send(to, Blob(vec![0x5A; 16]));
        }
        let d = SimDuration::from_millis(GRID_PERIODS_MS[tag as usize]);
        if ctx.now() + d <= self.horizon {
            ctx.set_timer(d, tag);
        }
    }
}

struct BaselineGridTicker {
    id: usize,
    fires: u64,
    horizon: SimTime,
}

impl baseline::Protocol for BaselineGridTicker {
    type Msg = Blob;

    fn on_start(&mut self, ctx: &mut baseline::Context<'_, Blob>) {
        for tag in 0..4 {
            ctx.set_timer(
                SimDuration::from_micros(GRID_PERIODS_MS[tag as usize] * 1000 + self.id as u64),
                tag,
            );
        }
        for i in 0..PARKED_PER_NODE {
            ctx.set_timer(
                SimDuration::from_secs(30 + i) + SimDuration::from_micros(self.id as u64),
                100 + i,
            );
        }
    }

    fn on_message(&mut self, _ctx: &mut baseline::Context<'_, Blob>, _from: NodeId, _msg: Blob) {}

    fn on_timer(&mut self, ctx: &mut baseline::Context<'_, Blob>, tag: u64) {
        if tag >= 100 {
            return;
        }
        self.fires += 1;
        if self.fires.is_multiple_of(4) {
            let to = NodeId((self.id + 1 + (self.fires as usize % 3)) % GRID_N);
            ctx.send(to, Blob(vec![0x5A; 16]));
        }
        let d = SimDuration::from_millis(GRID_PERIODS_MS[tag as usize]);
        if ctx.now() + d <= self.horizon {
            ctx.set_timer(d, tag);
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/events_per_sec");

    let horizon =
        SimTime::ZERO + SimDuration::from_millis((MESH_ROUNDS as u64 + 2) * PERIOD_MS);
    g.bench_function("full_mesh_gossip/production", |b| {
        b.iter(|| {
            let nodes: Vec<Gossip> = (0..MESH_N)
                .map(|id| Gossip { id, rounds_left: MESH_ROUNDS, bytes_seen: 0 })
                .collect();
            let mut sim = Simulator::new(
                Topology::full_mesh(MESH_N, SimDuration::from_millis(2)),
                nodes,
                42,
            );
            sim.start();
            sim.run_until(horizon);
            sim.events_processed()
        })
    });
    g.bench_function("full_mesh_gossip/baseline", |b| {
        b.iter(|| {
            let nodes: Vec<BaselineGossip> = (0..MESH_N)
                .map(|id| BaselineGossip { id, rounds_left: MESH_ROUNDS, bytes_seen: 0 })
                .collect();
            let mut sim = baseline::Simulator::new(
                Topology::full_mesh(MESH_N, SimDuration::from_millis(2)),
                nodes,
                42,
            );
            sim.start();
            sim.run_until(horizon);
            sim.events_processed()
        })
    });

    let horizon = SimTime::ZERO + SimDuration::from_millis(300);
    let topo = Topology::grid(GRID_SIDE, GRID_SIDE, SimDuration::from_millis(1));
    topo.warm_dist();
    g.bench_function("grid_parked_timers/production", |b| {
        b.iter(|| {
            let nodes: Vec<GridTicker> =
                (0..GRID_N).map(|id| GridTicker { id, fires: 0, horizon }).collect();
            let mut sim = Simulator::new(topo.clone(), nodes, 7);
            sim.start();
            sim.run_until(horizon);
            sim.events_processed()
        })
    });
    g.bench_function("grid_parked_timers/baseline", |b| {
        b.iter(|| {
            let nodes: Vec<BaselineGridTicker> =
                (0..GRID_N).map(|id| BaselineGridTicker { id, fires: 0, horizon }).collect();
            let mut sim = baseline::Simulator::new(topo.clone(), nodes, 7);
            sim.start();
            sim.run_until(horizon);
            sim.events_processed()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gf256, bench_rs_encode, bench_engine
}
criterion_main!(benches);
