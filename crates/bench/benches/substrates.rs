//! Criterion microbenchmarks for the cryptographic and coding substrates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use oceanstore_crypto::cipher::BlockCipherKey;
use oceanstore_crypto::schnorr::{verify, KeyPair};
use oceanstore_crypto::sha1::sha1;
use oceanstore_erasure::{ObjectCodec, CodeKind};

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| b.iter(|| sha1(&data)));
    }
    g.finish();
}

fn bench_schnorr(c: &mut Criterion) {
    let kp = KeyPair::from_seed(b"bench");
    let msg = b"a typical update digest payload";
    c.bench_function("schnorr/sign", |b| b.iter(|| kp.sign(msg)));
    let sig = kp.sign(msg);
    c.bench_function("schnorr/verify", |b| b.iter(|| verify(kp.public(), msg, &sig)));
}

fn bench_cipher(c: &mut Criterion) {
    let key = BlockCipherKey::from_seed(b"bench");
    let block = vec![0x5Au8; 4096];
    let mut g = c.benchmark_group("position_cipher");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("encrypt_4k", |b| b.iter(|| key.encrypt_block(7, &block)));
    g.finish();
}

fn bench_erasure(c: &mut Criterion) {
    let data = vec![0x3Cu8; 64 * 1024];
    let mut g = c.benchmark_group("erasure_64k");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for (kind, name) in [(CodeKind::ReedSolomon, "rs_8_16"), (CodeKind::Tornado, "tornado_8_16")] {
        let codec = ObjectCodec::new(kind, 8, 16, 7).expect("valid");
        g.bench_function(format!("{name}/encode"), |b| {
            b.iter(|| codec.encode_object(&data).expect("encodes"))
        });
        let frags = codec.encode_object(&data).expect("encodes");
        g.bench_function(format!("{name}/decode_with_losses"), |b| {
            b.iter_batched(
                || {
                    let mut have: Vec<Option<Vec<u8>>> =
                        frags.iter().cloned().map(Some).collect();
                    // Tornado needs survivors beyond k; lose 3 data shards.
                    have[0] = None;
                    have[3] = None;
                    have[6] = None;
                    have
                },
                |mut have| codec.decode_object(&mut have).expect("decodes"),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sha1, bench_schnorr, bench_cipher, bench_erasure
}
criterion_main!(benches);
