//! S3: "Although only one half of the fragments were required to
//! reconstruct the object, we found that issuing requests for extra
//! fragments proved beneficial due to dropped requests." (§5)
//!
//! Reconstruction success rate and latency as a function of how many extra
//! fragments are requested, under varying message-drop probabilities.

use oceanstore_archival::fragment::archive_object;
use oceanstore_archival::protocol::{disseminate, ArchNode};
use oceanstore_erasure::object::{CodeKind, ObjectCodec};
use oceanstore_sim::{NodeId, SimDuration, Simulator, Topology};

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct FragmentRow {
    /// Message drop probability.
    pub drop_prob: f64,
    /// Extra fragments requested beyond k.
    pub extra: usize,
    /// Trials run.
    pub trials: usize,
    /// Successful reconstructions.
    pub successes: usize,
    /// Mean completion latency over successes (ms).
    pub mean_latency_ms: f64,
}

/// Runs the sweep: `k = 8`, `n = 16` rate-1/2 Reed-Solomon.
pub fn run(drop_probs: &[f64], extras: &[usize], trials: usize, seed: u64) -> Vec<FragmentRow> {
    let k = 8;
    let n = 16;
    let codec = ObjectCodec::new(CodeKind::ReedSolomon, k, n, 0).expect("valid params");
    let payload: Vec<u8> = (0..4000u32).map(|i| (i % 251) as u8).collect();
    let mut out = Vec::new();
    for &p in drop_probs {
        for &extra in extras {
            let mut successes = 0usize;
            let mut latency_sum = 0.0f64;
            for t in 0..trials {
                let topo = Topology::full_mesh(n + 1, SimDuration::from_millis(30));
                let nodes: Vec<ArchNode> = (0..n + 1).map(|_| ArchNode::new()).collect();
                let mut sim = Simulator::new(topo, nodes, seed + t as u64);
                sim.start();
                let arch = archive_object(&codec, &payload).expect("encodes");
                let guid = arch.guid;
                let sites: Vec<NodeId> = (0..n).map(NodeId).collect();
                let holders = sim.with_node_ctx(NodeId(n), |node, ctx| {
                    disseminate(ctx, node, arch.fragments.clone(), &sites)
                });
                sim.run_to_quiescence(100_000);
                sim.set_drop_prob(p);
                let start = sim.now();
                let c = codec.clone();
                sim.with_node_ctx(NodeId(n), |node, ctx| {
                    node.fetch(ctx, 1, guid, c, &holders, extra);
                });
                sim.run_to_quiescence(1_000_000);
                if let Some(o) = sim.node(NodeId(n)).outcome(1) {
                    successes += 1;
                    latency_sum += o.completed_at.saturating_since(start).as_millis() as f64;
                }
            }
            out.push(FragmentRow {
                drop_prob: p,
                extra,
                trials,
                successes,
                mean_latency_ms: if successes == 0 {
                    f64::NAN
                } else {
                    latency_sum / successes as f64
                },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extras_help_under_drops() {
        let rows = run(&[0.2], &[0, 8], 8, 11);
        let none = rows.iter().find(|r| r.extra == 0).unwrap();
        let full = rows.iter().find(|r| r.extra == 8).unwrap();
        assert!(full.successes > none.successes, "none={none:?} full={full:?}");
    }

    #[test]
    fn no_drops_everything_succeeds_fast() {
        let rows = run(&[0.0], &[0], 3, 5);
        assert_eq!(rows[0].successes, 3);
        assert!((rows[0].mean_latency_ms - 60.0).abs() < 1.0, "{rows:?}");
    }
}
