//! Table 1 (the in-text §4.5 reliability example): availability of a
//! document on a million machines with ten percent down, comparing plain
//! replication against erasure coding at equal storage cost — plus the
//! extended sweep (S6) over fragment counts.

use oceanstore_archival::reliability::{
    erasure_availability, nines, replication_availability,
};

/// One row of the reliability table.
#[derive(Debug, Clone)]
pub struct ReliabilityRow {
    /// Scheme description.
    pub scheme: String,
    /// Storage blow-up factor relative to the raw document.
    pub storage_factor: f64,
    /// Availability probability.
    pub availability: f64,
    /// Nines of availability.
    pub nines: f64,
}

/// The paper's scenario: 10⁶ machines, 10% down.
pub const MACHINES: u64 = 1_000_000;
/// Unavailable machines in the scenario.
pub const DOWN: u64 = 100_000;

/// The paper's headline rows: 2× replication, rate-1/2 with 16 fragments,
/// rate-1/2 with 32 fragments.
pub fn paper_rows() -> Vec<ReliabilityRow> {
    vec![
        row("2x replication", 2.0, replication_availability(MACHINES, DOWN, 2)),
        row("4x replication", 4.0, replication_availability(MACHINES, DOWN, 4)),
        row(
            "rate-1/2 erasure, 16 fragments (any 8)",
            2.0,
            erasure_availability(MACHINES, DOWN, 16, 8),
        ),
        row(
            "rate-1/2 erasure, 32 fragments (any 16)",
            2.0,
            erasure_availability(MACHINES, DOWN, 32, 16),
        ),
        row(
            "rate-1/2 erasure, 64 fragments (any 32)",
            2.0,
            erasure_availability(MACHINES, DOWN, 64, 32),
        ),
        row(
            "rate-1/4 erasure, 32 fragments (any 8)",
            4.0,
            erasure_availability(MACHINES, DOWN, 32, 8),
        ),
    ]
}

/// Extended sweep: rate-1/2 codes from 4 to 64 fragments.
pub fn sweep_rows() -> Vec<ReliabilityRow> {
    [4u64, 8, 16, 24, 32, 48, 64]
        .into_iter()
        .map(|f| {
            row(
                &format!("rate-1/2 erasure, {f} fragments"),
                2.0,
                erasure_availability(MACHINES, DOWN, f, f / 2),
            )
        })
        .collect()
}

fn row(scheme: &str, storage_factor: f64, availability: f64) -> ReliabilityRow {
    ReliabilityRow {
        scheme: scheme.to_string(),
        storage_factor,
        availability,
        nines: nines(availability),
    }
}

/// The improvement factor 16 → 32 fragments the paper quotes as "a factor
/// of 4000".
pub fn improvement_16_to_32() -> f64 {
    let p16 = erasure_availability(MACHINES, DOWN, 16, 8);
    let p32 = erasure_availability(MACHINES, DOWN, 32, 16);
    (1.0 - p16) / (1.0 - p32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers_match_paper() {
        let rows = paper_rows();
        let repl = &rows[0];
        assert!((repl.availability - 0.99).abs() < 0.001, "{repl:?}");
        let e16 = rows.iter().find(|r| r.scheme.contains("16 fragments")).unwrap();
        assert!((e16.availability - 0.999994).abs() < 2e-6, "{e16:?}");
        assert!(improvement_16_to_32() > 1000.0);
    }

    #[test]
    fn sweep_is_monotone() {
        let rows = sweep_rows();
        for w in rows.windows(2) {
            assert!(w[1].availability >= w[0].availability);
        }
    }
}
