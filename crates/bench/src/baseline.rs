//! A frozen copy of the pre-fast-path simulation engine, kept so the perf
//! report can measure the production engine against the exact code it
//! replaced.
//!
//! This is the engine as it stood before the timer wheel, `Arc`-shared
//! multicast payloads, and pooled action buffers landed: timers share the
//! message `BinaryHeap` as owned events, every callback allocates a fresh
//! action `Vec`, and a fan-out is a loop of deep per-recipient clones. It is
//! deliberately self-contained (own `Protocol`/`Context` types) so it can
//! never drift into sharing the optimized code paths; only passive types
//! (`Topology`, `SimTime`, `NetStats`, `Message`) come from the sim crate.
//!
//! Nothing outside `crates/bench` should use this. Protocol logic benched
//! against it must be written twice — once per engine — with identical
//! behavior; see `bin/perf_report.rs`.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use oceanstore_sim::engine::Message;
use oceanstore_sim::time::{SimDuration, SimTime};
use oceanstore_sim::topology::{NodeId, Topology};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Local stand-in for the sim crate's `NetStats` (whose recorders are
/// crate-private). Mirrors the per-send bookkeeping cost — total counters
/// plus a per-class hash-map update — so baseline route() does the same
/// kind of work per message as the production engine's.
#[derive(Debug, Default)]
pub struct BaselineStats {
    msgs: u64,
    bytes: u64,
    drops: u64,
    classes: HashMap<&'static str, (u64, u64)>,
}

impl BaselineStats {
    fn record_send(&mut self, bytes: usize, class: &'static str) {
        self.msgs += 1;
        self.bytes += bytes as u64;
        let e = self.classes.entry(class).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes as u64;
    }

    fn record_drop(&mut self) {
        self.drops += 1;
    }

    /// Total messages put on the wire.
    pub fn total_messages(&self) -> u64 {
        self.msgs
    }

    /// Total bytes put on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Messages dropped before delivery.
    pub fn dropped_messages(&self) -> u64 {
        self.drops
    }
}

/// The baseline engine's protocol trait (no `on_message_ref`, no broadcast
/// fast path — fan-out is a caller-side loop of owned sends).
pub trait Protocol {
    /// Message type exchanged between nodes.
    type Msg: Message;

    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}
    /// Called when a message addressed to this node arrives.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);
    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Msg>, _tag: u64) {}
}

#[derive(Debug)]
enum Action<M> {
    Send { to: NodeId, msg: M },
    Timer { delay: SimDuration, tag: u64 },
}

/// Callback handle mirroring the old engine's `Context`.
#[derive(Debug)]
pub struct Context<'a, M> {
    now: SimTime,
    actions: &'a mut Vec<Action<M>>,
    rng: &'a mut ChaCha8Rng,
}

impl<M: Clone> Context<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Queues a message to `to`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// The pre-multicast fan-out: one deep clone per recipient.
    pub fn broadcast(&mut self, to: impl IntoIterator<Item = NodeId>, msg: M) {
        for node in to {
            self.actions.push(Action::Send { to: node, msg: msg.clone() });
        }
    }

    /// Schedules [`Protocol::on_timer`] with `tag` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.actions.push(Action::Timer { delay, tag });
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut impl Rng {
        self.rng
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, tag: u64 },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The pre-fast-path simulator: one `BinaryHeap` holds both messages and
/// timers as owned events.
pub struct Simulator<P: Protocol> {
    nodes: Vec<P>,
    node_rngs: Vec<ChaCha8Rng>,
    topo: Topology,
    clock: SimTime,
    queue: BinaryHeap<Event<P::Msg>>,
    seq: u64,
    stats: BaselineStats,
    down: Vec<bool>,
    drop_prob: f64,
    link_drops: HashMap<(usize, usize), f64>,
    engine_rng: ChaCha8Rng,
    events_processed: u64,
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator over `topology` with one protocol per node,
    /// seeding RNGs exactly as the production engine does.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != topology.len()`.
    pub fn new(topology: Topology, nodes: Vec<P>, seed: u64) -> Self {
        assert_eq!(nodes.len(), topology.len(), "one protocol instance per topology node");
        let n = nodes.len();
        let node_rngs = (0..n)
            .map(|i| {
                ChaCha8Rng::seed_from_u64(
                    seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
                )
            })
            .collect();
        Simulator {
            nodes,
            node_rngs,
            topo: topology,
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            stats: BaselineStats::default(),
            down: vec![false; n],
            drop_prob: 0.0,
            link_drops: HashMap::new(),
            engine_rng: ChaCha8Rng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03),
            events_processed: 0,
        }
    }

    /// Calls [`Protocol::on_start`] on every live node.
    pub fn start(&mut self) {
        for i in 0..self.nodes.len() {
            if !self.down[i] {
                self.dispatch(NodeId(i), |node, ctx| node.on_start(ctx));
            }
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Network accounting so far.
    pub fn stats(&self) -> &BaselineStats {
        &self.stats
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Runs a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else { return false };
        debug_assert!(ev.at >= self.clock, "time must be monotonic");
        self.clock = ev.at;
        self.events_processed += 1;
        match ev.kind {
            EventKind::Deliver { from, to, msg } => {
                if self.down[to.0] {
                    self.stats.record_drop();
                } else {
                    self.dispatch(to, |node, ctx| node.on_message(ctx, from, msg));
                }
            }
            EventKind::Timer { node, tag } => {
                if !self.down[node.0] {
                    self.dispatch(node, |n, ctx| n.on_timer(ctx, tag));
                }
            }
        }
        true
    }

    /// Runs events with timestamps `<= until`, leaving later ones queued.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(ev) = self.queue.peek() {
            if ev.at > until {
                break;
            }
            self.step();
        }
        if self.clock < until {
            self.clock = until;
        }
    }

    fn push(&mut self, mut ev: Event<P::Msg>) {
        ev.seq = self.seq;
        self.seq += 1;
        self.queue.push(ev);
    }

    fn dispatch(&mut self, node: NodeId, f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>)) {
        // The old engine's signature cost: a fresh Vec per callback.
        let mut actions = Vec::new();
        {
            let mut ctx = Context {
                now: self.clock,
                actions: &mut actions,
                rng: &mut self.node_rngs[node.0],
            };
            f(&mut self.nodes[node.0], &mut ctx);
        }
        self.apply_actions(node, actions);
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action<P::Msg>>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => self.route(node, to, msg),
                Action::Timer { delay, tag } => {
                    let at = self.clock + delay;
                    self.push(Event { at, seq: 0, kind: EventKind::Timer { node, tag } });
                }
            }
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        self.stats.record_send(msg.wire_size(), msg.class());
        if self.drop_prob > 0.0 && self.engine_rng.gen::<f64>() < self.drop_prob {
            self.stats.record_drop();
            return;
        }
        if let Some(&p) = self.link_drops.get(&(from.0.min(to.0), from.0.max(to.0))) {
            if self.engine_rng.gen::<f64>() < p {
                self.stats.record_drop();
                return;
            }
        }
        let Some(latency) = self.topo.dist(from, to) else {
            self.stats.record_drop();
            return;
        };
        let at = self.clock + latency;
        self.push(Event { at, seq: 0, kind: EventKind::Deliver { from, to, msg } });
    }
}
