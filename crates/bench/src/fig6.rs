//! Figure 6: "The cost of an update in bytes sent across the network,
//! normalized to the minimum cost needed to send the update to each of the
//! replicas", for (m=2, n=7), (m=3, n=10), (m=4, n=13).

use oceanstore_consensus::harness::{build_tier, run_updates, CostModel};
use oceanstore_sim::SimDuration;

/// One point of the Figure 6 curves.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Faults tolerated.
    pub m: usize,
    /// Tier size (3m + 1).
    pub n: usize,
    /// Update size in bytes.
    pub update_size: usize,
    /// Measured bytes across the network.
    pub measured_bytes: u64,
    /// Measured bytes normalized to `u · n` (the figure's y-axis).
    pub normalized: f64,
    /// The analytic model's prediction of the same ratio.
    pub model_normalized: f64,
}

/// The paper's x-axis: update sizes from 100 B to 10 MB.
pub fn default_sizes() -> Vec<usize> {
    vec![
        100, 250, 500, 1_000, 2_500, 4_000, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
        1_000_000, 2_500_000, 5_000_000, 10_000_000,
    ]
}

/// Runs the experiment: one committed update per (m, size) over a 100 ms
/// WAN mesh, counting real wire bytes.
pub fn run(ms: &[usize], sizes: &[usize]) -> Vec<Fig6Point> {
    let model = CostModel::default();
    let mut out = Vec::new();
    for &m in ms {
        let n = 3 * m + 1;
        for &u in sizes {
            let mut tier = build_tier(m, SimDuration::from_millis(100), 42 + m as u64);
            let run = run_updates(&mut tier, u, 1);
            let measured = run.total_bytes;
            out.push(Fig6Point {
                m,
                n,
                update_size: u,
                measured_bytes: measured,
                normalized: measured as f64 / (u as f64 * n as f64),
                model_normalized: model.normalized(n, u),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_figure6_shape() {
        let points = run(&[2, 4], &[100, 4_000, 100_000, 1_000_000]);
        // Normalized cost decreases monotonically with update size.
        for m in [2usize, 4] {
            let curve: Vec<f64> = points
                .iter()
                .filter(|p| p.m == m)
                .map(|p| p.normalized)
                .collect();
            for w in curve.windows(2) {
                assert!(w[1] <= w[0], "normalized cost must fall with size: {curve:?}");
            }
            // Approaches 1 for large updates.
            assert!(*curve.last().unwrap() < 1.1);
        }
        // Larger tiers cost more at small sizes.
        let small_m2 = points.iter().find(|p| p.m == 2 && p.update_size == 100).unwrap();
        let small_m4 = points.iter().find(|p| p.m == 4 && p.update_size == 100).unwrap();
        assert!(small_m4.normalized > small_m2.normalized);
    }

    #[test]
    fn paper_calibration_points() {
        // "for m = 4 and n = 13, the normalized cost approaches 1 for
        // update sizes around 100k bytes, but it approaches 2 at update
        // sizes of only around 4k bytes."
        let points = run(&[4], &[4_000, 100_000]);
        let at_4k = points.iter().find(|p| p.update_size == 4_000).unwrap();
        let at_100k = points.iter().find(|p| p.update_size == 100_000).unwrap();
        assert!(
            (1.5..3.0).contains(&at_4k.normalized),
            "4k normalized {}",
            at_4k.normalized
        );
        assert!(
            (1.0..1.25).contains(&at_100k.normalized),
            "100k normalized {}",
            at_100k.normalized
        );
    }

    #[test]
    fn measurement_tracks_model() {
        for p in run(&[3], &[1_000, 50_000]) {
            let ratio = p.normalized / p.model_normalized;
            assert!((0.6..1.4).contains(&ratio), "{p:?}");
        }
    }
}
