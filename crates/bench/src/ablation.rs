//! Ablations of two design choices the paper calls out.
//!
//! * **Salted replicated roots** (§4.3.3): "it hashes each GUID with a
//!   small number of different salt values ... thus gaining redundancy".
//!   We knock out the primary root and measure locate success as a
//!   function of the salt count.
//! * **Invalidation at the leaves** (§4.4.3): "dissemination trees
//!   transform updates into invalidations ... at the leaves of the network
//!   where bandwidth is limited". We measure the bytes a leaf receives
//!   when pushed full updates vs invalidations (paying a pull only on
//!   read).

use std::sync::Arc;

use oceanstore_naming::guid::Guid;
use oceanstore_plaxton::build::{build_network, find_root};
use oceanstore_plaxton::protocol::PlaxtonConfig;
use oceanstore_replica::harness::{build_deployment, DeploymentOpts};
use oceanstore_sim::{NodeId, SimDuration, Simulator, Topology};
use oceanstore_update::update::Action;
use oceanstore_update::Update;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Result of the salted-roots ablation.
#[derive(Debug, Clone)]
pub struct SaltRow {
    /// Salt count (1 = the single-root strawman).
    pub salts: u32,
    /// Locate attempts after the primary root died.
    pub queries: usize,
    /// Attempts that still found the replica.
    pub successes: usize,
}

/// Kills each object's primary (salt-0) root, then measures locate
/// success for varying salt counts.
pub fn salted_roots(salt_counts: &[u32], nodes: usize, queries: usize, seed: u64) -> Vec<SaltRow> {
    let mut out = Vec::new();
    for &salts in salt_counts {
        let cfg = PlaxtonConfig { salts, ..PlaxtonConfig::default() };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let topo = Arc::new(Topology::random_geometric(
            nodes,
            0.25,
            SimDuration::from_millis(20),
            &mut rng,
        ));
        let (net, _) = build_network(&topo, &cfg, seed);
        let object = Guid::from_label("salt-ablation-object");
        let primary_root = find_root(&net, &object.salted(0), NodeId(0));
        let mut rng2 = ChaCha8Rng::seed_from_u64(seed);
        let topo2 =
            Topology::random_geometric(nodes, 0.25, SimDuration::from_millis(20), &mut rng2);
        let mut sim = Simulator::new(topo2, net, seed);
        sim.start();
        let holder = if primary_root == NodeId(3) { NodeId(4) } else { NodeId(3) };
        sim.with_node_ctx(holder, |n, ctx| n.publish(ctx, object));
        sim.run_for(SimDuration::from_secs(2));
        // Kill the primary root and let failure detection settle.
        sim.set_down(primary_root, true);
        sim.run_for(SimDuration::from_secs(16));
        let mut successes = 0;
        let mut issued = 0;
        let mut qid = 0u64;
        for _ in 0..queries {
            let origin = NodeId(rng.gen_range(0..nodes));
            if origin == primary_root || origin == holder {
                continue;
            }
            issued += 1;
            qid += 1;
            sim.with_node_ctx(origin, |n, ctx| n.locate(ctx, qid, object));
            sim.run_for(SimDuration::from_secs(4));
            if sim
                .node(origin)
                .outcome(qid)
                .is_some_and(|o| o.holder == Some(holder))
            {
                successes += 1;
            }
        }
        out.push(SaltRow { salts, queries: issued, successes });
    }
    out
}

/// Result of the invalidation ablation.
#[derive(Debug, Clone)]
pub struct InvalidationRow {
    /// Whether the leaf was fed invalidations instead of full pushes.
    pub invalidate_mode: bool,
    /// Update payload size.
    pub update_size: usize,
    /// Bytes the leaf received during the quiet (no-read) phase.
    pub leaf_bytes_no_read: u64,
}

/// Pushes one large update through the tree with the leaf in each mode
/// and meters the leaf's inbound bytes before any read forces a pull.
pub fn invalidation_bandwidth(update_size: usize, seed: u64) -> Vec<InvalidationRow> {
    let mut out = Vec::new();
    for invalidate in [false, true] {
        let mut dep = build_deployment(&DeploymentOpts {
            secondaries: 6,
            invalidate_leaves: if invalidate { vec![5] } else { vec![] },
            seed,
            ..DeploymentOpts::default()
        });
        let leaf = dep.secondaries[5];
        let object = Guid::from_label("invalidation-ablation");
        let update = Update::unconditional(vec![Action::Append {
            ciphertext: vec![0xAB; update_size],
        }]);
        let client = dep.clients[0];
        // Isolate the dissemination tree: no tentative copies, so every
        // byte the leaf sees comes from its tree feed.
        dep.sim
            .node_mut(client)
            .as_client_mut()
            .expect("client")
            .set_tentative_fanout(0);
        dep.sim.reset_stats();
        dep.sim.with_node_ctx(client, |node, ctx| {
            node.as_client_mut().expect("client").submit(ctx, object, &update)
        });
        // Let the commit + tree push land, but stop before the leaf's
        // periodic anti-entropy pull (500 ms tick) fires.
        dep.sim.run_for(SimDuration::from_millis(420));
        out.push(InvalidationRow {
            invalidate_mode: invalidate,
            update_size,
            leaf_bytes_no_read: dep.sim.stats().received_by(leaf),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_salts_survive_root_death() {
        let rows = salted_roots(&[1, 3], 40, 12, 9);
        let single = rows.iter().find(|r| r.salts == 1).unwrap();
        let triple = rows.iter().find(|r| r.salts == 3).unwrap();
        assert!(
            triple.successes > single.successes,
            "salted roots must add resilience: {rows:?}"
        );
        assert!(
            triple.successes as f64 >= 0.8 * triple.queries as f64,
            "three salts should almost always survive one dead root: {rows:?}"
        );
    }

    #[test]
    fn invalidation_saves_leaf_bandwidth() {
        let rows = invalidation_bandwidth(20_000, 5);
        let push = rows.iter().find(|r| !r.invalidate_mode).unwrap();
        let inval = rows.iter().find(|r| r.invalidate_mode).unwrap();
        assert!(
            inval.leaf_bytes_no_read * 10 < push.leaf_bytes_no_read,
            "invalidations must be far cheaper than a 20kB push: {rows:?}"
        );
    }
}
