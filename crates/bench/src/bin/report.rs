//! Regenerates every quantitative artifact of the paper as printed tables.
//!
//! ```text
//! cargo run --release -p oceanstore-bench --bin report -- all
//! cargo run --release -p oceanstore-bench --bin report -- fig6
//! ```
//!
//! Subcommands: `fig6`, `table1`, `s1_bloom`, `s2_plaxton`,
//! `s3_fragments`, `s4_latency`, `s5_prefetch`, `all` (default), and
//! `quick` (smaller sweeps, for smoke runs).

use oceanstore_bench::{
    ablation, fig6, s1_bloom, s2_plaxton, s3_fragments, s4_latency, s5_prefetch, table1,
};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let quick = arg == "quick";
    match arg.as_str() {
        "fig6" => run_fig6(false),
        "table1" => run_table1(),
        "s1_bloom" => run_s1(false),
        "s2_plaxton" => run_s2(false),
        "s3_fragments" => run_s3(false),
        "s4_latency" => run_s4(),
        "s5_prefetch" => run_s5(),
        "ablations" => run_ablations(false),
        "all" | "quick" => {
            run_table1();
            run_fig6(quick);
            run_s4();
            run_s3(quick);
            run_s5();
            run_s1(quick);
            run_s2(quick);
            run_ablations(quick);
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(2);
        }
    }
}

fn run_ablations(quick: bool) {
    header("Ablation A — salted replicated roots vs a dead primary root (§4.3.3)");
    let queries = if quick { 8 } else { 16 };
    let rows = ablation::salted_roots(&[1, 2, 3, 4], 40, queries, 9);
    println!("{:>6} | {:>8} | {:>10}", "salts", "queries", "success");
    for r in rows {
        println!("{:>6} | {:>8} | {:>6}/{:<3}", r.salts, r.queries, r.successes, r.queries);
    }
    header("Ablation B — leaf invalidation vs full push (§4.4.3), 20 kB update");
    let rows = ablation::invalidation_bandwidth(20_000, 5);
    println!("{:>12} | {:>22}", "leaf mode", "leaf bytes (no read)");
    for r in rows {
        println!(
            "{:>12} | {:>22}",
            if r.invalidate_mode { "invalidate" } else { "push" },
            r.leaf_bytes_no_read
        );
    }
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn run_fig6(quick: bool) {
    header("Figure 6 — normalized update cost vs update size (measured wire bytes)");
    let sizes = if quick {
        vec![100, 1_000, 4_000, 10_000, 100_000, 1_000_000]
    } else {
        fig6::default_sizes()
    };
    let points = fig6::run(&[2, 3, 4], &sizes);
    println!(
        "{:>10} | {:>12} {:>12} {:>12} | {:>10}",
        "size (B)", "m=2,n=7", "m=3,n=10", "m=4,n=13", "model n=13"
    );
    for &u in &sizes {
        let get = |m: usize| {
            points
                .iter()
                .find(|p| p.m == m && p.update_size == u)
                .map(|p| p.normalized)
                .unwrap_or(f64::NAN)
        };
        let model = points
            .iter()
            .find(|p| p.m == 4 && p.update_size == u)
            .map(|p| p.model_normalized)
            .unwrap_or(f64::NAN);
        println!(
            "{:>10} | {:>12.3} {:>12.3} {:>12.3} | {:>10.3}",
            u,
            get(2),
            get(3),
            get(4),
            model
        );
    }
    let at = |m: usize, u: usize| {
        points
            .iter()
            .find(|p| p.m == m && p.update_size == u)
            .map(|p| p.normalized)
            .unwrap_or(f64::NAN)
    };
    println!(
        "\npaper calibration (m=4, n=13): normalized ≈ 2 at 4 kB → measured {:.2}; ≈ 1 at 100 kB → measured {:.2}",
        at(4, 4_000),
        at(4, 100_000)
    );
}

fn run_table1() {
    header("Table 1 — §4.5 availability example (10^6 machines, 10% down)");
    println!("{:<42} | {:>8} | {:>12} | {:>6}", "scheme", "storage", "availability", "nines");
    for r in table1::paper_rows() {
        println!(
            "{:<42} | {:>7.1}x | {:>12.9} | {:>6.2}",
            r.scheme, r.storage_factor, r.availability, r.nines
        );
    }
    println!(
        "\nimprovement 16 → 32 fragments: {:.0}x (paper quotes ~4000x from an approximation)",
        table1::improvement_16_to_32()
    );
    println!("\nextended sweep (S6), rate-1/2:");
    for r in table1::sweep_rows() {
        println!("{:<42} | {:>7.1}x | {:>12.9} | {:>6.2}", r.scheme, r.storage_factor, r.availability, r.nines);
    }
}

fn run_s1(quick: bool) {
    header("S1 — probabilistic location: stretch vs optimal (attenuated Bloom filters)");
    let (nodes, objects, queries) = if quick { (48, 24, 30) } else { (96, 48, 80) };
    let rows = s1_bloom::run(&[2, 3, 4, 5], nodes, objects, queries, 7);
    println!(
        "{:>6} | {:>8} | {:>10} | {:>8} | {:>10}",
        "depth", "queries", "hit rate", "stretch", "(in range)"
    );
    for r in rows {
        println!(
            "{:>6} | {:>8} | {:>9.1}% | {:>8.3} | {:>10}",
            r.depth,
            r.in_range_queries,
            r.hit_rate * 100.0,
            r.mean_stretch,
            r.found
        );
    }
}

fn run_s2(quick: bool) {
    header("S2 — Plaxton locality: locate latency ∝ distance to replica");
    let (nodes, objects, q) = if quick { (64, 6, 6) } else { (128, 10, 10) };
    let rows = s2_plaxton::run(nodes, objects, q, 3);
    println!(
        "{:>14} | {:>8} | {:>12} | {:>8} | {:>10}",
        "dist ≤ (ms)", "queries", "locate (ms)", "stretch", "via root"
    );
    for b in rows {
        println!(
            "{:>14} | {:>8} | {:>12.1} | {:>8.2} | {:>9.1}%",
            b.dist_ms_upper,
            b.queries,
            b.mean_locate_ms,
            b.mean_stretch,
            b.root_fraction * 100.0
        );
    }
}

fn run_s3(quick: bool) {
    header("S3 — archival reconstruction: extra fragment requests vs drops");
    let trials = if quick { 6 } else { 15 };
    let rows = s3_fragments::run(&[0.0, 0.1, 0.2, 0.3], &[0, 2, 4, 8], trials, 11);
    println!(
        "{:>6} | {:>6} | {:>12} | {:>12}",
        "drop", "extra", "success", "latency (ms)"
    );
    for r in rows {
        println!(
            "{:>5.0}% | {:>6} | {:>7}/{:<4} | {:>12.1}",
            r.drop_prob * 100.0,
            r.extra,
            r.successes,
            r.trials,
            r.mean_latency_ms
        );
    }
}

fn run_s4() {
    header("S4 — update commit latency at 100 ms per WAN message (§4.4.5: < 1 s)");
    let rows = s4_latency::run(&[1, 2, 3, 4], 3, 21);
    println!(
        "{:>4} {:>4} | {:>12} | {:>18}",
        "m", "n", "commit (ms)", "disseminated (ms)"
    );
    for r in rows {
        println!(
            "{:>4} {:>4} | {:>12.0} | {:>18.0}",
            r.m, r.n, r.commit_ms, r.disseminated_ms
        );
    }
}

fn run_s5() {
    header("S5 — introspective prefetching: hit rate vs noise (order-3, 2 predictions)");
    let rows = s5_prefetch::run(&[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], 3, 2, 13);
    println!("{:>6} | {:>10} | {:>16}", "noise", "hit rate", "random baseline");
    for r in rows {
        println!(
            "{:>5.0}% | {:>9.1}% | {:>15.1}%",
            r.noise * 100.0,
            r.hit_rate * 100.0,
            r.random_baseline * 100.0
        );
    }
}
