//! Measures the fast-path kernels against their frozen "before"
//! implementations and emits a machine-readable `BENCH_PR10.json`.
//!
//! ```text
//! cargo run --release -p oceanstore-bench --bin perf_report
//! cargo run --release -p oceanstore-bench --bin perf_report -- --small --out /tmp/b.json
//! cargo run --release -p oceanstore-bench --bin perf_report -- --diff-frozen BENCH_PR7.json BENCH_PR8.json
//! ```
//!
//! Flags:
//! - `--small`: reduced workload sizes (CI smoke preset).
//! - `--check`: exit nonzero unless the PR's speedup bars hold
//!   (gf256 ≥ 4x, RS encode ≥ 3x, engine events/sec ≥ 1.5x,
//!   Schnorr batch-32 verify ≥ 3x, tier commit throughput ≥ 1.1x,
//!   shard-sweep scale-out ≥ 2x over the single-ring tier, and — on
//!   hosts with ≥ 8 cores — the 8-thread PDES sweep ≥ 2x over 1 thread).
//! - `--min-gf256-mbps <N>`: absolute throughput floor for the fast
//!   gf256 kernel (generous; catches catastrophic regressions in CI
//!   without being sensitive to runner speed).
//! - `--out <PATH>`: where to write the JSON (default `BENCH_PR10.json`).
//! - `--diff-frozen <OLD> <NEW>`: run no benches; statically compare two
//!   frozen reports and exit nonzero if any speedup present in both files
//!   regressed by more than 20%. CI runs this over the committed
//!   `BENCH_PR<N>.json` files so a re-frozen report can't silently trade
//!   away an earlier PR's win.
//!
//! The "before" column is measured in the same process by the same harness:
//! `mul_acc_slice_ref`/`encode_ref`/`reconstruct_ref`/`verify_ref` are the
//! pre-PR kernels kept in-tree, `oceanstore_bench::baseline` is a frozen
//! copy of the pre-PR engine, and `oceanstore_bench::baseline_pbft` is a
//! frozen copy of the pre-PR consensus stack. Later PRs append
//! `BENCH_PR<N>.json` files with the same schema.

use std::time::Instant;

use oceanstore_bench::{baseline, baseline_pbft};
use oceanstore_crypto::schnorr::{self, KeyPair, PublicKey, Signature};
use oceanstore_erasure::gf256;
use oceanstore_erasure::rs::ReedSolomon;
use oceanstore_sim::engine::{Context, Message, Protocol, Simulator};
use oceanstore_sim::time::{SimDuration, SimTime};
use oceanstore_sim::topology::{NodeId, Topology};
use oceanstore_workload::{
    run_workload, run_workload_with_coverage, DropPhase, WorkloadSpec,
};

struct Args {
    small: bool,
    check: bool,
    min_gf256_mbps: Option<f64>,
    out: String,
    diff_frozen: Option<(String, String)>,
}

fn parse_args() -> Args {
    let mut args = Args {
        small: false,
        check: false,
        min_gf256_mbps: None,
        out: "BENCH_PR10.json".to_string(),
        diff_frozen: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => args.small = true,
            "--check" => args.check = true,
            "--min-gf256-mbps" => {
                let v = it.next().expect("--min-gf256-mbps needs a value");
                args.min_gf256_mbps = Some(v.parse().expect("invalid floor"));
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--diff-frozen" => {
                let old = it.next().expect("--diff-frozen needs OLD and NEW paths");
                let new = it.next().expect("--diff-frozen needs OLD and NEW paths");
                args.diff_frozen = Some((old, new));
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One measured row of the report.
struct Bench {
    name: &'static str,
    unit: &'static str,
    before: Option<f64>,
    after: f64,
}

impl Bench {
    fn speedup(&self) -> Option<f64> {
        self.before.map(|b| if b > 0.0 { self.after / b } else { f64::NAN })
    }
}

/// Calls `f` repeatedly until ~`target_ms` of wall time is spent and
/// returns the mean seconds per call. One untimed warm-up call first.
/// Times `a` (before) and `b` (after) in alternating batches, returning
/// each side's best per-call seconds. Interleaving keeps slow machine-speed
/// drift (frequency scaling, noisy-neighbour vCPUs, burst credits) from
/// landing entirely on whichever side happened to run last; taking the
/// per-side minimum over several batches rejects transient stalls. Without
/// this, back-to-back runs of the same binary produced before/after ratios
/// that moved by 50% purely from host-speed drift between the two
/// measurement windows.
fn ab_time_per_call(target_ms: u64, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    const ROUNDS: usize = 4;
    fn calibrate(batch_ms: u64, f: &mut dyn FnMut()) -> u64 {
        f(); // warm-up
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let dt = start.elapsed();
            if dt.as_millis() as u64 >= batch_ms / 2 {
                let per = (dt.as_secs_f64() / iters as f64).max(1e-9);
                return ((batch_ms as f64 / 1e3 / per) as u64).max(1);
            }
            iters *= 2;
        }
    }
    let batch_ms = (target_ms / ROUNDS as u64).max(20);
    let ia = calibrate(batch_ms, &mut a);
    let ib = calibrate(batch_ms, &mut b);
    let mut best = (f64::MAX, f64::MAX);
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for _ in 0..ia {
            a();
        }
        best.0 = best.0.min(start.elapsed().as_secs_f64() / ia as f64);
        let start = Instant::now();
        for _ in 0..ib {
            b();
        }
        best.1 = best.1.min(start.elapsed().as_secs_f64() / ib as f64);
    }
    best
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / 1e6
}

// ---------------------------------------------------------------- gf256 --

fn bench_gf256(small: bool) -> Vec<Bench> {
    let len = if small { 256 * 1024 } else { 1024 * 1024 };
    let target = if small { 120 } else { 400 };
    let src: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
    let mut dst_ref = vec![0u8; len];
    let mut dst_fast = vec![0u8; len];
    let (t_before, t_after) = ab_time_per_call(
        target * 2,
        || gf256::mul_acc_slice_ref(&mut dst_ref, &src, 0x57),
        || gf256::mul_acc_slice(&mut dst_fast, &src, 0x57),
    );
    let (before, after) = (mb(len) / t_before, mb(len) / t_after);
    vec![Bench { name: "gf256/mul_acc_slice/1MiB", unit: "MB/s", before: Some(before), after }]
}

// ------------------------------------------------------------------- rs --

fn bench_rs(small: bool) -> Vec<Bench> {
    let (k, n) = (32, 64);
    let shard = if small { 4 * 1024 } else { 16 * 1024 };
    let target = if small { 150 } else { 500 };
    let rs = ReedSolomon::new(k, n).expect("valid code");
    let data: Vec<Vec<u8>> =
        (0..k).map(|i| (0..shard).map(|j| ((i * 131 + j * 7) % 256) as u8).collect()).collect();
    let payload = mb(k * shard);

    let (t_enc_before, t_enc_after) = ab_time_per_call(
        target * 2,
        || {
            rs.encode_ref(&data).expect("encodes");
        },
        || {
            rs.encode(&data).expect("encodes");
        },
    );
    let (enc_before, enc_after) = (payload / t_enc_before, payload / t_enc_after);

    // Worst-case loss pattern: all k data shards gone, recover from parity.
    let coded = rs.encode(&data).expect("encodes");
    let holed: Vec<Option<Vec<u8>>> = coded
        .iter()
        .enumerate()
        .map(|(i, s)| if i < k { None } else { Some(s.clone()) })
        .collect();
    let (t_rec_before, t_rec_after) = ab_time_per_call(
        target * 2,
        || {
            let mut shards = holed.clone();
            rs.reconstruct_ref(&mut shards).expect("reconstructs");
        },
        || {
            let mut shards = holed.clone();
            rs.reconstruct(&mut shards).expect("reconstructs");
        },
    );
    let (rec_before, rec_after) = (payload / t_rec_before, payload / t_rec_after);

    vec![
        Bench {
            name: "rs/encode/k32_n64",
            unit: "MB/s",
            before: Some(enc_before),
            after: enc_after,
        },
        Bench {
            name: "rs/reconstruct/k32_n64_all_data_lost",
            unit: "MB/s",
            before: Some(rec_before),
            after: rec_after,
        },
    ]
}

// -------------------------------------------------------------- schnorr --

/// Schnorr hot paths against the frozen square-and-multiply reference:
/// single verify (comb tables) and a 32-signature batch (random-linear-
/// combination batch verify) versus 32 sequential reference verifies. The
/// batch mixes 7 signers, the size of an m=2 primary tier, so the shared
/// `Σ z·e` exponent aggregation per key is exercised.
fn bench_schnorr(small: bool) -> Vec<Bench> {
    const BATCH: usize = 32;
    const SIGNERS: usize = 7;
    let keys: Vec<KeyPair> = (0..SIGNERS)
        .map(|i| KeyPair::from_seed(format!("perf-report-signer-{i}").as_bytes()))
        .collect();
    let msgs: Vec<Vec<u8>> =
        (0..BATCH).map(|i| format!("perf-report update digest {i}").into_bytes()).collect();
    let signed: Vec<(PublicKey, &[u8], Signature)> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let kp = &keys[i % SIGNERS];
            (kp.public(), m.as_slice(), kp.sign(m))
        })
        .collect();
    let target = if small { 100 } else { 300 };

    let one = &signed[0];
    let (t_single_before, t_single_after) = ab_time_per_call(
        target,
        || {
            assert!(schnorr::verify_ref(one.0, one.1, &one.2));
        },
        || {
            assert!(schnorr::verify(one.0, one.1, &one.2));
        },
    );

    let (t_batch_before, t_batch_after) = ab_time_per_call(
        target * 2,
        || {
            for (y, m, s) in &signed {
                assert!(schnorr::verify_ref(*y, m, s));
            }
        },
        || {
            assert!(schnorr::batch_verify(&signed));
        },
    );

    vec![
        Bench {
            name: "schnorr/verify/single",
            unit: "verifies/s",
            before: Some(1.0 / t_single_before),
            after: 1.0 / t_single_after,
        },
        Bench {
            name: "schnorr/verify/batch32",
            unit: "verifies/s",
            before: Some(BATCH as f64 / t_batch_before),
            after: BATCH as f64 / t_batch_after,
        },
    ]
}

// ------------------------------------------------------------ consensus --

/// Macro end-to-end bar: committed updates per second of wall clock
/// through an m=2 (7-replica) PBFT tier under fragment-sized payloads.
/// The "before" side is the frozen `baseline_pbft` stack (reference
/// crypto, per-message sequential verification, double-sign wart); the
/// "after" side is the production stack (comb-table signing, verify
/// cache and batch drain). Both run on the production engine and must
/// process an identical message schedule, so the ratio isolates
/// protocol-layer crypto cost.
fn bench_consensus(small: bool) -> Vec<Bench> {
    let m = 2;
    let wan = SimDuration::from_millis(10);
    let payload = 4096;
    let count = if small { 3 } else { 8 };

    let run_new = || {
        let mut ts = oceanstore_consensus::build_tier(m, wan, 5);
        let run = oceanstore_consensus::run_updates(&mut ts, payload, count);
        (run.latencies.len(), run.total_bytes, ts.sim.events_processed())
    };
    let run_old = || {
        let mut ts = baseline_pbft::build_tier(m, wan, 5);
        let run = baseline_pbft::run_updates(&mut ts, payload, count);
        (run.latencies.len(), run.total_bytes, ts.sim.events_processed())
    };
    let new = run_new();
    let old = run_old();
    assert_eq!(
        new, old,
        "frozen baseline tier diverged from the production tier's schedule"
    );

    let target = if small { 200 } else { 600 };
    let (t_old, t_new) = ab_time_per_call(
        target * 2,
        || {
            run_old();
        },
        || {
            run_new();
        },
    );
    vec![Bench {
        name: "consensus/committed_updates_per_sec/m2_tier7_4k",
        unit: "updates/s",
        before: Some(count as f64 / t_old),
        after: count as f64 / t_new,
    }]
}

// --------------------------------------------------------- long horizon --

/// Long-horizon macro row: 100k agreement slots through an m=1 tier with
/// stable checkpoints on (interval 64, window 128 — the shipped
/// defaults). Two numbers come out: committed-updates per second of wall
/// clock, and the peak retained consensus log any replica ever showed
/// between batches. The second is the point of the checkpoint subsystem —
/// before it, a run this long retained all 100k slots on every replica;
/// now the peak must sit near `window + interval` regardless of horizon.
/// There is no frozen "before" side: the baseline stack cannot run this
/// workload in bounded memory, which is the row's reason to exist.
fn bench_long_horizon(small: bool) -> Vec<Bench> {
    let slots: usize = if small { 2_000 } else { 100_000 };
    let ckpt = oceanstore_consensus::CheckpointConfig::default();
    assert!(ckpt.enabled, "long-horizon bench needs checkpoints on");
    let mut ts = oceanstore_consensus::harness::build_tier_custom(
        1,
        SimDuration::from_millis(10),
        5,
        &[],
        ckpt,
    );
    let mut peak = 0u64;
    let start = Instant::now();
    let mut left = slots;
    while left > 0 {
        let chunk = left.min(1_000);
        oceanstore_consensus::harness::run_updates_batched(&mut ts, 256, chunk, 8);
        for i in 0..4 {
            let h = ts.sim.node(NodeId(i)).as_replica().expect("replica").health();
            peak = peak.max(h.log_len);
        }
        left -= chunk;
    }
    let wall = start.elapsed().as_secs_f64();
    let label = if small {
        ("consensus/long_horizon_committed_per_sec/m1_2k_slots", "consensus/peak_retained_slots/m1_2k_slots")
    } else {
        ("consensus/long_horizon_committed_per_sec/m1_100k_slots", "consensus/peak_retained_slots/m1_100k_slots")
    };
    vec![
        Bench { name: label.0, unit: "updates/s", before: None, after: slots as f64 / wall },
        Bench { name: label.1, unit: "slots", before: None, after: peak as f64 },
    ]
}

// ---------------------------------------------------------------- store --

/// Blob-backend and replica-store rows for the content-addressed storage
/// layer. One wall-clock bar — put+get+delete throughput of the on-disk
/// directory backend with the in-memory default as its "after" side, so
/// the speedup column reads as the dir backend's overhead factor — and
/// two deterministic rows that diff exactly across frozen reports: the
/// dedup ratio of a 16-way duplicated block population, and the peak
/// retained record-log length of a long certified commit stream (the
/// bounded-log row; its "before" side is the same stream with truncation
/// disabled, which is what every replica paid before the bound existed).
fn bench_store(small: bool) -> Vec<Bench> {
    use oceanstore_store::{BlobStore, DedupStore, DirStore, MemoryStore};

    let blob_len = 64 * 1024;
    let blobs = if small { 32 } else { 128 };
    let payloads: Vec<Vec<u8>> = (0..blobs)
        .map(|i| (0..blob_len).map(|j| ((i * 131 + j * 7) % 256) as u8).collect())
        .collect();
    let roundtrip = |store: &mut dyn BlobStore| {
        let cids: Vec<_> = payloads.iter().map(|p| store.put(p).expect("put")).collect();
        for cid in &cids {
            assert_eq!(store.get(cid).expect("get").expect("present").len(), blob_len);
            store.delete(cid).expect("delete");
        }
    };
    let target = if small { 150 } else { 400 };
    let (t_dir, t_mem) = ab_time_per_call(
        target * 2,
        || {
            let mut s = DirStore::new_ephemeral();
            roundtrip(&mut s);
        },
        || {
            let mut s = MemoryStore::new();
            roundtrip(&mut s);
        },
    );
    let payload_mb = mb(blobs * blob_len);
    let mut out = vec![Bench {
        name: "store/put_get_delete_64kib/dir_vs_memory",
        unit: "MB/s",
        before: Some(payload_mb / t_dir),
        after: payload_mb / t_mem,
    }];

    // Dedup: 16 distinct blocks, each stored 16 times (the dissemination
    // pattern of one block fanned out across a tier). Exactly one copy of
    // each may reach the backend, so the logical/stored ratio is 16.
    let mut dedup = DedupStore::new(Box::new(MemoryStore::new()));
    for _ in 0..16 {
        for block in 0..16u8 {
            dedup.put(&vec![block; 4096]).expect("put");
        }
    }
    let ratio = dedup.dedup_stats().ratio();
    assert!((ratio - 16.0).abs() < 1e-9, "16-way duplicate ratio came out {ratio}");
    out.push(Bench {
        name: "store/dedup_logical_over_stored/16_way_duplicate",
        unit: "ratio",
        before: None,
        after: ratio,
    });

    // Bounded record log: stream `commits` certified updates through one
    // object and record the peak retained log length. The "before" side
    // replays the identical stream with truncation disabled — every
    // replica retained the full history before the certified-frontier
    // bound existed. Both sides are seeded and deterministic, so this row
    // diffs exactly across frozen reports; the speedup column is the
    // retained-memory fraction (lower is better, ~retention/commits).
    let commits: u64 = if small { 1_024 } else { 4_096 };
    let peak_retained = |retention: Option<u64>| -> f64 {
        use oceanstore_replica::messages::TentativeId;
        let object = oceanstore_naming::guid::Guid::from_label("bench-record-log");
        let mut store = oceanstore_replica::ObjectStore::new();
        if let Some(r) = retention {
            store.set_record_retention(r);
        }
        let kp = oceanstore_crypto::schnorr::KeyPair::from_seed(b"bench-record-log");
        for i in 0..commits {
            let update = oceanstore_update::Update::unconditional(vec![
                oceanstore_update::update::Action::Append { ciphertext: vec![(i % 251) as u8; 32] },
            ]);
            let encoded = std::sync::Arc::new(oceanstore_update::encode_update(&update));
            let rec = store.serialize_update(
                object,
                &update,
                encoded,
                i,
                TentativeId { client: NodeId(0), counter: i },
            );
            let mut cert = oceanstore_crypto::threshold::SerializationCert::new();
            cert.add(kp.public(), kp.sign(&rec.signing_bytes()));
            store.set_cert(&object, i, cert);
        }
        store.health().peak_retained_records as f64
    };
    let (label, unbounded, bounded) = if small {
        ("store/peak_retained_records/1k_certified_commits", peak_retained(Some(u64::MAX)), peak_retained(None))
    } else {
        ("store/peak_retained_records/4k_certified_commits", peak_retained(Some(u64::MAX)), peak_retained(None))
    };
    assert_eq!(unbounded, commits as f64, "truncation-disabled run must retain everything");
    out.push(Bench { name: label, unit: "records", before: Some(unbounded), after: bounded });
    out
}

// --------------------------------------------------------------- engine --

/// Gossip payload, sized like an erasure-coded fragment (a 64 KiB object
/// at rate 1/2 over 32 fragments): dissemination-tree multicast of
/// fragments is the broadcast pattern the engine's shared-payload
/// delivery exists for, and at this size the baseline's per-recipient
/// deep clones cost real memory traffic.
#[derive(Debug, Clone)]
struct Blob(Vec<u8>);

impl Message for Blob {
    fn wire_size(&self) -> usize {
        self.0.len()
    }
}

const GOSSIP_PERIOD_MS: u64 = 5;
const FRAGMENT_BYTES: usize = 4096;
const GRID_PERIODS_MS: [u64; 4] = [5, 11, 17, 29];
/// Grid side length for the timer workload: 32x32 = 1024 nodes, the
/// scale regime the wheel is built for (the paper's deployments are
/// thousands of servers, not hundreds).
const GRID_SIDE: usize = 32;
const GRID_N: usize = GRID_SIDE * GRID_SIDE;
/// Long-dated timeout timers armed per node in the grid workload; with
/// 1024 nodes this parks 131072 entries in the timer queue for the whole
/// run. Each is the kind of state a real deployment holds per stored
/// object — lease expirations, archival repair scans, retransmit
/// timeouts — and a server stores far more than 128 objects.
const PARKED_PER_NODE: u64 = 128;

/// Full-mesh gossip on the production engine: every node periodically
/// broadcasts a fragment-sized blob to all peers until its round budget
/// runs out. Receivers read only the header bytes, as a real protocol
/// would before handing the fragment to storage.
struct Gossip {
    id: usize,
    n: usize,
    rounds_left: u32,
    bytes_seen: u64,
}

impl Gossip {
    fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        let me = self.id;
        (0..self.n).filter(move |&i| i != me).map(NodeId)
    }
}

impl Protocol for Gossip {
    type Msg = Blob;

    fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
        ctx.set_timer(SimDuration::from_millis(GOSSIP_PERIOD_MS), 0);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, Blob>, _from: NodeId, msg: Blob) {
        self.bytes_seen += msg.0.len() as u64 + msg.0[0] as u64;
    }

    fn on_message_ref(&mut self, _ctx: &mut Context<'_, Blob>, _from: NodeId, msg: &Blob) {
        // Shared-payload delivery: read without cloning.
        self.bytes_seen += msg.0.len() as u64 + msg.0[0] as u64;
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Blob>, _tag: u64) {
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        ctx.broadcast(self.peers(), Blob(vec![0xAB; FRAGMENT_BYTES]));
        ctx.set_timer(SimDuration::from_millis(GOSSIP_PERIOD_MS), 0);
    }
}

/// The same gossip protocol, written against the baseline engine. Logic
/// must stay line-for-line equivalent to [`Gossip`].
struct BaselineGossip {
    id: usize,
    n: usize,
    rounds_left: u32,
    bytes_seen: u64,
}

impl baseline::Protocol for BaselineGossip {
    type Msg = Blob;

    fn on_start(&mut self, ctx: &mut baseline::Context<'_, Blob>) {
        ctx.set_timer(SimDuration::from_millis(GOSSIP_PERIOD_MS), 0);
    }

    fn on_message(&mut self, _ctx: &mut baseline::Context<'_, Blob>, _from: NodeId, msg: Blob) {
        self.bytes_seen += msg.0.len() as u64 + msg.0[0] as u64;
    }

    fn on_timer(&mut self, ctx: &mut baseline::Context<'_, Blob>, _tag: u64) {
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        let me = self.id;
        ctx.broadcast((0..self.n).filter(move |&i| i != me).map(NodeId), Blob(vec![0xAB; FRAGMENT_BYTES]));
        ctx.set_timer(SimDuration::from_millis(GOSSIP_PERIOD_MS), 0);
    }
}

/// Timer-heavy grid workload: four staggered periodic timers per node,
/// sending a 16-byte message to a round-robin neighbour on every fourth
/// fire (heartbeat timers mostly fire without acting) — plus
/// [`PARKED_PER_NODE`] long-dated timeout timers per node that never fire
/// inside the horizon. The parked population models what a real deployment
/// carries (per-request retransmit timeouts, lease expirations, archival
/// repair scans): it is dead weight that every baseline heap sift wades
/// through, while the wheel parks it in a high level and never touches it.
struct GridTicker {
    id: usize,
    fires: u64,
    horizon: SimTime,
}

impl GridTicker {
    fn arm(&self, ctx_now: SimTime, tag: u64) -> Option<SimDuration> {
        let d = SimDuration::from_millis(GRID_PERIODS_MS[tag as usize]);
        (ctx_now + d <= self.horizon).then_some(d)
    }
}

impl Protocol for GridTicker {
    type Msg = Blob;

    fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
        for tag in 0..4 {
            ctx.set_timer(
                SimDuration::from_micros(GRID_PERIODS_MS[tag as usize] * 1000 + self.id as u64),
                tag,
            );
        }
        for i in 0..PARKED_PER_NODE {
            ctx.set_timer(SimDuration::from_secs(30 + i) + SimDuration::from_micros(self.id as u64), 100 + i);
        }
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, Blob>, _from: NodeId, _msg: Blob) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, Blob>, tag: u64) {
        if tag >= 100 {
            return; // a parked timeout expired: horizon outgrew the park
        }
        self.fires += 1;
        if self.fires.is_multiple_of(4) {
            let to = NodeId((self.id + 1 + (self.fires as usize % 3)) % GRID_N);
            ctx.send(to, Blob(vec![0x5A; 16]));
        }
        if let Some(d) = self.arm(ctx.now(), tag) {
            ctx.set_timer(d, tag);
        }
    }
}

struct BaselineGridTicker {
    id: usize,
    fires: u64,
    horizon: SimTime,
}

impl baseline::Protocol for BaselineGridTicker {
    type Msg = Blob;

    fn on_start(&mut self, ctx: &mut baseline::Context<'_, Blob>) {
        for tag in 0..4 {
            ctx.set_timer(
                SimDuration::from_micros(GRID_PERIODS_MS[tag as usize] * 1000 + self.id as u64),
                tag,
            );
        }
        for i in 0..PARKED_PER_NODE {
            ctx.set_timer(SimDuration::from_secs(30 + i) + SimDuration::from_micros(self.id as u64), 100 + i);
        }
    }

    fn on_message(&mut self, _ctx: &mut baseline::Context<'_, Blob>, _from: NodeId, _msg: Blob) {}

    fn on_timer(&mut self, ctx: &mut baseline::Context<'_, Blob>, tag: u64) {
        if tag >= 100 {
            return; // a parked timeout expired: horizon outgrew the park
        }
        self.fires += 1;
        if self.fires.is_multiple_of(4) {
            let to = NodeId((self.id + 1 + (self.fires as usize % 3)) % GRID_N);
            ctx.send(to, Blob(vec![0x5A; 16]));
        }
        let d = SimDuration::from_millis(GRID_PERIODS_MS[tag as usize]);
        if ctx.now() + d <= self.horizon {
            ctx.set_timer(d, tag);
        }
    }
}

fn bench_engine(small: bool) -> Vec<Bench> {
    let mut out = Vec::new();

    // Full-mesh gossip: broadcast-heavy.
    let n = 24;
    let rounds = if small { 40 } else { 200 };
    let horizon = SimTime::ZERO + SimDuration::from_millis((rounds as u64 + 2) * GOSSIP_PERIOD_MS);

    let run_new = || {
        let nodes: Vec<Gossip> =
            (0..n).map(|id| Gossip { id, n, rounds_left: rounds, bytes_seen: 0 }).collect();
        let mut sim =
            Simulator::new(Topology::full_mesh(n, SimDuration::from_millis(2)), nodes, 42);
        sim.start();
        sim.run_until(horizon);
        (sim.events_processed(), sim.stats().total_messages())
    };
    let run_old = || {
        let nodes: Vec<BaselineGossip> =
            (0..n).map(|id| BaselineGossip { id, n, rounds_left: rounds, bytes_seen: 0 }).collect();
        let mut sim = baseline::Simulator::new(
            Topology::full_mesh(n, SimDuration::from_millis(2)),
            nodes,
            42,
        );
        sim.start();
        sim.run_until(horizon);
        (sim.events_processed(), sim.stats().total_messages())
    };
    // The two engines must process the same schedule; anything else means
    // the baseline copy has drifted and its numbers are meaningless.
    let (ev_new, msgs_new) = run_new();
    let (ev_old, msgs_old) = run_old();
    assert_eq!(
        (ev_new, msgs_new),
        (ev_old, msgs_old),
        "baseline engine diverged from production engine on the gossip workload"
    );

    let target = if small { 150 } else { 500 };
    let (t_old, t_new) = ab_time_per_call(
        target * 2,
        || {
            run_old();
        },
        || {
            run_new();
        },
    );
    out.push(Bench {
        name: "engine/events_per_sec/full_mesh_gossip_n24",
        unit: "events/s",
        before: Some(ev_old as f64 / t_old),
        after: ev_new as f64 / t_new,
    });

    // 32x32 grid: timer-heavy. The topology is built and its Dijkstra
    // caches warmed once, outside the timed region; each run clones the
    // warmed graph so the measurement is the event loop, not 1024
    // shortest-path sweeps both engines would pay identically.
    let horizon =
        SimTime::ZERO + SimDuration::from_millis(if small { 400 } else { 2000 });
    let topo = Topology::grid(GRID_SIDE, GRID_SIDE, SimDuration::from_millis(1));
    topo.warm_dist();
    let run_new = || {
        let nodes: Vec<GridTicker> =
            (0..GRID_N).map(|id| GridTicker { id, fires: 0, horizon }).collect();
        let mut sim = Simulator::new(topo.clone(), nodes, 7);
        sim.start();
        sim.run_until(horizon);
        sim.events_processed()
    };
    let run_old = || {
        let nodes: Vec<BaselineGridTicker> =
            (0..GRID_N).map(|id| BaselineGridTicker { id, fires: 0, horizon }).collect();
        let mut sim = baseline::Simulator::new(topo.clone(), nodes, 7);
        sim.start();
        sim.run_until(horizon);
        sim.events_processed()
    };
    let ev_new = run_new();
    let ev_old = run_old();
    assert_eq!(ev_new, ev_old, "baseline engine diverged on the grid workload");

    let (t_old, t_new) = ab_time_per_call(
        target * 2,
        || {
            run_old();
        },
        || {
            run_new();
        },
    );
    out.push(Bench {
        name: "engine/events_per_sec/grid_32x32_128k_pending_timers",
        unit: "events/s",
        before: Some(ev_old as f64 / t_old),
        after: ev_new as f64 / t_new,
    });
    out
}

// ---------------------------------------------------------- shard sweep --

/// Scale-out macro bars: committed updates per second of *sim time*
/// through 1, 4, and 16 consensus rings under a fixed open-loop offered
/// load chosen to saturate the single-ring tier. The workload harness
/// pre-generates a Poisson arrival schedule (Zipf-popular objects, pure
/// writes) and injects it regardless of completion, so a saturated
/// configuration visibly commits less than it was offered instead of
/// silently slowing the clients down. The rings-4 and rings-16 rows carry
/// the rings-1 number as their "before" side, making the speedup column
/// the scaling factor. Everything here is measured in simulated time from
/// a seeded run, so the numbers are bit-stable across hosts and the
/// frozen report diffs exactly.
fn bench_shard_sweep(small: bool) -> Vec<Bench> {
    let spec = |rings| WorkloadSpec {
        rings,
        m: 1,
        secondaries: if small { 8 } else { 16 },
        clients: 4,
        objects: if small { 64 } else { 128 },
        zipf_s: 0.9,
        write_fraction: 1.0,
        rate: if small { 6000.0 } else { 8000.0 },
        duration: SimDuration::from_millis(if small { 750 } else { 1500 }),
        drain: SimDuration::from_millis(500),
        latency: SimDuration::from_millis(20),
        seed: 7,
        threads: 1,
        drop_phase: None,
    };
    let horizon_secs = (spec(1).duration + spec(1).drain).as_micros() as f64 / 1e6;
    let per_sec = |rings: usize| {
        let r = run_workload(&spec(rings));
        assert_eq!(r.lost, 0, "rings={rings}: committed updates lost");
        assert_eq!(
            r.committed + r.pending,
            r.offered,
            "rings={rings}: outcomes unaccounted for"
        );
        r.committed as f64 / horizon_secs
    };
    let (r1, r4, r16) = (per_sec(1), per_sec(4), per_sec(16));
    assert!(
        r1 < r4 && r4 <= r16,
        "shard sweep did not scale: rings1={r1:.0}/s rings4={r4:.0}/s rings16={r16:.0}/s"
    );
    let rows = if small {
        ["workload/shard_sweep_committed_per_sec/rings1_small",
         "workload/shard_sweep_committed_per_sec/rings4_small",
         "workload/shard_sweep_committed_per_sec/rings16_small"]
    } else {
        ["workload/shard_sweep_committed_per_sec/rings1",
         "workload/shard_sweep_committed_per_sec/rings4",
         "workload/shard_sweep_committed_per_sec/rings16"]
    };
    vec![
        Bench { name: rows[0], unit: "updates/s", before: None, after: r1 },
        Bench { name: rows[1], unit: "updates/s", before: Some(r1), after: r4 },
        Bench { name: rows[2], unit: "updates/s", before: Some(r1), after: r16 },
    ]
}

// -------------------------------------------------------- threads sweep --

/// Wall-clock sweep of the conservative PDES scheduler over the paper-
/// scale scale-out workload (4 rings, 10k secondaries in the full preset;
/// 1k in the small CI preset). Each thread count runs the *identical*
/// deterministic schedule — the reports are asserted equal before any
/// timing is trusted — so the t2/t8 rows' speedup column is a pure
/// wall-clock ratio against the 1-thread run on the same host.
///
/// Every row name here is new in PR9, so `--diff-frozen` never compares
/// these host-dependent wall-clock ratios against numbers frozen on
/// different hardware; the `--check` bar for the t8 row is applied only
/// on hosts that actually have ≥ 8 cores.
fn bench_threads_sweep(small: bool) -> Vec<Bench> {
    let spec = WorkloadSpec {
        rings: 4,
        m: 1,
        secondaries: if small { 1_000 } else { 10_000 },
        clients: 4,
        objects: 64,
        zipf_s: 0.9,
        write_fraction: 0.8,
        rate: 30.0,
        duration: SimDuration::from_secs(if small { 2 } else { 5 }),
        drain: SimDuration::from_secs(if small { 2 } else { 4 }),
        latency: SimDuration::from_millis(20),
        seed: 7,
        threads: 1,
        drop_phase: None,
    };
    let scale = if small { "1k_nodes" } else { "10k_nodes" };
    let mut rows = Vec::new();
    let mut first: Option<(oceanstore_workload::WorkloadReport, f64)> = None;
    for threads in [1usize, 2, 8] {
        let start = Instant::now();
        let report = run_workload(&WorkloadSpec { threads, ..spec.clone() });
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(report.lost, 0, "threads={threads}: committed updates lost");
        let rate = report.committed as f64 / wall;
        let (t1_report, t1_rate) = match &first {
            None => {
                first = Some((report, rate));
                rows.push(Bench {
                    name: match scale {
                        "1k_nodes" => "sim/threads_sweep_committed_per_wall_sec_t1/1k_nodes",
                        _ => "sim/threads_sweep_committed_per_wall_sec_t1/10k_nodes",
                    },
                    unit: "updates/s",
                    before: None,
                    after: rate,
                });
                continue;
            }
            Some((r, t1)) => (r, *t1),
        };
        // The determinism contract, checked on the real benchmark
        // workload: thread count must never change what was computed.
        assert_eq!(
            &report, t1_report,
            "threads={threads} changed the workload report — determinism broken"
        );
        rows.push(Bench {
            name: match (small, threads) {
                (true, 2) => "sim/threads_sweep_committed_per_wall_sec_t2/1k_nodes",
                (true, _) => "sim/threads_sweep_committed_per_wall_sec_t8/1k_nodes",
                (false, 2) => "sim/threads_sweep_committed_per_wall_sec_t2/10k_nodes",
                (false, _) => "sim/threads_sweep_committed_per_wall_sec_t8/10k_nodes",
            },
            unit: "updates/s",
            before: Some(t1_rate),
            after: rate,
        });
    }
    rows
}

// -------------------------------------------------- chaos threads sweep --

/// The threads sweep again, but with a random-drop burst active across
/// the middle half of the run — the fault-injection regime that used to
/// force the scheduler's sequential fallback. Counter-mode drop verdicts
/// keep the epochs sharded straight through the burst, which this bench
/// proves before trusting any timing: the reports must be bit-identical
/// across thread counts, the threaded runs must schedule parallel windows
/// with zero fallbacks, and the serial barrier-commit fraction of epoch
/// wall time is recorded as its own rows.
///
/// Every row name here is new in PR10, so `--diff-frozen` never compares
/// these host-dependent wall-clock numbers against reports frozen on
/// different hardware. The serial-fraction rows carry no "before", so no
/// speedup bar ever applies to them; on 1-CPU hosts the t2/t8 rows are
/// honest overhead measurements (`machine.cpus` in the JSON says which).
fn bench_chaos_threads_sweep(small: bool) -> Vec<Bench> {
    let duration = SimDuration::from_secs(if small { 2 } else { 4 });
    let spec = WorkloadSpec {
        rings: 2,
        m: 1,
        secondaries: if small { 500 } else { 2_000 },
        clients: 4,
        objects: 64,
        zipf_s: 0.9,
        write_fraction: 0.8,
        rate: 30.0,
        duration,
        drain: SimDuration::from_secs(2),
        latency: SimDuration::from_millis(20),
        seed: 11,
        threads: 1,
        drop_phase: Some(DropPhase {
            start: SimDuration::from_micros(duration.as_micros() / 4),
            end: SimDuration::from_micros(duration.as_micros() * 3 / 4),
            prob: 0.1,
        }),
    };
    let mut rows = Vec::new();
    let mut t1: Option<(oceanstore_workload::WorkloadReport, f64)> = None;
    for threads in [1usize, 2, 8] {
        let start = Instant::now();
        let (report, cov) =
            run_workload_with_coverage(&WorkloadSpec { threads, ..spec.clone() });
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(report.lost, 0, "threads={threads}: committed updates lost");
        let rate = report.committed as f64 / wall;
        match &t1 {
            None => {
                t1 = Some((report, rate));
                rows.push(Bench {
                    name: if small {
                        "sim/chaos_threads_sweep_committed_per_wall_sec_t1/small"
                    } else {
                        "sim/chaos_threads_sweep_committed_per_wall_sec_t1/2k_nodes"
                    },
                    unit: "updates/s",
                    before: None,
                    after: rate,
                });
            }
            Some((t1_report, t1_rate)) => {
                assert_eq!(
                    &report, t1_report,
                    "threads={threads} changed the chaos-phase workload report — \
                     determinism broken"
                );
                assert!(
                    cov.windows_parallel + cov.windows_inline > 0,
                    "threads={threads}: drop burst scheduled no parallel windows"
                );
                assert_eq!(
                    cov.fallback_entries, 0,
                    "threads={threads}: drop burst forced a sequential fallback"
                );
                rows.push(Bench {
                    name: match (small, threads) {
                        (true, 2) => "sim/chaos_threads_sweep_committed_per_wall_sec_t2/small",
                        (true, _) => "sim/chaos_threads_sweep_committed_per_wall_sec_t8/small",
                        (false, 2) => {
                            "sim/chaos_threads_sweep_committed_per_wall_sec_t2/2k_nodes"
                        }
                        (false, _) => {
                            "sim/chaos_threads_sweep_committed_per_wall_sec_t8/2k_nodes"
                        }
                    },
                    unit: "updates/s",
                    before: Some(*t1_rate),
                    after: rate,
                });
                rows.push(Bench {
                    name: match (small, threads) {
                        (true, 2) => "sim/chaos_threads_sweep_serial_fraction_t2/small",
                        (true, _) => "sim/chaos_threads_sweep_serial_fraction_t8/small",
                        (false, 2) => "sim/chaos_threads_sweep_serial_fraction_t2/2k_nodes",
                        (false, _) => "sim/chaos_threads_sweep_serial_fraction_t8/2k_nodes",
                    },
                    unit: "fraction",
                    before: None,
                    after: cov.serial_fraction(),
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------- chaos --

fn bench_chaos(small: bool) -> Vec<Bench> {
    let seeds: u64 = if small { 4 } else { 20 };
    let opts = oceanstore_chaos::fuzz::FuzzOpts::default();
    let start = Instant::now();
    for seed in 0..seeds {
        let outcome = oceanstore_chaos::fuzz::run_fuzz(seed, &opts);
        assert!(
            outcome.report.passed(),
            "chaos fuzz seed {seed} failed invariants during perf run"
        );
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    vec![Bench {
        name: if small { "chaos/fuzz_wall_clock/4_seeds" } else { "chaos/fuzz_wall_clock/20_seeds" },
        unit: "ms",
        before: None,
        after: wall_ms,
    }]
}

// ----------------------------------------------------------------- json --

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn render_json(preset: &str, benches: &[Bench]) -> String {
    let cpus = std::thread::available_parallelism().map_or(0, |p| p.get());
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"oceanstore-perf-report/v1\",\n");
    s.push_str("  \"pr\": 10,\n");
    s.push_str(&format!("  \"preset\": \"{preset}\",\n"));
    s.push_str(&format!(
        "  \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {}}},\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        cpus
    ));
    s.push_str("  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        let before = b.before.map_or("null".to_string(), json_f64);
        let speedup = b.speedup().map_or("null".to_string(), json_f64);
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"unit\": \"{}\", \"before\": {}, \"after\": {}, \"speedup\": {}}}{}\n",
            b.name,
            b.unit,
            before,
            json_f64(b.after),
            speedup,
            if i + 1 == benches.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

// ---------------------------------------------------------- diff-frozen --

/// `(name, speedup)` rows from a frozen report. The parser is deliberately
/// line-oriented — `render_json` emits one bench object per line — so it
/// stays dependency-free; it is not a general JSON parser.
fn parse_frozen(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read frozen report {path}: {e}"));
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"name\":") {
            continue;
        }
        let Some(name) = line
            .split("\"name\": \"")
            .nth(1)
            .and_then(|s| s.split('"').next())
        else {
            continue;
        };
        let Some(raw) = line.split("\"speedup\": ").nth(1) else { continue };
        let raw = raw.trim_end_matches('}').trim();
        if let Ok(speedup) = raw.parse::<f64>() {
            out.push((name.to_string(), speedup));
        }
    }
    assert!(!out.is_empty(), "{path} holds no benches with a speedup — wrong file?");
    out
}

/// Compares two frozen reports: every speedup present in both must be no
/// more than 20% below its old value. Returns the failure descriptions.
fn diff_frozen(old_path: &str, new_path: &str) -> Vec<String> {
    const TOLERANCE: f64 = 0.8;
    let old = parse_frozen(old_path);
    let new = parse_frozen(new_path);
    let mut failures = Vec::new();
    let mut compared = 0;
    for (name, old_speedup) in &old {
        let Some((_, new_speedup)) = new.iter().find(|(n, _)| n == name) else {
            continue;
        };
        compared += 1;
        let ratio = new_speedup / old_speedup;
        let verdict = if ratio >= TOLERANCE { "ok" } else { "FAIL" };
        println!(
            "{name:<52} {old_speedup:>8.2}x -> {new_speedup:>8.2}x  ({:.0}%)  {verdict}",
            ratio * 100.0
        );
        if ratio < TOLERANCE {
            failures.push(format!(
                "{name}: frozen speedup fell {old_speedup:.2}x -> {new_speedup:.2}x \
                 (more than 20% regression)"
            ));
        }
    }
    assert!(
        compared > 0,
        "no bench names shared between {old_path} and {new_path} — nothing was checked"
    );
    failures
}

// ----------------------------------------------------------------- main --

fn main() {
    let args = parse_args();
    if let Some((old, new)) = &args.diff_frozen {
        let failures = diff_frozen(old, new);
        for f in &failures {
            eprintln!("perf_report: FAIL {f}");
        }
        std::process::exit(if failures.is_empty() { 0 } else { 1 });
    }
    let preset = if args.small { "small" } else { "full" };
    eprintln!("perf_report: preset={preset}");

    let mut benches = Vec::new();
    benches.extend(bench_gf256(args.small));
    benches.extend(bench_rs(args.small));
    benches.extend(bench_schnorr(args.small));
    benches.extend(bench_consensus(args.small));
    benches.extend(bench_long_horizon(args.small));
    benches.extend(bench_store(args.small));
    benches.extend(bench_engine(args.small));
    benches.extend(bench_shard_sweep(args.small));
    benches.extend(bench_threads_sweep(args.small));
    benches.extend(bench_chaos_threads_sweep(args.small));
    benches.extend(bench_chaos(args.small));

    println!("{:<44} {:>12} {:>12} {:>8}  unit", "bench", "before", "after", "speedup");
    for b in &benches {
        println!(
            "{:<44} {:>12} {:>12} {:>8}  {}",
            b.name,
            b.before.map_or("-".to_string(), |v| format!("{v:.1}")),
            format!("{:.1}", b.after),
            b.speedup().map_or("-".to_string(), |v| format!("{v:.2}x")),
            b.unit
        );
    }

    let json = render_json(preset, &benches);
    std::fs::write(&args.out, &json).expect("write report");
    eprintln!("perf_report: wrote {}", args.out);

    let mut failures = Vec::new();
    if let Some(floor) = args.min_gf256_mbps {
        let gf = benches.iter().find(|b| b.name.starts_with("gf256/")).expect("gf256 bench");
        if gf.after < floor {
            failures.push(format!("gf256 {:.1} MB/s below floor {floor} MB/s", gf.after));
        }
    }
    if args.check {
        let mut bars = vec![
            ("gf256/mul_acc_slice", 4.0),
            ("rs/encode", 3.0),
            ("engine/events_per_sec", 1.5),
            ("schnorr/verify/batch32", 3.0),
            ("consensus/committed_updates_per_sec", 1.1),
            // rings1 is the baseline row (no "before"); the scale-out bar
            // applies to the sharded configurations only.
            ("workload/shard_sweep_committed_per_sec/rings4", 2.0),
            ("workload/shard_sweep_committed_per_sec/rings16", 2.0),
        ];
        // The parallel-speedup bar is a wall-clock property of the host:
        // a box without 8 real cores can't honestly show an 8-thread
        // speedup, so the bar only arms where the hardware exists.
        if std::thread::available_parallelism().is_ok_and(|p| p.get() >= 8) {
            bars.push(("sim/threads_sweep_committed_per_wall_sec_t8", 2.0));
        }
        for (prefix, bar) in bars {
            for b in benches.iter().filter(|b| b.name.starts_with(prefix)) {
                match b.speedup() {
                    Some(s) if s >= bar => {}
                    Some(s) => failures.push(format!("{}: {s:.2}x < required {bar}x", b.name)),
                    None => failures.push(format!("{}: no before measurement", b.name)),
                }
            }
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("perf_report: FAIL {f}");
        }
        std::process::exit(1);
    }
}
