//! S5: "We have implemented the introspective prefetching mechanism for a
//! local file system. Testing showed that the method correctly captured
//! high-order correlations, even in the presence of noise." (§5)
//!
//! Synthetic traces embed an order-3 access pattern; a noise fraction of
//! accesses is uniform over a separate object population. We report hit
//! rate vs noise for the order-k predictor, against the random baseline.

use oceanstore_introspect::prefetch::hit_rate;
use oceanstore_naming::guid::Guid;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One point of the noise sweep.
#[derive(Debug, Clone)]
pub struct PrefetchRow {
    /// Fraction of accesses that are uniform noise.
    pub noise: f64,
    /// Predictor order.
    pub order: usize,
    /// Predictions offered per access.
    pub predictions: usize,
    /// Measured hit rate.
    pub hit_rate: f64,
    /// Hit rate a uniform-random guesser would get on the same trace.
    pub random_baseline: f64,
}

/// Generates a trace with an embedded periodic pattern plus noise, and
/// measures the predictor.
pub fn run(noise_levels: &[f64], order: usize, predictions: usize, seed: u64) -> Vec<PrefetchRow> {
    let pattern: Vec<Guid> = (0..6).map(|i| Guid::from_label(&format!("s5-pat-{i}"))).collect();
    let noise_pop = 40usize;
    let mut out = Vec::new();
    for &noise in noise_levels {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut trace = Vec::new();
        for _ in 0..500 {
            for p in &pattern {
                trace.push(*p);
                if rng.gen::<f64>() < noise {
                    trace.push(Guid::from_label(&format!(
                        "s5-noise-{}",
                        rng.gen_range(0..noise_pop)
                    )));
                }
            }
        }
        let rate = hit_rate(&trace, order, predictions);
        let population = pattern.len() + noise_pop;
        out.push(PrefetchRow {
            noise,
            order,
            predictions,
            hit_rate: rate,
            random_baseline: predictions as f64 / population as f64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_baseline_across_noise_levels() {
        let rows = run(&[0.0, 0.2, 0.4], 3, 2, 13);
        for r in &rows {
            assert!(
                r.hit_rate > 3.0 * r.random_baseline,
                "must beat random decisively: {r:?}"
            );
        }
        // Perfect pattern, no noise: near-perfect prediction.
        assert!(rows[0].hit_rate > 0.95, "{rows:?}");
        // Even at 40% noise, the pattern is captured.
        assert!(rows[2].hit_rate > 0.5, "{rows:?}");
    }
}
