//! S2: the Plaxton locality claim (§4.3.3) — "the average distance
//! traveled is proportional to the distance between the source of the
//! query and the closest replica", and "most object searches do not travel
//! all the way to the root".

use std::sync::Arc;

use oceanstore_naming::guid::Guid;
use oceanstore_plaxton::{build_network, PlaxtonConfig, PlaxtonNode};
use oceanstore_sim::{NodeId, SimDuration, Simulator, Topology};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Locality statistics bucketed by origin→replica distance.
#[derive(Debug, Clone)]
pub struct LocalityBucket {
    /// Upper edge of the IP-distance bucket (ms).
    pub dist_ms_upper: u64,
    /// Queries in this bucket.
    pub queries: usize,
    /// Mean locate latency (ms).
    pub mean_locate_ms: f64,
    /// Mean latency / distance ratio (the proportionality constant).
    pub mean_stretch: f64,
    /// Fraction of queries answered by the object's root.
    pub root_fraction: f64,
}

/// Runs locate queries against one published replica from origins at
/// varying distances, bucketing by IP distance.
pub fn run(nodes: usize, objects: usize, queries_per_object: usize, seed: u64) -> Vec<LocalityBucket> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let topo = Arc::new(Topology::random_geometric(
        nodes,
        0.15,
        SimDuration::from_millis(40),
        &mut rng,
    ));
    let (net, _guids) = build_network(&topo, &PlaxtonConfig::default(), seed);
    let mut rng2 = ChaCha8Rng::seed_from_u64(seed);
    let topo2 = Topology::random_geometric(nodes, 0.15, SimDuration::from_millis(40), &mut rng2);
    let mut sim: Simulator<PlaxtonNode> = Simulator::new(topo2, net, seed ^ 0x52);
    sim.start();

    // Publish each object at one random holder.
    let mut placements = Vec::new();
    for i in 0..objects {
        let g = Guid::from_label(&format!("s2-{seed}-{i}"));
        let holder = NodeId(rng.gen_range(0..nodes));
        sim.with_node_ctx(holder, |n, ctx| n.publish(ctx, g));
        placements.push((g, holder));
    }
    sim.run_for(SimDuration::from_secs(3));

    // Issue queries and collect (distance, latency, via_root).
    let mut samples: Vec<(u64, u64, bool)> = Vec::new();
    let mut qid = 0u64;
    for (g, holder) in &placements {
        for _ in 0..queries_per_object {
            let origin = NodeId(rng.gen_range(0..nodes));
            if origin == *holder {
                continue;
            }
            let Some(dist) = sim.topology().dist(origin, *holder) else { continue };
            qid += 1;
            let start = sim.now();
            sim.with_node_ctx(origin, |n, ctx| n.locate(ctx, qid, *g));
            sim.run_for(SimDuration::from_secs(5));
            if let Some(o) = sim.node(origin).outcome(qid) {
                if o.holder.is_some() {
                    let latency = o.completed_at.saturating_since(start);
                    samples.push((dist.as_millis(), latency.as_millis(), o.answered_by_root));
                }
            }
        }
    }

    // Bucket by distance quartiles.
    let mut dists: Vec<u64> = samples.iter().map(|(d, _, _)| *d).collect();
    dists.sort_unstable();
    if dists.is_empty() {
        return Vec::new();
    }
    let edges: Vec<u64> = (1..=4)
        .map(|q| dists[(dists.len() * q / 4).min(dists.len() - 1)])
        .collect();
    edges
        .iter()
        .enumerate()
        .map(|(i, &upper)| {
            let lower = if i == 0 { 0 } else { edges[i - 1] };
            let bucket: Vec<&(u64, u64, bool)> = samples
                .iter()
                .filter(|(d, _, _)| *d > lower && *d <= upper)
                .collect();
            let n = bucket.len().max(1);
            LocalityBucket {
                dist_ms_upper: upper,
                queries: bucket.len(),
                mean_locate_ms: bucket.iter().map(|(_, l, _)| *l as f64).sum::<f64>() / n as f64,
                mean_stretch: bucket
                    .iter()
                    .map(|(d, l, _)| *l as f64 / (*d).max(1) as f64)
                    .sum::<f64>()
                    / n as f64,
                root_fraction: bucket.iter().filter(|(_, _, r)| *r).count() as f64 / n as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_distance_and_root_rarely_answers() {
        let buckets = run(64, 6, 6, 3);
        assert!(buckets.len() >= 2, "{buckets:?}");
        let first = buckets.first().unwrap();
        let last = buckets.last().unwrap();
        assert!(
            last.mean_locate_ms > first.mean_locate_ms,
            "locate cost must grow with replica distance: {buckets:?}"
        );
        // The locality property behind "most object searches do not travel
        // all the way to the root": queries issued *near* the replica hit
        // a pointer before the root far more often than distant queries.
        assert!(
            first.root_fraction < last.root_fraction
                || (first.root_fraction < 1.0 && last.root_fraction >= 0.9),
            "close queries should short-circuit before the root: {buckets:?}"
        );
    }
}
