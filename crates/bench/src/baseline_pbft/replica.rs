//! The primary-tier replica state machine (§4.4.3).
//!
//! "We replace this master replica with a primary tier of replicas. These
//! replicas cooperate with one another in a Byzantine agreement protocol to
//! choose the final commit order for updates." The protocol is the
//! Castro–Liskov three-phase scheme the paper cites \[10\]: pre-prepare,
//! prepare (quorum 2m), commit (quorum 2m + 1), with `n = 3m + 1` replicas
//! tolerating `m` arbitrary faults, plus a simplified view change that
//! re-proposes prepared requests under a new leader.
//!
//! Fault injection is built in: a replica can be [`FaultMode::Silent`]
//! (crash-like) or [`FaultMode::Equivocate`] (lies about digests, including
//! equivocating pre-prepares as leader). Safety tests assert that honest
//! replicas never execute conflicting orders regardless.

use std::collections::{BTreeMap, HashMap, HashSet};

use oceanstore_crypto::schnorr::{verify_ref, KeyPair, PublicKey};
use oceanstore_crypto::sha1::Digest;
use oceanstore_sim::{Context, NodeId, SimDuration};

use super::messages::{signing_bytes, Payload, PbftMsg, RequestId};

/// Timer tag: view-change alarm (low bits carry the view it guards).
const TIMER_VIEW_BASE: u64 = 1 << 40;

/// Static configuration of one primary tier.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Faults tolerated; the tier has `3m + 1` replicas.
    pub m: usize,
    /// Transport address of each replica, by tier index.
    pub members: Vec<NodeId>,
    /// Public key of each replica, by tier index.
    pub replica_keys: Vec<PublicKey>,
    /// Public keys of authorized clients (writer restriction happens above
    /// this layer; these are transport-level client identities).
    pub client_keys: HashMap<NodeId, PublicKey>,
    /// How long a replica waits for an accepted request to execute before
    /// starting a view change.
    pub view_timeout: SimDuration,
}

impl TierConfig {
    /// Total replica count `n = 3m + 1`.
    pub fn n(&self) -> usize {
        3 * self.m + 1
    }

    /// Prepare quorum (2m matching prepares beyond the pre-prepare).
    pub fn prepare_quorum(&self) -> usize {
        2 * self.m
    }

    /// Commit quorum (2m + 1 commits).
    pub fn commit_quorum(&self) -> usize {
        2 * self.m + 1
    }

    /// The leader index for `view`.
    pub fn leader(&self, view: u64) -> usize {
        (view % self.n() as u64) as usize
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if member/key counts disagree with `3m + 1`.
    pub fn validate(&self) {
        assert_eq!(self.members.len(), self.n(), "need 3m+1 members");
        assert_eq!(self.replica_keys.len(), self.n(), "need 3m+1 keys");
    }
}

/// Fault behaviour of a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Sends nothing at all (crash fault).
    Silent,
    /// Sends conflicting digests to different peers (Byzantine).
    Equivocate,
}

/// One agreement slot.
#[derive(Debug, Default, Clone)]
struct Instance {
    digest: Option<Digest>,
    request: Option<RequestId>,
    /// View in which the current digest was adopted. A later view's
    /// leader may overwrite an unexecuted slot (its choice is built from
    /// a vote quorum, which must contain any certificate that could
    /// underpin a commit); within one view the first digest is final, so
    /// an equivocating leader cannot flip-flop a slot.
    digest_view: u64,
    prepares: HashSet<usize>,
    commits: HashSet<usize>,
    /// Sticky: this slot reached a prepare certificate (`> 2m` prepares)
    /// at some point. Survives view changes — the certificate may
    /// underpin a commit elsewhere, so it must keep circulating in
    /// view-change votes until the slot executes.
    prepared_cert: bool,
    sent_commit: bool,
    executed: bool,
}

/// A committed update, in final serialization order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Committed {
    /// Agreement sequence number.
    pub seq: u64,
    /// Payload digest.
    pub digest: Digest,
    /// The payload itself.
    pub payload: Payload,
    /// Originating request.
    pub request: RequestId,
    /// The client's optimistic timestamp.
    pub timestamp: u64,
}

/// One tier member's view-change votes: voter index → its execution
/// frontier plus the certificate entries (seq, digest, request) it can
/// vouch for — executed slots and prepared certificates alike.
type VcVotes = HashMap<usize, (u64, Vec<(u64, Digest, RequestId)>)>;

/// A primary-tier replica.
#[derive(Debug)]
pub struct Replica {
    cfg: TierConfig,
    index: usize,
    keypair: KeyPair,
    fault: FaultMode,
    view: u64,
    /// Leader-only: next sequence to assign.
    next_seq: u64,
    /// Agreement slots by sequence.
    log: BTreeMap<u64, Instance>,
    /// Request payloads by id (from Request messages).
    requests: HashMap<RequestId, (Payload, u64)>,
    /// Requests assigned to a sequence (leader bookkeeping / dedup).
    assigned: HashMap<RequestId, u64>,
    /// Highest sequence executed + 1 == next to execute.
    next_exec: u64,
    /// The committed order (the tier's output).
    executed: Vec<Committed>,
    /// Requests that already executed at some slot. A request re-proposed
    /// across view changes can commit at a second slot; the duplicate
    /// slot executes as a no-op so the tier's output applies it once.
    executed_ids: HashSet<RequestId>,
    /// View-change votes: new_view → voter → prepared set.
    vc_votes: HashMap<u64, VcVotes>,
    /// Whether a view-change alarm is armed for the current view.
    alarm_armed: bool,
    /// Total view-change votes this replica has broadcast. During a
    /// quorum-loss partition this climbs while `view` stays put — no side
    /// can gather `2m + 1` votes — which is exactly the signature the
    /// chaos `quorum_loss` scenario asserts on.
    view_changes_sent: u64,
}

impl Replica {
    /// Creates replica `index` of the tier.
    ///
    /// # Panics
    ///
    /// Panics if the config is inconsistent or `index` out of range.
    pub fn new(cfg: TierConfig, index: usize, keypair: KeyPair, fault: FaultMode) -> Self {
        cfg.validate();
        assert!(index < cfg.n(), "replica index out of range");
        assert_eq!(
            cfg.replica_keys[index],
            keypair.public(),
            "keypair must match the configured key"
        );
        Replica {
            cfg,
            index,
            keypair,
            fault,
            view: 0,
            next_seq: 0,
            log: BTreeMap::new(),
            requests: HashMap::new(),
            assigned: HashMap::new(),
            next_exec: 0,
            executed: Vec::new(),
            executed_ids: HashSet::new(),
            vc_votes: HashMap::new(),
            alarm_armed: false,
            view_changes_sent: 0,
        }
    }

    /// The committed updates in serialization order.
    pub fn executed(&self) -> &[Committed] {
        &self.executed
    }

    /// The digests of the committed order (for safety comparisons).
    pub fn executed_digests(&self) -> Vec<Digest> {
        self.executed.iter().map(|c| c.digest).collect()
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Total view-change votes this replica has broadcast (liveness
    /// probes under partition: votes without view advancement mean the
    /// replica noticed the stall but cannot gather a quorum).
    pub fn view_changes_sent(&self) -> u64 {
        self.view_changes_sent
    }

    /// This replica's tier index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Injects or clears a fault mode (failure-injection tests).
    pub fn set_fault(&mut self, fault: FaultMode) {
        self.fault = fault;
    }

    fn am_leader(&self) -> bool {
        self.cfg.leader(self.view) == self.index
    }

    fn verify_replica(&self, replica: usize, msg: &PbftMsg) -> bool {
        let Some(key) = self.cfg.replica_keys.get(replica) else { return false };
        let sig = match msg {
            PbftMsg::PrePrepare { sig, .. }
            | PbftMsg::Prepare { sig, .. }
            | PbftMsg::Commit { sig, .. }
            | PbftMsg::ViewChange { sig, .. }
            | PbftMsg::NewView { sig, .. } => sig,
            _ => return false,
        };
        verify_ref(*key, &signing_bytes(msg), sig)
    }

    /// Sends to every *other* replica, honoring the fault mode. `mutate`
    /// lets an equivocating replica tamper per-recipient.
    fn broadcast(
        &self,
        ctx: &mut Context<'_, PbftMsg>,
        mut make: impl FnMut(usize) -> Option<PbftMsg>,
    ) {
        if self.fault == FaultMode::Silent {
            return;
        }
        for (i, &node) in self.cfg.members.iter().enumerate() {
            if i == self.index {
                continue;
            }
            if let Some(msg) = make(i) {
                ctx.send(node, msg);
            }
        }
    }

    /// Sends the *same* message to every other replica, honoring the fault
    /// mode. Uses the engine's shared-payload multicast: one allocation for
    /// the whole quorum instead of a clone per recipient.
    fn multicast(&self, ctx: &mut Context<'_, PbftMsg>, msg: PbftMsg) {
        if self.fault == FaultMode::Silent {
            return;
        }
        let my = self.index;
        let peers = self
            .cfg
            .members
            .iter()
            .enumerate()
            .filter(move |(i, _)| *i != my)
            .map(|(_, &node)| node);
        ctx.broadcast(peers, msg);
    }

    /// An equivocator flips a digest for odd-indexed recipients.
    fn maybe_corrupt(&self, recipient: usize, digest: Digest) -> Digest {
        if self.fault == FaultMode::Equivocate && recipient % 2 == 1 {
            let mut d = digest;
            d[0] ^= 0xff;
            d
        } else {
            digest
        }
    }

    /// Handles a client request (entry point from `on_message`).
    pub fn on_request(
        &mut self,
        ctx: &mut Context<'_, PbftMsg>,
        id: RequestId,
        timestamp: u64,
        payload: Payload,
        sig: &oceanstore_crypto::schnorr::Signature,
    ) {
        // Writer restriction at the transport level: unknown or bad
        // signatures are ignored.
        let Some(key) = self.cfg.client_keys.get(&id.client) else { return };
        let check = PbftMsg::Request { id, timestamp, payload: payload.clone(), sig: *sig };
        if !verify_ref(*key, &signing_bytes(&check), sig) {
            return;
        }
        self.requests.insert(id, (payload.clone(), timestamp));
        if let Some(&seq) = self.assigned.get(&id) {
            // Duplicate (likely a retransmission): re-send the reply if the
            // request already executed, otherwise re-guard the stuck
            // agreement with a view-change alarm (messages of the original
            // round may all have been lost).
            if !self.log.get(&seq).is_some_and(|i| i.executed) && !self.alarm_armed {
                self.alarm_armed = true;
                ctx.set_timer(self.cfg.view_timeout, TIMER_VIEW_BASE + self.view);
            }
            if self.log.get(&seq).is_some_and(|i| i.executed) && self.fault != FaultMode::Silent {
                let digest = payload.digest();
                let my = self.index;
                let mut reply =
                    PbftMsg::Reply { id, seq, digest, replica: my, sig: self.keypair.sign_ref(b"") };
                let rsig = self.keypair.sign_ref(&signing_bytes(&reply));
                if let PbftMsg::Reply { sig: s, .. } = &mut reply {
                    *s = rsig;
                }
                ctx.send(id.client, reply);
            }
            return;
        }
        if self.am_leader() {
            self.propose(ctx, id);
        } else if !self.alarm_armed {
            // Guard the request with a view-change alarm.
            self.alarm_armed = true;
            ctx.set_timer(self.cfg.view_timeout, TIMER_VIEW_BASE + self.view);
        }
    }

    fn propose(&mut self, ctx: &mut Context<'_, PbftMsg>, id: RequestId) {
        let Some((payload, _ts)) = self.requests.get(&id) else { return };
        let digest = payload.digest();
        // Skip slots already seeded by re-proposal: after a view change
        // `next_seq` points at the lowest unfilled slot, and the slots
        // above it may hold adopted certificates.
        let mut seq = self.next_seq;
        while self.log.get(&seq).is_some_and(|i| i.digest.is_some()) {
            seq += 1;
        }
        self.next_seq = seq + 1;
        self.propose_at(ctx, seq, digest, id);
    }

    /// Seeds slot `seq` with `(digest, id)` and broadcasts the
    /// pre-prepare. Used directly by re-proposal, where the digest comes
    /// from a certificate rather than a local payload (which this replica
    /// may not even hold yet); an already-executed slot is left untouched
    /// but still re-announced so stragglers can rebuild its quorum.
    fn propose_at(&mut self, ctx: &mut Context<'_, PbftMsg>, seq: u64, digest: Digest, id: RequestId) {
        self.assigned.insert(id, seq);
        let view = self.view;
        let inst = self.log.entry(seq).or_default();
        if !inst.executed {
            inst.digest = Some(digest);
            inst.digest_view = view;
            inst.request = Some(id);
            inst.prepares.insert(self.index);
        }
        self.broadcast(ctx, |recipient| {
            let d = self.maybe_corrupt(recipient, digest);
            let mut msg = PbftMsg::PrePrepare { view, seq, digest: d, id, sig: self.keypair.sign_ref(b"") };
            let sig = self.keypair.sign_ref(&signing_bytes(&msg));
            if let PbftMsg::PrePrepare { sig: s, .. } = &mut msg {
                *s = sig;
            }
            Some(msg)
        });
        self.maybe_commit_phase(ctx, seq);
    }

    fn on_preprepare(
        &mut self,
        ctx: &mut Context<'_, PbftMsg>,
        view: u64,
        seq: u64,
        digest: Digest,
        id: RequestId,
    ) {
        if view != self.view {
            return;
        }
        let inst = self.log.entry(seq).or_default();
        if inst.executed {
            if inst.digest != Some(digest) {
                return; // never rewrite executed history
            }
            // Re-announcement of a slot we already executed (a new view's
            // leader catching up a straggler): fall through and re-send
            // our prepare so the straggler can rebuild the quorum.
        } else if inst.digest.is_some_and(|d| d != digest) {
            if view > inst.digest_view {
                // A later view's leader re-seeds the slot. Its choice is
                // derived from a vote quorum, which must contain any
                // certificate that could underpin a commit — adopt it and
                // restart the rounds, so stale votes for the old digest
                // don't count toward the new one.
                inst.prepares.clear();
                inst.commits.clear();
                inst.sent_commit = false;
                inst.prepared_cert = false;
            } else {
                // Conflicting proposal within one view: ignore (view
                // change will handle an equivocating leader).
                return;
            }
        }
        if !inst.executed {
            inst.digest = Some(digest);
            inst.digest_view = view;
            inst.request = Some(id);
        }
        inst.prepares.insert(self.cfg.leader(view));
        inst.prepares.insert(self.index);
        self.assigned.insert(id, seq);
        let my = self.index;
        let base = PbftMsg::Prepare { view, seq, digest, replica: my, sig: self.keypair.sign_ref(b"") };
        let sig = self.keypair.sign_ref(&signing_bytes(&base));
        self.broadcast(ctx, |recipient| {
            let d = self.maybe_corrupt(recipient, digest);
            if d == digest {
                let mut m = base.clone();
                if let PbftMsg::Prepare { sig: s, .. } = &mut m {
                    *s = sig;
                }
                Some(m)
            } else {
                let mut m =
                    PbftMsg::Prepare { view, seq, digest: d, replica: my, sig: self.keypair.sign_ref(b"") };
                let s2 = self.keypair.sign_ref(&signing_bytes(&m));
                if let PbftMsg::Prepare { sig: s, .. } = &mut m {
                    *s = s2;
                }
                Some(m)
            }
        });
        self.maybe_commit_phase(ctx, seq);
        if !self.alarm_armed {
            self.alarm_armed = true;
            ctx.set_timer(self.cfg.view_timeout, TIMER_VIEW_BASE + self.view);
        }
    }

    fn on_prepare(&mut self, ctx: &mut Context<'_, PbftMsg>, seq: u64, digest: Digest, replica: usize) {
        let inst = self.log.entry(seq).or_default();
        if inst.digest == Some(digest) {
            inst.prepares.insert(replica);
        }
        self.maybe_commit_phase(ctx, seq);
    }

    fn maybe_commit_phase(&mut self, ctx: &mut Context<'_, PbftMsg>, seq: u64) {
        let prepare_quorum = self.cfg.prepare_quorum();
        let Some(inst) = self.log.get_mut(&seq) else { return };
        let Some(digest) = inst.digest else { return };
        if inst.prepares.len() > prepare_quorum {
            inst.prepared_cert = true;
        }
        if inst.sent_commit || inst.prepares.len() < prepare_quorum + 1 {
            return;
        }
        inst.sent_commit = true;
        inst.commits.insert(self.index);
        let view = self.view;
        let my = self.index;
        let mut msg = PbftMsg::Commit { view, seq, digest, replica: my, sig: self.keypair.sign_ref(b"") };
        let sig = self.keypair.sign_ref(&signing_bytes(&msg));
        if let PbftMsg::Commit { sig: s, .. } = &mut msg {
            *s = sig;
        }
        self.multicast(ctx, msg);
        self.try_execute(ctx);
    }

    fn on_commit(&mut self, ctx: &mut Context<'_, PbftMsg>, seq: u64, digest: Digest, replica: usize) {
        let inst = self.log.entry(seq).or_default();
        if inst.digest == Some(digest) {
            inst.commits.insert(replica);
        }
        self.try_execute(ctx);
    }

    fn try_execute(&mut self, ctx: &mut Context<'_, PbftMsg>) {
        loop {
            let seq = self.next_exec;
            let Some(inst) = self.log.get(&seq) else { break };
            if inst.executed
                || inst.commits.len() < self.cfg.commit_quorum()
                || inst.digest.is_none()
            {
                break;
            }
            let digest = inst.digest.expect("checked above");
            let id = inst.request.expect("digest implies request");
            let Some((payload, timestamp)) = self.requests.get(&id).cloned() else { break };
            // A faulty leader could propose a digest that doesn't match the
            // request payload; never execute such a slot.
            if payload.digest() != digest {
                break;
            }
            let inst = self.log.get_mut(&seq).expect("present");
            inst.executed = true;
            self.next_exec += 1;
            self.alarm_armed = false;
            if !self.executed_ids.insert(id) {
                // The request already executed at a lower slot (it was
                // re-proposed across a view change before the original
                // commit was visible here). The slot still commits — the
                // order must stay gap-free and every replica with the same
                // log makes the same call — but it adds nothing to the
                // tier's output, and the client was already answered.
                continue;
            }
            self.executed.push(Committed { seq, digest, payload, request: id, timestamp });
            // Reply to the client.
            let my = self.index;
            let mut reply =
                PbftMsg::Reply { id, seq, digest, replica: my, sig: self.keypair.sign_ref(b"") };
            let sig = self.keypair.sign_ref(&signing_bytes(&reply));
            if let PbftMsg::Reply { sig: s, .. } = &mut reply {
                *s = sig;
            }
            if self.fault != FaultMode::Silent {
                ctx.send(id.client, reply);
            }
        }
    }

    /// View-change alarm fired.
    pub fn on_view_alarm(&mut self, ctx: &mut Context<'_, PbftMsg>, guarded_view: u64) {
        if guarded_view != self.view {
            return; // stale alarm from an earlier view
        }
        // Anything accepted but not executed? Then the leader failed us.
        let stuck = self
            .assigned
            .values()
            .any(|&seq| self.log.get(&seq).is_none_or(|i| !i.executed))
            || self.requests.keys().any(|id| !self.assigned.contains_key(id));
        self.alarm_armed = false;
        if !stuck {
            return;
        }
        // Re-arm the alarm before voting: if the view change itself stalls
        // (votes lost on a lossy network), the next expiry rebroadcasts it.
        // Entering the new view invalidates the re-armed alarm's guard.
        self.alarm_armed = true;
        ctx.set_timer(self.cfg.view_timeout, TIMER_VIEW_BASE + self.view);
        let new_view = self.view + 1;
        self.send_view_change(ctx, new_view);
    }

    /// Broadcasts (and self-records) a view-change vote for `new_view`.
    fn send_view_change(&mut self, ctx: &mut Context<'_, PbftMsg>, new_view: u64) {
        self.view_changes_sent += 1;
        // Vouch for every slot we can certify: executed slots and prepared
        // certificates alike. Executed history rides along so a new leader
        // can re-run agreement for stragglers below our frontier; any slot
        // that may underpin a commit elsewhere appears in at least one
        // vote of any quorum (certificates are sticky across views), which
        // is what keeps re-proposal from contradicting a committed slot.
        // Unbounded without checkpoints/GC — fine at simulation scale.
        let prepared: Vec<(u64, Digest, RequestId)> = self
            .log
            .iter()
            .filter(|(_, i)| {
                i.digest.is_some()
                    && (i.executed
                        || i.prepared_cert
                        || i.prepares.len() > self.cfg.prepare_quorum())
            })
            .map(|(&s, i)| (s, i.digest.expect("checked"), i.request.expect("checked")))
            .collect();
        let my = self.index;
        let last_exec = self.next_exec;
        let mut msg = PbftMsg::ViewChange {
            new_view,
            last_exec,
            prepared: prepared.clone(),
            replica: my,
            sig: self.keypair.sign_ref(b""),
        };
        let sig = self.keypair.sign_ref(&signing_bytes(&msg));
        if let PbftMsg::ViewChange { sig: s, .. } = &mut msg {
            *s = sig;
        }
        self.multicast(ctx, msg);
        // Vote for ourselves too.
        self.record_vc_vote(ctx, new_view, my, last_exec, prepared);
    }

    fn record_vc_vote(
        &mut self,
        ctx: &mut Context<'_, PbftMsg>,
        new_view: u64,
        replica: usize,
        last_exec: u64,
        prepared: Vec<(u64, Digest, RequestId)>,
    ) {
        if new_view <= self.view {
            return;
        }
        self.vc_votes.entry(new_view).or_default().insert(replica, (last_exec, prepared));
        let votes = self.vc_votes[&new_view].len();
        if votes >= self.cfg.commit_quorum() && self.cfg.leader(new_view) == self.index {
            // We are the new leader: announce and re-propose.
            self.enter_view(new_view);
            let my = self.index;
            let mut msg =
                PbftMsg::NewView { view: new_view, replica: my, sig: self.keypair.sign_ref(b"") };
            let sig = self.keypair.sign_ref(&signing_bytes(&msg));
            if let PbftMsg::NewView { sig: s, .. } = &mut msg {
                *s = sig;
            }
            self.multicast(ctx, msg);
            self.repropose(ctx, new_view);
        }
    }

    fn enter_view(&mut self, view: u64) {
        self.view = view;
        self.alarm_armed = false;
        // Executed slots and prepare certificates survive the view change
        // (a certificate may underpin a commit somewhere, so it must keep
        // circulating in votes until the slot executes). Anything weaker
        // is torn down for re-proposal.
        let prepare_quorum = self.cfg.prepare_quorum();
        self.log.retain(|_, i| {
            if i.prepares.len() > prepare_quorum {
                i.prepared_cert = true;
            }
            i.executed || i.prepared_cert
        });
        for i in self.log.values_mut() {
            // The commit round re-runs in the new view — when the leader
            // re-announces a slot, everyone (executed replicas included)
            // re-broadcasts its commit so stragglers can gather a fresh
            // quorum. Stale votes from the old view must not count toward
            // a surviving-but-unexecuted slot.
            i.sent_commit = false;
            if !i.executed {
                i.prepares.clear();
                i.commits.clear();
            }
        }
        let log = &self.log;
        self.assigned.retain(|id, s| log.get(s).is_some_and(|i| i.request == Some(*id)));
        // Restart proposals at the execution frontier; re-proposal walks
        // the surviving slots from there and leaves `next_seq` at the
        // lowest unfilled one (a stale, inflated `next_seq` would propose
        // above a gap that in-order execution can never cross — every view
        // change would then strand its own re-proposal and the tier would
        // churn views forever without committing).
        self.next_seq = self.next_exec;
    }

    fn repropose(&mut self, ctx: &mut Context<'_, PbftMsg>, view: u64) {
        let votes = self.vc_votes.get(&view).cloned().unwrap_or_default();
        // Re-run agreement from the lowest execution frontier in the vote
        // quorum (ours included): replicas that missed commits catch up by
        // re-committing, which is idempotent for everyone already past a
        // slot. A straggler outside the quorum stays behind until it votes
        // in a later change — there is no separate state-transfer path.
        let base =
            votes.values().map(|&(le, _)| le).chain([self.next_exec]).min().unwrap_or(0);
        // Candidate per slot: the certificate reported by the most voters,
        // ties broken by digest for determinism. Conflicting reports for
        // one slot can only pit a live certificate against a stale one
        // that never committed (two certificates with distinct digests
        // cannot both commit — quorum intersection), so majority suffices
        // in the fault mix this model runs; our own retained slots
        // (executed or certified) override, local knowledge being at
        // least as strong as a vote's.
        let mut tally: BTreeMap<u64, HashMap<(Digest, RequestId), usize>> = BTreeMap::new();
        for (_, prepared) in votes.values() {
            for &(s, d, id) in prepared {
                if s >= base {
                    *tally.entry(s).or_default().entry((d, id)).or_default() += 1;
                }
            }
        }
        let mut slots: BTreeMap<u64, (Digest, RequestId)> = tally
            .into_iter()
            .map(|(s, counts)| {
                let ((d, id), _) = counts
                    .into_iter()
                    .max_by_key(|&((d, id), c)| (c, d, id))
                    .expect("tally entries are non-empty");
                (s, (d, id))
            })
            .collect();
        for (&s, i) in &self.log {
            if s >= base && (i.executed || i.prepared_cert) {
                if let (Some(d), Some(id)) = (i.digest, i.request) {
                    slots.insert(s, (d, id));
                }
            }
        }
        // Seed every candidate at its ORIGINAL slot — reassigning
        // certificates to fresh sequences lets two leaders commit
        // different requests at one slot (divergence) and one request at
        // two slots (duplicate execution). Holes below the top candidate
        // (no voter saw the old leader's proposal) are filled with
        // pending requests; a hole we cannot fill yet stays open and
        // `next_seq` points at it, so the next client (re)transmission
        // plugs it.
        let mut unassigned: Vec<(u64, RequestId)> = self
            .requests
            .iter()
            .filter(|(id, _)| {
                !self.assigned.contains_key(*id) && !self.executed_ids.contains(*id)
            })
            .map(|(id, (_, ts))| (*ts, *id))
            .collect();
        unassigned.sort_unstable();
        let mut unassigned = unassigned.into_iter().map(|(_, id)| id);
        if let Some(&top) = slots.keys().max() {
            for s in base..=top {
                match slots.get(&s).copied() {
                    Some((d, id)) => self.propose_at(ctx, s, d, id),
                    None => {
                        if let Some(id) = unassigned.next() {
                            let d = self.requests[&id].0.digest();
                            self.propose_at(ctx, s, d, id);
                        }
                    }
                }
            }
            self.next_seq = (base..=top)
                .find(|s| self.log.get(s).is_none_or(|i| i.digest.is_none()))
                .unwrap_or(top + 1);
        }
        // Remaining known-but-unassigned requests at fresh sequences,
        // ordered by client timestamp ("clients optimistically timestamp
        // their updates ... the primary tier uses these same timestamps to
        // guide its ordering decisions", §4.4.3).
        let rest: Vec<RequestId> =
            unassigned.filter(|id| !self.assigned.contains_key(id)).collect();
        for id in rest {
            self.propose(ctx, id);
        }
    }

    /// Main message dispatch (called by the enclosing protocol node).
    pub fn on_message(&mut self, ctx: &mut Context<'_, PbftMsg>, _from: NodeId, msg: PbftMsg) {
        match &msg {
            PbftMsg::Request { id, timestamp, payload, sig } => {
                self.on_request(ctx, *id, *timestamp, payload.clone(), sig);
            }
            PbftMsg::PrePrepare { view, seq, digest, id, .. } => {
                let leader = self.cfg.leader(*view);
                if self.verify_replica(leader, &msg) {
                    self.on_preprepare(ctx, *view, *seq, *digest, *id);
                }
            }
            PbftMsg::Prepare { view, seq, digest, replica, .. } => {
                if *view == self.view && self.verify_replica(*replica, &msg) {
                    self.on_prepare(ctx, *seq, *digest, *replica);
                }
            }
            PbftMsg::Commit { view, seq, digest, replica, .. } => {
                if *view == self.view && self.verify_replica(*replica, &msg) {
                    self.on_commit(ctx, *seq, *digest, *replica);
                }
            }
            PbftMsg::ViewChange { new_view, last_exec, prepared, replica, .. } => {
                if self.verify_replica(*replica, &msg) {
                    let nv = *new_view;
                    self.record_vc_vote(ctx, nv, *replica, *last_exec, prepared.clone());
                    // Join a higher view change we haven't voted in yet:
                    // after a lossy burst, view numbers can diverge across
                    // the tier, and a laggard re-proposing `view + 1`
                    // forever would deadlock the tier without this.
                    let already_voted = self
                        .vc_votes
                        .get(&nv)
                        .is_some_and(|votes| votes.contains_key(&self.index));
                    let stuck = self
                        .assigned
                        .values()
                        .any(|&seq| self.log.get(&seq).is_none_or(|i| !i.executed))
                        || self.requests.keys().any(|id| !self.assigned.contains_key(id));
                    if nv > self.view && !already_voted && stuck {
                        self.send_view_change(ctx, nv);
                    }
                }
            }
            PbftMsg::NewView { view, replica, .. } => {
                if self.cfg.leader(*view) == *replica
                    && *view > self.view
                    && self.verify_replica(*replica, &msg)
                {
                    self.enter_view(*view);
                    // Re-arm the alarm if we still have unexecuted requests.
                    let pending = self.requests.keys().any(|id| !self.assigned.contains_key(id));
                    if pending {
                        self.alarm_armed = true;
                        ctx.set_timer(self.cfg.view_timeout, TIMER_VIEW_BASE + self.view);
                    }
                }
            }
            PbftMsg::Reply { .. } => {} // replicas ignore replies
        }
    }

    /// Timer dispatch (called by the enclosing protocol node). Tags
    /// outside the view-alarm band belong to other sub-protocols sharing
    /// the node's timer namespace and are ignored here.
    pub fn on_timer(&mut self, ctx: &mut Context<'_, PbftMsg>, tag: u64) {
        if (TIMER_VIEW_BASE..TIMER_VIEW_BASE << 1).contains(&tag) {
            self.on_view_alarm(ctx, tag - TIMER_VIEW_BASE);
        }
    }
}
