//! Frozen pre-PR-5 PBFT protocol path, for A/B benchmarking only.
//!
//! A verbatim copy of `crates/consensus` as it stood before the crypto and
//! message-path fast paths landed, with two deliberate adaptations that pin
//! the *old* cost model:
//!
//! * all signing/verification goes through the frozen reference crypto
//!   paths ([`oceanstore_crypto::schnorr::KeyPair::sign_ref`] /
//!   [`oceanstore_crypto::schnorr::verify_ref`]) — plain square-and-multiply,
//!   computationally identical to the pre-PR implementation;
//! * the double-sign wart is preserved: every message is constructed with a
//!   throwaway `sign_ref(b"")` placeholder before the real signature is
//!   computed, exactly as the old replica did.
//!
//! Both baseline and production tiers run on the *production* simulator
//! engine, so a macro A/B between them isolates the protocol-layer crypto
//! cost. Do not fix bugs here unless the production copy had them at
//! freeze time; this module exists to be old.

#![allow(missing_docs)]

pub mod client;
pub mod harness;
pub mod messages;
pub mod node;
pub mod replica;

pub use client::{Client, ClientOutcome};
pub use harness::{build_tier, build_tier_with_faults, run_updates, CostModel, TierSim};
pub use messages::{Payload, PbftMsg, RequestId};
pub use node::PbftNode;
pub use replica::{Committed, FaultMode, Replica, TierConfig};

#[cfg(test)]
mod tests {
    use oceanstore_sim::{NodeId, SimDuration};

    #[test]
    fn frozen_baseline_tier_still_commits() {
        let mut ts = super::build_tier(1, SimDuration::from_millis(100), 1);
        let run = super::run_updates(&mut ts, 1024, 2);
        assert_eq!(run.latencies.len(), 2);
        for i in 0..4 {
            let node = ts.sim.node(NodeId(i));
            assert_eq!(node.as_replica().unwrap().executed().len(), 2, "replica {i}");
        }
    }
}
