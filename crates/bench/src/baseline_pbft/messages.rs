//! Wire messages of the Byzantine agreement protocol (§4.4.3).
//!
//! The paper models update cost as `b = c1·n² + (u + c2)·n + c3` with "the
//! constant c1 ... quite small, on the order of 100 bytes" (§4.4.5). Our
//! message overhead reproduces that constant honestly: every protocol
//! message carries a header (view/sequence/ids), a SHA-1 digest, and a
//! signature charged at its production-equivalent size — together about
//! 100 bytes.

use std::sync::Arc;

use oceanstore_crypto::schnorr::Signature;
use oceanstore_crypto::sha1::{sha1_concat, Digest};
use oceanstore_sim::{Message, NodeId};

/// Fixed per-message header charge: kind + view + seq + replica ids +
/// framing.
pub const HEADER_SIZE: usize = 48;

/// Digest bytes carried by agreement messages.
pub const DIGEST_SIZE: usize = 20;

/// An update payload travelling through agreement.
///
/// Real bytes ride in `bytes`; `padded_size` lets benchmarks simulate large
/// updates (the Figure 6 sweep goes to 10 MB) without allocating them —
/// wire accounting uses `max(bytes.len(), padded_size)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Payload {
    /// The actual update content (interpreted by the layer above).
    pub bytes: Arc<Vec<u8>>,
    /// Simulated size floor for byte accounting.
    pub padded_size: usize,
}

impl Payload {
    /// Payload carrying real bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Payload { bytes: Arc::new(bytes), padded_size: 0 }
    }

    /// Payload of a simulated size (for cost experiments).
    pub fn simulated(size: usize) -> Self {
        Payload { bytes: Arc::new(Vec::new()), padded_size: size }
    }

    /// Bytes charged on the wire.
    pub fn wire_len(&self) -> usize {
        self.bytes.len().max(self.padded_size)
    }

    /// Digest binding the payload (includes the simulated size so padded
    /// payloads of different sizes differ).
    pub fn digest(&self) -> Digest {
        sha1_concat(&[&(self.padded_size as u64).to_be_bytes(), &self.bytes])
    }
}

/// A client request identifier: (client node, client-local sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId {
    /// The requesting client's node id.
    pub client: NodeId,
    /// Client-local sequence number.
    pub seq: u64,
}

/// Messages of the PBFT-style agreement protocol.
#[derive(Debug, Clone)]
pub enum PbftMsg {
    /// Client → every replica: please order this update. The paper's
    /// Figure 5(a) shows updates flowing from the client directly to the
    /// whole primary tier.
    Request {
        /// Request identity (client + client seq).
        id: RequestId,
        /// The client's optimistic timestamp (guides ordering; §4.4.3).
        timestamp: u64,
        /// The update payload.
        payload: Payload,
        /// Client signature over the request digest.
        sig: Signature,
    },
    /// Leader → replicas: proposal to order `digest` at `seq` in `view`.
    PrePrepare {
        /// Current view.
        view: u64,
        /// Proposed agreement sequence number.
        seq: u64,
        /// Digest of the request payload.
        digest: Digest,
        /// Request identity.
        id: RequestId,
        /// Leader signature.
        sig: Signature,
    },
    /// Replica → all: I saw the proposal.
    Prepare {
        /// Current view.
        view: u64,
        /// Agreement sequence.
        seq: u64,
        /// Digest being prepared.
        digest: Digest,
        /// Index of the sending replica within the tier.
        replica: usize,
        /// Replica signature.
        sig: Signature,
    },
    /// Replica → all: a prepared certificate exists.
    Commit {
        /// Current view.
        view: u64,
        /// Agreement sequence.
        seq: u64,
        /// Digest being committed.
        digest: Digest,
        /// Index of the sending replica.
        replica: usize,
        /// Replica signature.
        sig: Signature,
    },
    /// Replica → client: your request executed at `seq`.
    Reply {
        /// Request identity this answers.
        id: RequestId,
        /// Final agreement sequence.
        seq: u64,
        /// Digest of the executed payload.
        digest: Digest,
        /// Index of the replying replica.
        replica: usize,
        /// Replica signature.
        sig: Signature,
    },
    /// Replica → all: the current leader is broken, move to `new_view`.
    ViewChange {
        /// Proposed view.
        new_view: u64,
        /// Highest sequence executed by the sender.
        last_exec: u64,
        /// Digests the sender holds prepared certificates for:
        /// `(seq, digest, request id)`.
        prepared: Vec<(u64, Digest, RequestId)>,
        /// Index of the sending replica.
        replica: usize,
        /// Replica signature.
        sig: Signature,
    },
    /// New leader → all: view `view` starts; re-proposals follow.
    NewView {
        /// The new view.
        view: u64,
        /// Index of the sending (new leader) replica.
        replica: usize,
        /// Leader signature.
        sig: Signature,
    },
}

impl Message for PbftMsg {
    fn wire_size(&self) -> usize {
        let sig = Signature::WIRE_SIZE;
        match self {
            PbftMsg::Request { payload, .. } => HEADER_SIZE + sig + payload.wire_len(),
            PbftMsg::PrePrepare { .. }
            | PbftMsg::Prepare { .. }
            | PbftMsg::Commit { .. }
            | PbftMsg::Reply { .. } => HEADER_SIZE + DIGEST_SIZE + sig,
            PbftMsg::ViewChange { prepared, .. } => {
                HEADER_SIZE + sig + prepared.len() * (8 + DIGEST_SIZE + 16)
            }
            PbftMsg::NewView { .. } => HEADER_SIZE + sig,
        }
    }

    fn class(&self) -> &'static str {
        match self {
            PbftMsg::Request { .. } => "pbft/request",
            PbftMsg::PrePrepare { .. } => "pbft/preprepare",
            PbftMsg::Prepare { .. } => "pbft/prepare",
            PbftMsg::Commit { .. } => "pbft/commit",
            PbftMsg::Reply { .. } => "pbft/reply",
            PbftMsg::ViewChange { .. } => "pbft/viewchange",
            PbftMsg::NewView { .. } => "pbft/newview",
        }
    }
}

/// Canonical signing bytes for each message kind (what the signature
/// covers).
pub fn signing_bytes(msg: &PbftMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match msg {
        PbftMsg::Request { id, timestamp, payload, .. } => {
            out.extend_from_slice(b"req");
            out.extend_from_slice(&(id.client.0 as u64).to_be_bytes());
            out.extend_from_slice(&id.seq.to_be_bytes());
            out.extend_from_slice(&timestamp.to_be_bytes());
            out.extend_from_slice(&payload.digest());
        }
        PbftMsg::PrePrepare { view, seq, digest, id, .. } => {
            out.extend_from_slice(b"ppr");
            out.extend_from_slice(&view.to_be_bytes());
            out.extend_from_slice(&seq.to_be_bytes());
            out.extend_from_slice(digest);
            out.extend_from_slice(&(id.client.0 as u64).to_be_bytes());
            out.extend_from_slice(&id.seq.to_be_bytes());
        }
        PbftMsg::Prepare { view, seq, digest, replica, .. } => {
            out.extend_from_slice(b"prp");
            out.extend_from_slice(&view.to_be_bytes());
            out.extend_from_slice(&seq.to_be_bytes());
            out.extend_from_slice(digest);
            out.extend_from_slice(&(*replica as u64).to_be_bytes());
        }
        PbftMsg::Commit { view, seq, digest, replica, .. } => {
            out.extend_from_slice(b"cmt");
            out.extend_from_slice(&view.to_be_bytes());
            out.extend_from_slice(&seq.to_be_bytes());
            out.extend_from_slice(digest);
            out.extend_from_slice(&(*replica as u64).to_be_bytes());
        }
        PbftMsg::Reply { id, seq, digest, replica, .. } => {
            out.extend_from_slice(b"rpl");
            out.extend_from_slice(&(id.client.0 as u64).to_be_bytes());
            out.extend_from_slice(&id.seq.to_be_bytes());
            out.extend_from_slice(&seq.to_be_bytes());
            out.extend_from_slice(digest);
            out.extend_from_slice(&(*replica as u64).to_be_bytes());
        }
        PbftMsg::ViewChange { new_view, last_exec, prepared, replica, .. } => {
            out.extend_from_slice(b"vch");
            out.extend_from_slice(&new_view.to_be_bytes());
            out.extend_from_slice(&last_exec.to_be_bytes());
            for (s, d, id) in prepared {
                out.extend_from_slice(&s.to_be_bytes());
                out.extend_from_slice(d);
                out.extend_from_slice(&(id.client.0 as u64).to_be_bytes());
                out.extend_from_slice(&id.seq.to_be_bytes());
            }
            out.extend_from_slice(&(*replica as u64).to_be_bytes());
        }
        PbftMsg::NewView { view, replica, .. } => {
            out.extend_from_slice(b"nvw");
            out.extend_from_slice(&view.to_be_bytes());
            out.extend_from_slice(&(*replica as u64).to_be_bytes());
        }
    }
    out
}

