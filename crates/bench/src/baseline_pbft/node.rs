//! Simulation node roles for agreement experiments: a network node is
//! either a tier replica, a client, or idle (pure router).

use oceanstore_sim::{Context, NodeId, Protocol};

use super::client::Client;
use super::messages::PbftMsg;
use super::replica::Replica;

/// A node in an agreement simulation.
#[derive(Debug)]
pub enum PbftNode {
    /// A primary-tier replica.
    Replica(Replica),
    /// An update-submitting client.
    Client(Client),
    /// A bystander (participates in the topology only).
    Idle,
}

impl PbftNode {
    /// The replica inside, if any.
    pub fn as_replica(&self) -> Option<&Replica> {
        match self {
            PbftNode::Replica(r) => Some(r),
            _ => None,
        }
    }

    /// Mutable replica access.
    pub fn as_replica_mut(&mut self) -> Option<&mut Replica> {
        match self {
            PbftNode::Replica(r) => Some(r),
            _ => None,
        }
    }

    /// The client inside, if any.
    pub fn as_client(&self) -> Option<&Client> {
        match self {
            PbftNode::Client(c) => Some(c),
            _ => None,
        }
    }

    /// Mutable client access.
    pub fn as_client_mut(&mut self) -> Option<&mut Client> {
        match self {
            PbftNode::Client(c) => Some(c),
            _ => None,
        }
    }
}

impl Protocol for PbftNode {
    type Msg = PbftMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, PbftMsg>, from: NodeId, msg: PbftMsg) {
        match self {
            PbftNode::Replica(r) => r.on_message(ctx, from, msg),
            PbftNode::Client(c) => c.on_message(ctx, from, msg),
            PbftNode::Idle => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, PbftMsg>, tag: u64) {
        match self {
            PbftNode::Replica(r) => r.on_timer(ctx, tag),
            PbftNode::Client(c) => c.on_timer(ctx, tag),
            PbftNode::Idle => {}
        }
    }
}
