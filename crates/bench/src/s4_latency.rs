//! S4: the §4.4.5 latency estimate — "there are six phases of messages in
//! the protocol we have described. Assuming latency of messages over the
//! wide area dominates computation time and that each message takes 100ms,
//! we have an approximate latency per update of less than a second."
//!
//! We measure end-to-end client-observed commit latency over a simulated
//! 100 ms-per-message WAN, across the paper's tier sizes. Our path has
//! five phases (request → pre-prepare → prepare → commit → reply) because
//! clients talk to the whole tier directly; the dissemination phase to
//! secondaries is the sixth, measured separately.

use oceanstore_consensus::harness::{build_tier, run_updates};
use oceanstore_replica::harness::{build_deployment, DeploymentOpts};
use oceanstore_sim::SimDuration;
use oceanstore_update::update::Action;
use oceanstore_update::Update;

/// One latency measurement.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Faults tolerated.
    pub m: usize,
    /// Tier size.
    pub n: usize,
    /// Mean client-observed commit latency (ms).
    pub commit_ms: f64,
    /// Mean latency until the root secondary has the certified update
    /// (adds the dissemination phase — the full "six phases").
    pub disseminated_ms: f64,
}

/// Runs the latency measurement with `updates` per tier size.
pub fn run(ms: &[usize], updates: usize, seed: u64) -> Vec<LatencyRow> {
    let wan = SimDuration::from_millis(100);
    let mut out = Vec::new();
    for &m in ms {
        // Client-observed commit latency from the pure consensus harness.
        let mut tier = build_tier(m, wan, seed);
        let run = run_updates(&mut tier, 4096, updates);
        let commit_ms = run.latencies.iter().map(|l| l.as_millis() as f64).sum::<f64>()
            / run.latencies.len() as f64;

        // Dissemination latency from the full two-tier deployment.
        let mut dep = build_deployment(&DeploymentOpts {
            m,
            secondaries: 3,
            clients: 1,
            latency: wan,
            ..DeploymentOpts::default()
        });
        let object = oceanstore_naming::guid::Guid::from_label(&format!("s4-{m}"));
        let update = Update::unconditional(vec![Action::Append { ciphertext: vec![0; 64] }]);
        let client = dep.clients[0];
        let start = dep.sim.now();
        dep.sim.with_node_ctx(client, |node, ctx| {
            node.as_client_mut().expect("client").submit(ctx, object, &update)
        });
        let root = dep.secondaries[0];
        let mut disseminated_ms = f64::NAN;
        for _ in 0..200 {
            dep.sim.run_for(SimDuration::from_millis(50));
            let done = dep
                .sim
                .node(root)
                .as_secondary()
                .expect("secondary")
                .committed_view(&object)
                .is_some_and(|d| d.version_number() >= 1);
            if done {
                disseminated_ms =
                    dep.sim.now().saturating_since(start).as_millis() as f64;
                break;
            }
        }
        out.push(LatencyRow { m, n: 3 * m + 1, commit_ms, disseminated_ms });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_a_second_as_the_paper_estimates() {
        let rows = run(&[2, 4], 2, 21);
        for r in &rows {
            assert_eq!(r.commit_ms, 500.0, "five 100ms phases: {r:?}");
            assert!(r.disseminated_ms < 1000.0, "six-ish phases < 1s: {r:?}");
            assert!(r.disseminated_ms >= r.commit_ms, "{r:?}");
        }
    }
}
