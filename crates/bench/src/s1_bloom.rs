//! S1: "A prototype for the probabilistic data location component has been
//! implemented and verified. Simulation results show that our algorithm
//! finds nearby objects with near-optimal efficiency." (§5)
//!
//! Measured as routing *stretch*: query hops divided by the BFS hop
//! distance from the query origin to the nearest replica, on random
//! geometric topologies, as a function of attenuated-filter depth.

use oceanstore_bloom::routing::{converge_filters, make_network, BloomConfig};
use oceanstore_naming::guid::Guid;
use oceanstore_sim::{NodeId, SimDuration, Simulator, Topology};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Result of one configuration.
#[derive(Debug, Clone)]
pub struct BloomStretchRow {
    /// Filter depth D.
    pub depth: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Objects (each with one replica).
    pub objects: usize,
    /// Queries issued (only those with the target within depth hops).
    pub in_range_queries: usize,
    /// Queries that found their object.
    pub found: usize,
    /// Mean stretch (query hops / optimal hops) over successful queries.
    pub mean_stretch: f64,
    /// Fraction of in-range queries that found the object.
    pub hit_rate: f64,
}

/// Runs the stretch measurement for each filter depth.
pub fn run(depths: &[usize], nodes: usize, objects: usize, queries: usize, seed: u64) -> Vec<BloomStretchRow> {
    let mut out = Vec::new();
    for &depth in depths {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let topo = Topology::random_geometric(nodes, 0.18, SimDuration::from_millis(20), &mut rng);
        let cfg = BloomConfig {
            depth,
            bits: 1 << 14,
            hashes: 4,
            advertise_interval: SimDuration::from_millis(200),
            query_ttl: 64,
        };
        let placements: Vec<(Guid, NodeId)> = (0..objects)
            .map(|i| {
                (Guid::from_label(&format!("s1-{seed}-{i}")), NodeId(rng.gen_range(0..nodes)))
            })
            .collect();
        let net = make_network(&topo, &cfg);
        let mut sim = Simulator::new(topo, net, seed ^ 0x5151);
        for (g, n) in &placements {
            sim.node_mut(*n).insert_object(*g);
        }
        sim.start();
        converge_filters(&mut sim, &cfg);

        let mut issued = 0usize;
        let mut found = 0usize;
        let mut stretch_sum = 0.0;
        let mut qid = 0u64;
        for _ in 0..queries {
            let (g, holder) = *placements[..].choose(&mut rng).expect("nonempty");
            let origin = NodeId(rng.gen_range(0..nodes));
            let optimal = sim.topology().hops(origin, holder).unwrap_or(u32::MAX);
            // A depth-D attenuated filter sees levels 0..D-1, i.e. objects
            // at most D-1 hops away; anything beyond is the global
            // algorithm's job.
            if optimal == 0 || optimal as usize >= depth {
                continue;
            }
            issued += 1;
            qid += 1;
            sim.with_node_ctx(origin, |n, ctx| n.start_query(ctx, qid, g));
            sim.run_for(SimDuration::from_secs(3));
            if let Some(o) = sim.node(origin).outcome(qid) {
                if o.found_at.is_some() {
                    found += 1;
                    stretch_sum += o.hops as f64 / optimal as f64;
                }
            }
        }
        out.push(BloomStretchRow {
            depth,
            nodes,
            objects,
            in_range_queries: issued,
            found,
            mean_stretch: if found == 0 { f64::NAN } else { stretch_sum / found as f64 },
            hit_rate: if issued == 0 { 0.0 } else { found as f64 / issued as f64 },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_optimal_for_in_range_objects() {
        let rows = run(&[3], 48, 24, 120, 7);
        let r = &rows[0];
        assert!(r.in_range_queries > 15, "need in-range queries: {r:?}");
        // Hill-climbing is greedy: a few dead-ends are expected, but the
        // bulk of in-range queries must succeed at near-optimal cost.
        assert!(r.hit_rate > 0.75, "{r:?}");
        assert!(r.mean_stretch < 1.6, "near-optimal claim: {r:?}");
    }
}
