//! Experiment kernels regenerating every quantitative figure and table of
//! the OceanStore paper, plus the measurable §5 status claims. See
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results. The `report` binary prints all tables.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod baseline;
pub mod baseline_pbft;
pub mod fig6;
pub mod s1_bloom;
pub mod s2_plaxton;
pub mod s3_fragments;
pub mod s4_latency;
pub mod s5_prefetch;
pub mod table1;
