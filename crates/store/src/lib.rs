//! Pluggable content-addressed blob stores (§4.5's "promiscuous caching"
//! made concrete).
//!
//! The paper stores objects as content-addressed, erasure-coded data
//! spread over "untrusted infrastructure" — any server may hold any block,
//! and blocks name themselves: a GUID for immutable data "is a secure hash
//! over the data it holds". This crate is that storage layer. A CID is
//! exactly [`Guid::for_content`] of the blob, so every backend can verify
//! what it serves and a reader can never be handed the wrong bytes
//! silently.
//!
//! * [`BlobStore`] — the four-verb trait (`put`/`get`/`has`/`delete`)
//!   every backend implements.
//! * [`MemoryStore`] — the in-RAM map the repo always had; the default
//!   backend, bit-identical to the pre-trait behaviour.
//! * [`DirStore`] — an on-disk directory store: two-hex-digit fan-out
//!   subdirectories, write-temp-then-rename atomicity (a crash between
//!   the two steps leaves no torn blob visible), CID verification on
//!   every read.
//! * [`SimRemoteStore`] — a simulated remote provider with seeded,
//!   deterministic failure injection and accounted service latency, so
//!   chaos schedules can kill a provider mid-run and assert reads
//!   survive via replicas.
//! * [`DedupStore`] — block-level dedup: refcounted CIDs, counters for
//!   dedup hits and bytes saved; a blob survives until its last
//!   reference drops.
//! * [`ShardedStore`] — a composite routing each CID by hash range
//!   (`00-7f → shard A, 80-ff → shard B`), the multi-provider layout of
//!   the "provider independence" story.
//! * [`SharedStore`] — an `Arc<Mutex<_>>` handle so several simulated
//!   nodes can address one provider while the chaos harness keeps a
//!   handle with which to fail it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dedup;
pub mod dir;
pub mod memory;
pub mod remote;
#[cfg(feature = "compress")]
pub mod rle;
pub mod shard;

use std::fmt;

use oceanstore_naming::guid::Guid;

pub use dedup::DedupStore;
pub use dir::DirStore;
pub use memory::MemoryStore;
pub use remote::SimRemoteStore;
pub use shard::{shard_of, ShardedStore, SharedStore};

/// Computes the content identifier of a blob: the secure-hash GUID of its
/// bytes. Every backend stores and serves blobs under this name and
/// nothing else.
pub fn cid_of(data: &[u8]) -> Guid {
    Guid::for_content(data)
}

/// Why a blob-store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The stored bytes do not hash to the requested CID: disk
    /// corruption, a torn write that escaped the rename barrier, or a
    /// malicious provider. The blob is treated as absent.
    Corrupt {
        /// The CID the caller asked for.
        want: Guid,
        /// The CID the stored bytes actually hash to.
        got: Guid,
    },
    /// The provider refused or dropped the operation (simulated remote
    /// failure, or the provider is down entirely).
    Unavailable,
    /// An underlying filesystem operation failed.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Corrupt { want, got } => {
                write!(f, "blob corrupt: want {want}, stored bytes hash to {got}")
            }
            StoreError::Unavailable => write!(f, "store unavailable"),
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
        }
    }
}

/// Running operation counters every backend keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Blobs currently stored.
    pub blobs: u64,
    /// Bytes currently stored (logical, pre-compression).
    pub bytes: u64,
    /// Completed `put` operations that wrote a new blob.
    pub puts: u64,
    /// Completed `get` operations that returned bytes.
    pub gets: u64,
    /// Operations refused by failure injection or a dead provider.
    pub denied: u64,
    /// Total injected service latency, microseconds (simulated remote
    /// stores account latency deterministically rather than scheduling
    /// it; see [`SimRemoteStore`]).
    pub injected_latency_us: u64,
}

/// A content-addressed blob store.
///
/// All methods take `&mut self`: disk-backed stores update counters and
/// simulated remotes draw from a seeded RNG on every operation, and the
/// uniform signature keeps composite stores ([`DedupStore`],
/// [`ShardedStore`]) trivial.
pub trait BlobStore: fmt::Debug + Send {
    /// Stores `data` under its CID and returns that CID. Storing bytes
    /// that are already present is a cheap no-op (content-addressing
    /// makes it idempotent by construction).
    fn put(&mut self, data: &[u8]) -> Result<Guid, StoreError>;

    /// Fetches the blob named `cid`. `Ok(None)` means provably absent;
    /// [`StoreError::Corrupt`] means bytes were found but fail
    /// verification.
    fn get(&mut self, cid: &Guid) -> Result<Option<Vec<u8>>, StoreError>;

    /// Whether a blob named `cid` is present (no verification).
    fn has(&mut self, cid: &Guid) -> bool;

    /// Removes the blob named `cid`; returns whether it was present.
    fn delete(&mut self, cid: &Guid) -> Result<bool, StoreError>;

    /// Point-in-time operation counters.
    fn stats(&self) -> StoreStats;
}

/// Which backend [`default_store`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// In-memory map (the default; bit-identical to pre-trait behaviour).
    Memory,
    /// On-disk directory store in a fresh per-store directory under
    /// `$OCEANSTORE_STORE_DIR` (or the system temp dir), removed when the
    /// store is dropped.
    Dir,
}

impl BackendKind {
    /// Reads the backend selection from `OCEANSTORE_STORE_BACKEND`
    /// (`memory` | `dir`; anything else, including unset, means memory).
    /// This is how the CI store-backend matrix re-runs the replica and
    /// archival suites against the disk backend without touching any
    /// call site.
    pub fn from_env() -> Self {
        match std::env::var("OCEANSTORE_STORE_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("dir") => BackendKind::Dir,
            _ => BackendKind::Memory,
        }
    }

    /// Opens a fresh store of this kind.
    pub fn open(self) -> Box<dyn BlobStore> {
        match self {
            BackendKind::Memory => Box::new(MemoryStore::new()),
            BackendKind::Dir => Box::new(DirStore::new_ephemeral()),
        }
    }
}

/// Opens the environment-selected backend (see [`BackendKind::from_env`]).
/// Every node-local store in the replica and archival tiers goes through
/// this, so one environment variable swaps the whole deployment's storage
/// layer.
pub fn default_store() -> Box<dyn BlobStore> {
    BackendKind::from_env().open()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises the trait contract shared by every backend.
    pub(crate) fn contract(store: &mut dyn BlobStore) {
        let a = store.put(b"alpha").unwrap();
        assert_eq!(a, cid_of(b"alpha"));
        assert!(store.has(&a));
        assert_eq!(store.get(&a).unwrap().as_deref(), Some(b"alpha".as_ref()));
        // Idempotent re-put.
        assert_eq!(store.put(b"alpha").unwrap(), a);
        // Absent CID.
        let ghost = cid_of(b"ghost");
        assert!(!store.has(&ghost));
        assert_eq!(store.get(&ghost).unwrap(), None);
        assert!(!store.delete(&ghost).unwrap());
        // Delete round-trip. A dedup layer counts the re-put above as a
        // second reference, so drain references until the blob is gone.
        assert!(store.delete(&a).unwrap());
        while store.has(&a) {
            assert!(store.delete(&a).unwrap());
        }
        assert_eq!(store.get(&a).unwrap(), None);
        assert!(!store.delete(&a).unwrap());
    }

    #[test]
    fn memory_contract() {
        contract(&mut MemoryStore::new());
    }

    #[test]
    fn dir_contract() {
        contract(&mut DirStore::new_ephemeral());
    }

    #[test]
    fn remote_contract() {
        contract(&mut SimRemoteStore::new(7, 150, 0.0));
    }

    #[test]
    fn dedup_contract() {
        contract(&mut DedupStore::new(Box::new(MemoryStore::new())));
    }

    #[test]
    fn sharded_contract() {
        contract(&mut ShardedStore::new(vec![
            Box::new(MemoryStore::new()),
            Box::new(MemoryStore::new()),
        ]));
    }

    #[test]
    fn backend_kind_defaults_to_memory() {
        // The env var is absent in the test harness unless a CI matrix
        // leg sets it; either way `open` must produce a working store.
        let mut store = BackendKind::from_env().open();
        let cid = store.put(b"env-selected").unwrap();
        assert_eq!(store.get(&cid).unwrap().as_deref(), Some(b"env-selected".as_ref()));
    }
}
