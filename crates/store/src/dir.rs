//! The on-disk directory backend.
//!
//! Layout mirrors classic content-addressed stores (git's object
//! database, Venti's arenas): a blob named by 40-hex-digit CID lives at
//! `<root>/<first two hex digits>/<full hex>`, so no single directory
//! grows past 1/256 of the blob population. Writes go to a private file
//! under `<root>/tmp/` first and are moved into place with `rename`, the
//! one primitive POSIX makes atomic — a crash between the two steps
//! leaves garbage in `tmp/` (swept on the next open) but never a torn
//! blob at a CID path. Reads re-hash the bytes and refuse to return
//! anything that does not match its name: on an untrusted disk, "the
//! data is retrieved correctly and completely, or not at all".

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use oceanstore_naming::guid::Guid;

use crate::{cid_of, BlobStore, StoreError, StoreStats};

/// Distinguishes concurrently open stores (and their temp files) within
/// one process.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

/// An on-disk content-addressed store rooted at a directory.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
    /// Remove the whole tree on drop (ephemeral per-run stores).
    ephemeral: bool,
    /// Monotonic temp-file sequence (uniqueness within this store).
    tmp_seq: u64,
    stats: StoreStats,
}

impl DirStore {
    /// Opens (creating if needed) a persistent store at `root`. Existing
    /// blobs are counted into the stats; leftover temp files from a
    /// previous crash are swept.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating or scanning the tree.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(root.join("tmp")).map_err(io_err)?;
        let mut stats = StoreStats::default();
        for sub in fs::read_dir(&root).map_err(io_err)? {
            let sub = sub.map_err(io_err)?;
            if !sub.file_type().map_err(io_err)?.is_dir()
                || sub.file_name().to_string_lossy() == "tmp"
            {
                continue;
            }
            for f in fs::read_dir(sub.path()).map_err(io_err)? {
                let meta = f.map_err(io_err)?.metadata().map_err(io_err)?;
                stats.blobs += 1;
                stats.bytes += meta.len();
            }
        }
        // A torn write from a crashed predecessor is invisible (it never
        // reached a CID path); reclaim the space.
        for f in fs::read_dir(root.join("tmp")).map_err(io_err)? {
            let _ = fs::remove_file(f.map_err(io_err)?.path());
        }
        Ok(DirStore { root, ephemeral: false, tmp_seq: 0, stats })
    }

    /// Creates a store in a fresh uniquely named directory under
    /// `$OCEANSTORE_STORE_DIR` (or the system temp dir), removed when the
    /// store is dropped. This is what the `dir` backend of
    /// [`crate::default_store`] hands to every node.
    pub fn new_ephemeral() -> Self {
        let base = std::env::var_os("OCEANSTORE_STORE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let unique = format!(
            "oceanstore-store-{}-{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let mut store = DirStore::open(base.join(unique)).expect("create ephemeral store dir");
        store.ephemeral = true;
        store
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn blob_path(&self, cid: &Guid) -> PathBuf {
        let hex = cid.to_hex();
        self.root.join(&hex[..2]).join(hex)
    }

    /// Encodes logical bytes into the on-disk file format.
    fn encode(data: &[u8]) -> Vec<u8> {
        #[cfg(feature = "compress")]
        {
            crate::rle::compress(data)
        }
        #[cfg(not(feature = "compress"))]
        {
            data.to_vec()
        }
    }

    /// Decodes an on-disk file back into logical bytes.
    fn decode(raw: Vec<u8>) -> Result<Vec<u8>, StoreError> {
        #[cfg(feature = "compress")]
        {
            crate::rle::decompress(&raw)
                .ok_or_else(|| StoreError::Io("undecodable compressed blob".into()))
        }
        #[cfg(not(feature = "compress"))]
        {
            Ok(raw)
        }
    }

    /// First phase of a put: the temp-file write, without the rename that
    /// publishes it. Exposed so the crash-atomicity tests can model a
    /// kill between the two steps; production code always goes through
    /// [`BlobStore::put`].
    #[doc(hidden)]
    pub fn put_torn(&mut self, data: &[u8]) -> Result<(Guid, PathBuf), StoreError> {
        let cid = cid_of(data);
        self.tmp_seq += 1;
        let tmp = self.root.join("tmp").join(format!("{}-{}.tmp", cid.to_hex(), self.tmp_seq));
        let mut f = fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(&Self::encode(data)).map_err(io_err)?;
        Ok((cid, tmp))
    }
}

impl Drop for DirStore {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = fs::remove_dir_all(&self.root);
        }
    }
}

impl BlobStore for DirStore {
    fn put(&mut self, data: &[u8]) -> Result<Guid, StoreError> {
        let cid = cid_of(data);
        let path = self.blob_path(&cid);
        if path.exists() {
            return Ok(cid); // content-addressed: already durable
        }
        let (_, tmp) = self.put_torn(data)?;
        fs::create_dir_all(path.parent().expect("fan-out parent")).map_err(io_err)?;
        fs::rename(&tmp, &path).map_err(io_err)?;
        self.stats.blobs += 1;
        self.stats.bytes += data.len() as u64;
        self.stats.puts += 1;
        Ok(cid)
    }

    fn get(&mut self, cid: &Guid) -> Result<Option<Vec<u8>>, StoreError> {
        let raw = match fs::read(self.blob_path(cid)) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(e)),
        };
        let data = Self::decode(raw)?;
        let got = cid_of(&data);
        if got != *cid {
            return Err(StoreError::Corrupt { want: *cid, got });
        }
        self.stats.gets += 1;
        Ok(Some(data))
    }

    fn has(&mut self, cid: &Guid) -> bool {
        self.blob_path(cid).exists()
    }

    fn delete(&mut self, cid: &Guid) -> Result<bool, StoreError> {
        let path = self.blob_path(cid);
        match fs::metadata(&path) {
            Ok(meta) => {
                fs::remove_file(&path).map_err(io_err)?;
                self.stats.blobs = self.stats.blobs.saturating_sub(1);
                // `meta.len()` is the on-disk (possibly compressed) size;
                // without compression it equals the logical size.
                self.stats.bytes = self.stats.bytes.saturating_sub(meta.len());
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err(e)),
        }
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survives_reopen() {
        let store = DirStore::new_ephemeral();
        let root = store.root().to_path_buf();
        // Keep the tree alive past the first handle: open persistently.
        let mut s1 = DirStore::open(&root).unwrap();
        let cid = s1.put(b"durable bytes").unwrap();
        drop(s1);
        let mut s2 = DirStore::open(&root).unwrap();
        assert_eq!(s2.stats().blobs, 1);
        assert_eq!(s2.get(&cid).unwrap().as_deref(), Some(b"durable bytes".as_ref()));
        drop(store); // ephemeral cleanup
    }

    #[test]
    fn crash_between_temp_write_and_rename_leaves_no_torn_blob() {
        let store = DirStore::new_ephemeral();
        let root = store.root().to_path_buf();
        let mut s1 = DirStore::open(&root).unwrap();
        // The "crash": the temp file is written, the rename never runs.
        let (cid, tmp) = s1.put_torn(b"half-written").unwrap();
        assert!(tmp.exists());
        drop(s1);
        // Recovery: the blob is simply absent — no CID path exists, `has`
        // and `get` agree, and the orphaned temp file is swept on open.
        let mut s2 = DirStore::open(&root).unwrap();
        assert!(!s2.has(&cid));
        assert_eq!(s2.get(&cid).unwrap(), None);
        assert_eq!(s2.stats().blobs, 0);
        assert!(!tmp.exists(), "orphaned temp file swept on open");
        // And the same bytes can be stored cleanly afterwards.
        assert_eq!(s2.put(b"half-written").unwrap(), cid);
        assert_eq!(s2.get(&cid).unwrap().as_deref(), Some(b"half-written".as_ref()));
    }

    #[test]
    fn cid_mismatch_on_read_is_rejected() {
        let mut store = DirStore::new_ephemeral();
        let cid = store.put(b"honest bytes").unwrap();
        // Corrupt the stored file in place (bit rot / malicious disk).
        let path = store.blob_path(&cid);
        let evil = DirStore::encode(b"evil bytes!!");
        fs::write(&path, evil).unwrap();
        match store.get(&cid) {
            Err(StoreError::Corrupt { want, got }) => {
                assert_eq!(want, cid);
                assert_eq!(got, cid_of(b"evil bytes!!"));
            }
            other => panic!("corruption must be detected, got {other:?}"),
        }
    }

    #[test]
    fn fan_out_uses_first_two_hex_digits() {
        let mut store = DirStore::new_ephemeral();
        let cid = store.put(b"where am i").unwrap();
        let hex = cid.to_hex();
        let path = store.blob_path(&cid);
        assert!(path.ends_with(Path::new(&hex[..2]).join(&hex)));
        assert!(path.exists());
    }

    #[test]
    fn ephemeral_store_cleans_up_after_itself() {
        let mut store = DirStore::new_ephemeral();
        store.put(b"transient").unwrap();
        let root = store.root().to_path_buf();
        assert!(root.exists());
        drop(store);
        assert!(!root.exists());
    }

    #[cfg(feature = "compress")]
    #[test]
    fn compressed_files_round_trip_and_shrink_runs() {
        let mut store = DirStore::new_ephemeral();
        let data = vec![0x42u8; 4096];
        let cid = store.put(&data).unwrap();
        assert_eq!(store.get(&cid).unwrap().as_deref(), Some(data.as_slice()));
        let on_disk = fs::metadata(store.blob_path(&cid)).unwrap().len();
        assert!(on_disk < 128, "4 KiB run must compress, stored {on_disk} bytes");
    }
}
