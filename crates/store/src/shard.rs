//! Hash-range sharding across independent stores, and the shared-handle
//! wrapper that lets several simulated nodes address one provider.
//!
//! [`ShardedStore`] is the storage-layer sibling of the replica tier's
//! `ShardRouter`: a pure function of the CID decides the owning shard,
//! so every node computes the same placement with no coordination. Where
//! the ring router mixes the GUID through splitmix64 (object GUIDs are
//! owner-key hashes whose distribution shouldn't be trusted), CIDs are
//! already uniform secure hashes, so the range split reads directly off
//! the first byte: with two shards, `00-7f → A` and `80-ff → B`.

use std::sync::Arc;

use parking_lot::Mutex;

use oceanstore_naming::guid::Guid;

use crate::{cid_of, BlobStore, StoreError, StoreStats};

/// The owning shard of `cid` among `n`: the first byte of the CID scaled
/// into `0..n`. Total (every CID maps somewhere), stable (pure function
/// of the bytes), and contiguous in hash ranges — with `n = 2` this is
/// exactly `00-7f → 0`, `80-ff → 1`.
pub fn shard_of(cid: &Guid, n: usize) -> usize {
    debug_assert!(n > 0, "a sharded store needs at least one shard");
    (cid.as_bytes()[0] as usize * n) >> 8
}

/// A composite store routing each CID to one of several shards.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Box<dyn BlobStore>>,
}

impl ShardedStore {
    /// A sharded store over the given backends (hash ranges split evenly
    /// in shard order).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<Box<dyn BlobStore>>) -> Self {
        assert!(!shards.is_empty(), "a sharded store needs at least one shard");
        ShardedStore { shards }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&mut self, cid: &Guid) -> &mut dyn BlobStore {
        let i = shard_of(cid, self.shards.len());
        self.shards[i].as_mut()
    }
}

impl BlobStore for ShardedStore {
    fn put(&mut self, data: &[u8]) -> Result<Guid, StoreError> {
        let cid = cid_of(data);
        self.shard_for(&cid).put(data)
    }

    fn get(&mut self, cid: &Guid) -> Result<Option<Vec<u8>>, StoreError> {
        self.shard_for(cid).get(cid)
    }

    fn has(&mut self, cid: &Guid) -> bool {
        self.shard_for(cid).has(cid)
    }

    fn delete(&mut self, cid: &Guid) -> Result<bool, StoreError> {
        self.shard_for(cid).delete(cid)
    }

    fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for s in &self.shards {
            let st = s.stats();
            total.blobs += st.blobs;
            total.bytes += st.bytes;
            total.puts += st.puts;
            total.gets += st.gets;
            total.denied += st.denied;
            total.injected_latency_us += st.injected_latency_us;
        }
        total
    }
}

/// A cloneable handle to a store shared by several owners — in the sim,
/// many nodes writing to one provider while the chaos harness keeps a
/// handle with which to kill it.
#[derive(Debug)]
pub struct SharedStore<S: BlobStore>(Arc<Mutex<S>>);

impl<S: BlobStore> Clone for SharedStore<S> {
    fn clone(&self) -> Self {
        SharedStore(Arc::clone(&self.0))
    }
}

impl<S: BlobStore> SharedStore<S> {
    /// Wraps `store` for sharing.
    pub fn new(store: S) -> Self {
        SharedStore(Arc::new(Mutex::new(store)))
    }

    /// Runs `f` with exclusive access to the wrapped store (e.g. to flip
    /// a provider's failure switch).
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.0.lock())
    }
}

impl<S: BlobStore> BlobStore for SharedStore<S> {
    fn put(&mut self, data: &[u8]) -> Result<Guid, StoreError> {
        self.0.lock().put(data)
    }

    fn get(&mut self, cid: &Guid) -> Result<Option<Vec<u8>>, StoreError> {
        self.0.lock().get(cid)
    }

    fn has(&mut self, cid: &Guid) -> bool {
        self.0.lock().has(cid)
    }

    fn delete(&mut self, cid: &Guid) -> Result<bool, StoreError> {
        self.0.lock().delete(cid)
    }

    fn stats(&self) -> StoreStats {
        self.0.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryStore, SimRemoteStore};

    #[test]
    fn two_shard_ranges_are_pinned() {
        // 0x00..=0x7f → shard 0 (A); 0x80..=0xff → shard 1 (B).
        for b0 in 0u16..=255 {
            let mut bytes = [0u8; 20];
            bytes[0] = b0 as u8;
            let cid = Guid::from_bytes(bytes);
            let want = usize::from(b0 >= 0x80);
            assert_eq!(shard_of(&cid, 2), want, "first byte {b0:#04x}");
        }
    }

    #[test]
    fn routing_places_each_blob_in_exactly_one_shard() {
        let mut s = ShardedStore::new(vec![
            Box::new(MemoryStore::new()),
            Box::new(MemoryStore::new()),
        ]);
        let mut cids = Vec::new();
        for i in 0..64u32 {
            cids.push(s.put(format!("blob-{i}").as_bytes()).unwrap());
        }
        let total = s.stats();
        assert_eq!(total.blobs, 64);
        for cid in &cids {
            assert!(s.has(cid));
            assert!(s.get(cid).unwrap().is_some());
        }
        // Both ranges must actually be populated at this sample size.
        assert!(s.shards[0].stats().blobs > 0, "range 00-7f empty");
        assert!(s.shards[1].stats().blobs > 0, "range 80-ff empty");
    }

    #[test]
    fn dead_shard_fails_only_its_own_range() {
        let a = SharedStore::new(SimRemoteStore::new(1, 0, 0.0));
        let b = SharedStore::new(SimRemoteStore::new(2, 0, 0.0));
        let mut s = ShardedStore::new(vec![Box::new(a.clone()), Box::new(b.clone())]);
        let mut cids = Vec::new();
        for i in 0..64u32 {
            cids.push(s.put(format!("ranged-{i}").as_bytes()).unwrap());
        }
        a.with(|p| p.set_down(true));
        let (mut lost, mut served) = (0, 0);
        for cid in &cids {
            match s.get(cid) {
                Ok(Some(_)) => served += 1,
                Err(StoreError::Unavailable) => {
                    assert_eq!(shard_of(cid, 2), 0, "only range A may fail");
                    lost += 1;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(lost + served, 64);
        assert!(lost > 0 && served > 0);
    }

    #[test]
    fn shared_handle_sees_one_store() {
        let shared = SharedStore::new(MemoryStore::new());
        let mut h1 = shared.clone();
        let mut h2 = shared.clone();
        let cid = h1.put(b"one copy").unwrap();
        assert!(h2.has(&cid));
        assert_eq!(shared.with(|s| s.stats().blobs), 1);
    }
}
