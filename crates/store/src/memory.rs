//! The in-memory backend: the plain map the replica and archival tiers
//! always used, now behind the [`BlobStore`] trait. This is the default
//! backend and must stay bit-identical in behaviour — it never fails, and
//! it performs no verification on read because the bytes never left RAM.

use std::collections::HashMap;
use std::sync::Arc;

use oceanstore_naming::guid::Guid;

use crate::{cid_of, BlobStore, StoreError, StoreStats};

/// An in-RAM content-addressed store.
#[derive(Debug, Default)]
pub struct MemoryStore {
    blobs: HashMap<Guid, Arc<Vec<u8>>>,
    stats: StoreStats,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        MemoryStore::default()
    }
}

impl BlobStore for MemoryStore {
    fn put(&mut self, data: &[u8]) -> Result<Guid, StoreError> {
        let cid = cid_of(data);
        if self.blobs.insert(cid, Arc::new(data.to_vec())).is_none() {
            self.stats.blobs += 1;
            self.stats.bytes += data.len() as u64;
            self.stats.puts += 1;
        }
        Ok(cid)
    }

    fn get(&mut self, cid: &Guid) -> Result<Option<Vec<u8>>, StoreError> {
        match self.blobs.get(cid) {
            Some(b) => {
                self.stats.gets += 1;
                Ok(Some(b.as_ref().clone()))
            }
            None => Ok(None),
        }
    }

    fn has(&mut self, cid: &Guid) -> bool {
        self.blobs.contains_key(cid)
    }

    fn delete(&mut self, cid: &Guid) -> Result<bool, StoreError> {
        match self.blobs.remove(cid) {
            Some(b) => {
                self.stats.blobs -= 1;
                self.stats.bytes -= b.len() as u64;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_contents() {
        let mut s = MemoryStore::new();
        s.put(b"aaaa").unwrap();
        s.put(b"bbbbbb").unwrap();
        s.put(b"aaaa").unwrap(); // idempotent: no double count
        assert_eq!(s.stats().blobs, 2);
        assert_eq!(s.stats().bytes, 10);
        s.delete(&cid_of(b"aaaa")).unwrap();
        assert_eq!(s.stats().blobs, 1);
        assert_eq!(s.stats().bytes, 6);
    }
}
