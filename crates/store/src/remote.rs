//! The simulated remote backend: an untrusted storage *provider*.
//!
//! OceanStore's "utility model" assumes data lives with providers you do
//! not control — they fail, they throttle, and sometimes they disappear
//! entirely; the design survives because "any server may create a local
//! replica of any data object" and archival fragments cover the rest.
//! [`SimRemoteStore`] models a provider deterministically: every
//! operation draws from a seeded RNG to decide whether the provider
//! drops it, accounts a fixed per-operation service latency, and a
//! chaos schedule can flip the whole provider dead mid-run with
//! [`SimRemoteStore::set_down`].
//!
//! Latency is *accounted, not scheduled*: the sim's discrete-event clock
//! ticks only on messages and timers, and blob operations are node-local
//! state, so injecting real delays would perturb every pinned schedule.
//! Instead the store accumulates `injected_latency_us` deterministically,
//! which benches and oracles read as the provider's service-time bill.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use oceanstore_naming::guid::Guid;

use crate::{BlobStore, MemoryStore, StoreError, StoreStats};

/// A provider-style store with seeded failure injection.
#[derive(Debug)]
pub struct SimRemoteStore {
    inner: MemoryStore,
    rng: ChaCha8Rng,
    /// Per-operation service latency, microseconds (accounted).
    latency_us: u64,
    /// Probability an operation is dropped while the provider is up.
    fail_prob: f64,
    /// The provider has been killed outright.
    down: bool,
    /// Operations refused (injection or outage).
    denied: u64,
    /// Accounted service latency, microseconds.
    injected_latency_us: u64,
}

impl SimRemoteStore {
    /// A provider seeded with `seed`, charging `latency_us` per operation
    /// and dropping each operation with probability `fail_prob`.
    pub fn new(seed: u64, latency_us: u64, fail_prob: f64) -> Self {
        SimRemoteStore {
            inner: MemoryStore::new(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x6f63_6561_6e5f_7374), // "ocean_st"
            latency_us,
            fail_prob,
            down: false,
            denied: 0,
            injected_latency_us: 0,
        }
    }

    /// Kills or revives the provider. While down, every operation
    /// returns [`StoreError::Unavailable`] (and counts as denied); the
    /// stored blobs survive a revival, like a provider outage rather
    /// than data loss.
    pub fn set_down(&mut self, down: bool) {
        self.down = down;
    }

    /// Whether the provider is currently down.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Charges latency and draws the failure coin for one operation.
    fn admit(&mut self) -> Result<(), StoreError> {
        if self.down {
            self.denied += 1;
            return Err(StoreError::Unavailable);
        }
        // Deterministic draw even when fail_prob is 0 (keeps the RNG
        // stream independent of the configured probability).
        let coin: f64 = self.rng.gen_range(0.0..1.0);
        self.injected_latency_us += self.latency_us;
        if coin < self.fail_prob {
            self.denied += 1;
            return Err(StoreError::Unavailable);
        }
        Ok(())
    }
}

impl BlobStore for SimRemoteStore {
    fn put(&mut self, data: &[u8]) -> Result<Guid, StoreError> {
        self.admit()?;
        self.inner.put(data)
    }

    fn get(&mut self, cid: &Guid) -> Result<Option<Vec<u8>>, StoreError> {
        self.admit()?;
        self.inner.get(cid)
    }

    fn has(&mut self, cid: &Guid) -> bool {
        if self.down {
            return false;
        }
        self.inner.has(cid)
    }

    fn delete(&mut self, cid: &Guid) -> Result<bool, StoreError> {
        self.admit()?;
        self.inner.delete(cid)
    }

    fn stats(&self) -> StoreStats {
        let mut st = self.inner.stats();
        st.denied += self.denied;
        st.injected_latency_us += self.injected_latency_us;
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cid_of;

    #[test]
    fn down_provider_denies_everything_but_keeps_data() {
        let mut s = SimRemoteStore::new(1, 250, 0.0);
        let cid = s.put(b"survives outage").unwrap();
        s.set_down(true);
        assert_eq!(s.get(&cid), Err(StoreError::Unavailable));
        assert_eq!(s.put(b"new"), Err(StoreError::Unavailable));
        assert!(!s.has(&cid));
        assert!(s.stats().denied >= 2);
        s.set_down(false);
        assert_eq!(s.get(&cid).unwrap().as_deref(), Some(b"survives outage".as_ref()));
    }

    #[test]
    fn latency_is_accounted_per_operation() {
        let mut s = SimRemoteStore::new(2, 300, 0.0);
        let cid = s.put(b"x").unwrap();
        s.get(&cid).unwrap();
        s.get(&cid).unwrap();
        assert_eq!(s.stats().injected_latency_us, 900);
    }

    #[test]
    fn failure_injection_is_seeded_and_deterministic() {
        let run = |seed: u64| {
            let mut s = SimRemoteStore::new(seed, 0, 0.3);
            let mut outcomes = Vec::new();
            for i in 0..64u32 {
                outcomes.push(s.put(&i.to_le_bytes()).is_ok());
            }
            outcomes
        };
        assert_eq!(run(7), run(7), "same seed, same failure pattern");
        assert_ne!(run(7), run(8), "different seeds diverge");
        let denied = run(7).iter().filter(|ok| !**ok).count();
        assert!(denied > 5 && denied < 40, "~30% injected failures, got {denied}/64");
    }

    #[test]
    fn failed_put_is_retryable() {
        let mut s = SimRemoteStore::new(3, 0, 0.5);
        let data = b"eventually stored";
        let cid = cid_of(data);
        let mut attempts = 0;
        loop {
            attempts += 1;
            if s.put(data).is_ok() {
                break;
            }
            assert!(attempts < 100, "seeded coin must eventually land");
        }
        assert!(s.has(&cid));
    }
}
