//! Block-level dedup: refcounted CIDs over any inner backend.
//!
//! Content addressing makes dedup structural — two owners storing the
//! same bytes name the same blob — but deletion then needs reference
//! counting: an object dropping its copy must not destroy another
//! object's. [`DedupStore`] keeps the refcounts (always in RAM: they are
//! index state, not blob state) and forwards to the inner store only on
//! the first put and the last delete, counting every elided write as a
//! dedup hit with its bytes saved.

use std::collections::HashMap;

use oceanstore_naming::guid::Guid;

use crate::{cid_of, BlobStore, StoreError, StoreStats};

/// Dedup counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Puts elided because the blob was already referenced.
    pub hits: u64,
    /// Bytes those elided puts would have written.
    pub bytes_saved: u64,
    /// Total logical bytes put (including elided puts).
    pub logical_bytes: u64,
    /// Live CIDs (refcount > 0).
    pub live_cids: u64,
}

impl DedupStats {
    /// Logical-to-stored ratio; 1.0 when nothing deduplicated.
    pub fn ratio(&self) -> f64 {
        let stored = self.logical_bytes.saturating_sub(self.bytes_saved);
        if stored == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / stored as f64
        }
    }
}

/// A refcounting dedup layer over an inner [`BlobStore`].
#[derive(Debug)]
pub struct DedupStore {
    inner: Box<dyn BlobStore>,
    refs: HashMap<Guid, u64>,
    dedup: DedupStats,
}

impl DedupStore {
    /// Wraps `inner` with refcounted dedup.
    pub fn new(inner: Box<dyn BlobStore>) -> Self {
        DedupStore { inner, refs: HashMap::new(), dedup: DedupStats::default() }
    }

    /// Dedup counters.
    pub fn dedup_stats(&self) -> DedupStats {
        self.dedup
    }

    /// Current reference count of `cid`.
    pub fn refcount(&self, cid: &Guid) -> u64 {
        self.refs.get(cid).copied().unwrap_or(0)
    }

    /// The wrapped backend (e.g. to reach a provider's failure switch).
    pub fn inner_mut(&mut self) -> &mut dyn BlobStore {
        self.inner.as_mut()
    }
}

impl BlobStore for DedupStore {
    fn put(&mut self, data: &[u8]) -> Result<Guid, StoreError> {
        let cid = cid_of(data);
        self.dedup.logical_bytes += data.len() as u64;
        if let Some(rc) = self.refs.get_mut(&cid) {
            *rc += 1;
            self.dedup.hits += 1;
            self.dedup.bytes_saved += data.len() as u64;
            return Ok(cid);
        }
        // First reference: the inner put must succeed before the
        // reference exists, else a failed provider write would strand a
        // refcount with no blob behind it.
        self.inner.put(data)?;
        self.refs.insert(cid, 1);
        self.dedup.live_cids += 1;
        Ok(cid)
    }

    fn get(&mut self, cid: &Guid) -> Result<Option<Vec<u8>>, StoreError> {
        self.inner.get(cid)
    }

    fn has(&mut self, cid: &Guid) -> bool {
        self.inner.has(cid)
    }

    fn delete(&mut self, cid: &Guid) -> Result<bool, StoreError> {
        match self.refs.get_mut(cid) {
            None => Ok(false),
            Some(rc) if *rc > 1 => {
                *rc -= 1;
                Ok(true)
            }
            Some(_) => {
                // Last reference: drop the blob itself. Remove the
                // refcount even if the provider refuses the delete — the
                // logical reference is gone either way.
                self.refs.remove(cid);
                self.dedup.live_cids -= 1;
                self.inner.delete(cid)
            }
        }
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;

    fn store() -> DedupStore {
        DedupStore::new(Box::new(MemoryStore::new()))
    }

    #[test]
    fn put_put_delete_keeps_blob_until_last_ref_drops() {
        let mut s = store();
        let cid = s.put(b"shared block").unwrap();
        assert_eq!(s.put(b"shared block").unwrap(), cid);
        assert_eq!(s.refcount(&cid), 2);
        assert!(s.delete(&cid).unwrap());
        assert!(s.has(&cid), "one reference remains; blob must survive");
        assert_eq!(s.get(&cid).unwrap().as_deref(), Some(b"shared block".as_ref()));
        assert!(s.delete(&cid).unwrap());
        assert!(!s.has(&cid), "last reference dropped; blob gone");
        assert!(!s.delete(&cid).unwrap());
    }

    #[test]
    fn hit_and_savings_counters() {
        let mut s = store();
        s.put(b"0123456789").unwrap();
        s.put(b"0123456789").unwrap();
        s.put(b"0123456789").unwrap();
        s.put(b"unique").unwrap();
        let d = s.dedup_stats();
        assert_eq!(d.hits, 2);
        assert_eq!(d.bytes_saved, 20);
        assert_eq!(d.logical_bytes, 36);
        assert_eq!(d.live_cids, 2);
        assert!((d.ratio() - 36.0 / 16.0).abs() < 1e-9);
        assert_eq!(s.stats().bytes, 16, "inner store holds each blob once");
    }
}
