//! Minimal self-contained run-length compression for on-disk blobs
//! (`compress` feature).
//!
//! The build environment vendors no compression library, so this is a
//! deliberately simple byte-oriented RLE: good on the runs that dominate
//! zero-padded blocks and erasure-coded parity of structured data, and
//! never worse than `len/128 + 2` bytes of overhead on incompressible
//! input. CIDs are computed over the *logical* bytes, so compression is
//! invisible to every caller of the store.
//!
//! Format: a one-byte magic `0x52` ('R'), then tokens. Token byte `t`:
//! * `t < 0x80` — literal run: the next `t + 1` bytes are copied.
//! * `t >= 0x80` — repeat run: the next byte repeats `t - 0x80 + 4`
//!   times (runs shorter than 4 are not worth a token).

const MAGIC: u8 = 0x52;
const MAX_LITERAL: usize = 0x80; // t + 1 ∈ [1, 128]
const MIN_RUN: usize = 4;
const MAX_RUN: usize = 0x7f + MIN_RUN; // t - 0x80 + 4 ∈ [4, 131]

/// Compresses `data` into the framed RLE format.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = vec![MAGIC];
    let mut i = 0;
    let mut lit_start = 0;
    let mut flush_literal = |out: &mut Vec<u8>, from: usize, to: usize, data: &[u8]| {
        let mut s = from;
        while s < to {
            let n = (to - s).min(MAX_LITERAL);
            out.push((n - 1) as u8);
            out.extend_from_slice(&data[s..s + n]);
            s += n;
        }
    };
    while i < data.len() {
        let b = data[i];
        let mut run = 1;
        while run < MAX_RUN && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        if run >= MIN_RUN {
            flush_literal(&mut out, lit_start, i, data);
            out.push(0x80 + (run - MIN_RUN) as u8);
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literal(&mut out, lit_start, data.len(), data);
    out
}

/// Decompresses the framed RLE format; `None` on malformed input.
pub fn decompress(raw: &[u8]) -> Option<Vec<u8>> {
    let (&magic, mut rest) = raw.split_first()?;
    if magic != MAGIC {
        return None;
    }
    let mut out = Vec::new();
    while let Some((&t, tail)) = rest.split_first() {
        if t < 0x80 {
            let n = t as usize + 1;
            if tail.len() < n {
                return None;
            }
            out.extend_from_slice(&tail[..n]);
            rest = &tail[n..];
        } else {
            let (&b, tail) = tail.split_first()?;
            out.extend(std::iter::repeat_n(b, (t - 0x80) as usize + MIN_RUN));
            rest = tail;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn runs_shrink() {
        let data = vec![0u8; 4096];
        let c = compress(&data);
        assert!(c.len() < 80, "4 KiB of zeros → {} bytes", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_overhead_is_bounded() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 + i / 3) as u8).collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 128 + 2);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for data in [&[][..], &[9][..], &[1, 1, 1][..], &[5, 5, 5, 5][..]] {
            assert_eq!(decompress(&compress(data)).unwrap(), data);
        }
    }

    #[test]
    fn bad_magic_and_truncation_rejected() {
        assert_eq!(decompress(&[]), None);
        assert_eq!(decompress(&[0x00, 0x05]), None); // wrong magic
        let mut c = compress(&[1, 2, 3, 4, 5, 6, 7, 8]);
        c.truncate(c.len() - 2);
        assert_eq!(decompress(&c), None);
    }

    proptest! {
        #[test]
        fn round_trips(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }

        #[test]
        fn round_trips_runny(
            runs in proptest::collection::vec((any::<u8>(), 1usize..300), 0..20)
        ) {
            let mut data = Vec::new();
            for (b, n) in runs {
                data.extend(std::iter::repeat_n(b, n));
            }
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }
    }
}
