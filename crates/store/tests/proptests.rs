//! Property tests for the blob-store layer: dedup refcounting never
//! loses a live blob or leaks a dead one, and hash-range routing is a
//! total, stable, balanced pure function.

use std::collections::HashMap;

use oceanstore_naming::guid::Guid;
use oceanstore_store::{cid_of, shard_of, BlobStore, DedupStore, MemoryStore, ShardedStore};
use proptest::prelude::*;

/// A reference model: logical refcounts per distinct payload.
fn model_apply(model: &mut HashMap<Vec<u8>, u64>, payload: &[u8], put: bool) {
    if put {
        *model.entry(payload.to_vec()).or_default() += 1;
    } else if let Some(rc) = model.get_mut(payload) {
        *rc -= 1;
        if *rc == 0 {
            model.remove(payload);
        }
    }
}

proptest! {
    /// Random interleavings of put/delete over a small payload alphabet:
    /// after every step, a blob is present iff the model says its
    /// refcount is positive, and its bytes are intact.
    #[test]
    fn dedup_refcounts_match_reference_model(
        ops in proptest::collection::vec((0u8..6, any::<bool>()), 1..200)
    ) {
        let mut store = DedupStore::new(Box::new(MemoryStore::new()));
        let mut model: HashMap<Vec<u8>, u64> = HashMap::new();
        for (tag, put) in ops {
            let payload = vec![tag; tag as usize + 3];
            if put {
                prop_assert_eq!(store.put(&payload).unwrap(), cid_of(&payload));
            } else {
                let want = model.get(payload.as_slice()).copied().unwrap_or(0) > 0;
                prop_assert_eq!(store.delete(&cid_of(&payload)).unwrap(), want);
            }
            model_apply(&mut model, &payload, put);
            // Full-state audit against the model.
            for t in 0u8..6 {
                let p = vec![t; t as usize + 3];
                let cid = cid_of(&p);
                let rc = model.get(p.as_slice()).copied().unwrap_or(0);
                prop_assert_eq!(store.refcount(&cid), rc);
                prop_assert_eq!(store.has(&cid), rc > 0);
                if rc > 0 {
                    prop_assert_eq!(store.get(&cid).unwrap().as_deref(), Some(p.as_slice()));
                }
            }
        }
        prop_assert_eq!(store.stats().blobs as usize, model.len());
    }

    /// The router is total and stable across instances.
    #[test]
    fn shard_routing_is_total_and_stable(label in "[a-z0-9]{1,12}", n in 1usize..16) {
        let cid = Guid::from_label(&label);
        let s = shard_of(&cid, n);
        prop_assert!(s < n);
        prop_assert_eq!(s, shard_of(&cid, n), "pure function of the bytes");
    }

    /// One shard is the identity routing.
    #[test]
    fn single_shard_is_identity(label in "[a-z0-9]{1,12}") {
        prop_assert_eq!(shard_of(&Guid::from_label(&label), 1), 0);
    }
}

/// Uniform CIDs spread evenly over shards (max/min ≤ 1.5 at this sample
/// size, mirroring the ring router's balance bar).
#[test]
fn shard_balance_over_content_cids() {
    let n = 4;
    let mut counts = vec![0u64; n];
    for i in 0..20_000u32 {
        let cid = cid_of(format!("balance-{i}").as_bytes());
        counts[shard_of(&cid, n)] += 1;
    }
    let max = *counts.iter().max().unwrap() as f64;
    let min = *counts.iter().min().unwrap() as f64;
    assert!(min > 0.0, "every shard populated: {counts:?}");
    assert!(max / min <= 1.5, "imbalance {counts:?}");
}

/// A sharded store over dedup'd shards still honours the refcount
/// contract end to end (the composition used by the provider scenarios).
#[test]
fn sharded_dedup_composition_round_trips() {
    let mut store = ShardedStore::new(vec![
        Box::new(DedupStore::new(Box::new(MemoryStore::new()))),
        Box::new(DedupStore::new(Box::new(MemoryStore::new()))),
    ]);
    let mut cids = Vec::new();
    for i in 0..32u32 {
        let payload = format!("composed-{}", i % 8); // 8 distinct, 4 refs each
        cids.push(store.put(payload.as_bytes()).unwrap());
    }
    assert_eq!(store.stats().blobs, 8, "dedup collapses to distinct payloads");
    // Drop three of the four references to each: everything still there.
    for cid in &cids[..24] {
        assert!(store.delete(cid).unwrap());
    }
    for cid in &cids {
        assert!(store.has(cid), "one reference each must remain");
    }
    for cid in &cids[24..] {
        assert!(store.delete(cid).unwrap());
    }
    assert_eq!(store.stats().blobs, 0);
}
