//! Golden traces and property tests for the conservative parallel
//! scheduler: the observable event schedule must be byte-for-byte
//! identical at every worker-thread count.
//!
//! The protocol here logs every handler invocation into per-node trace
//! buffers (timestamp, peer, payload, RNG draws), so any reordering of
//! cross-domain deliveries, timer fires, or per-node RNG consumption
//! shows up as a trace diff — not just as a counter mismatch.

use oceanstore_sim::{
    Context, Message, NodeId, Protocol, SimDuration, Simulator, Topology,
};
use proptest::prelude::*;
use rand::Rng as _;

#[derive(Debug, Clone)]
struct Ping {
    hops: u32,
}

impl Message for Ping {
    fn wire_size(&self) -> usize {
        12
    }
    fn class(&self) -> &'static str {
        "ping"
    }
}

/// Floods pings around a ring with staggered timers, occasional
/// RNG-directed detours, and multicast fan-out — enough churn that
/// every scheduler path (intra-window execution, cross-domain parking,
/// in-window timer arming) is exercised.
#[derive(Debug)]
struct Logger {
    id: usize,
    n: usize,
    budget: u32,
    log: Vec<String>,
}

impl Protocol for Logger {
    type Msg = Ping;

    fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
        ctx.set_timer(SimDuration::from_millis(1 + (self.id % 5) as u64), 7);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
        let draw = ctx.rng().gen_range(0..self.n);
        self.log.push(format!(
            "{}:recv:{}:{}:{}",
            ctx.now().as_micros(),
            from.0,
            msg.hops,
            draw
        ));
        if msg.hops > 0 {
            ctx.send(NodeId((self.id + 1) % self.n), Ping { hops: msg.hops - 1 });
            if msg.hops.is_multiple_of(2) {
                ctx.send(NodeId(draw), Ping { hops: msg.hops / 2 });
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Ping>, tag: u64) {
        self.log.push(format!("{}:timer:{tag}", ctx.now().as_micros()));
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        ctx.count("timer_fired");
        let targets = (1..=2).map(|k| NodeId((self.id + k) % self.n));
        ctx.broadcast(targets, Ping { hops: 3 });
        ctx.set_timer(SimDuration::from_millis(4 + (self.id % 3) as u64), tag);
    }
}

/// Runs the workload and returns the concatenated per-node trace plus
/// the engine's own counters — the full observable surface.
fn run_trace(n: usize, seed: u64, threads: usize, horizon_ms: u64) -> String {
    let topo = Topology::ring(n, SimDuration::from_millis(10));
    let nodes = (0..n).map(|id| Logger { id, n, budget: 6, log: Vec::new() }).collect();
    let mut sim = Simulator::new(topo, nodes, seed);
    sim.set_threads(threads);
    sim.start();
    sim.run_for(SimDuration::from_millis(horizon_ms));
    let mut out = String::new();
    for (i, node) in sim.nodes().enumerate() {
        out.push_str(&format!("== node {i} ==\n"));
        for line in &node.log {
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str(&format!(
        "events={} msgs={} bytes={} ev[timer_fired]={}\n",
        sim.events_processed(),
        sim.stats().total_messages(),
        sim.stats().total_bytes(),
        sim.stats().event("timer_fired"),
    ));
    out
}

/// FNV-1a over the golden trace, pinned below so an accidental schedule
/// change in *any* future engine work fails loudly. Re-capture by
/// running with `GOLDEN_CAPTURE=1`.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Captured via `GOLDEN_CAPTURE=1` on the sequential schedule.
const GOLDEN_HASH: u64 = 0xe0c2_bf60_c3cc_62d3;

#[test]
fn golden_trace_is_bit_identical_at_1_2_8_threads() {
    let sequential = run_trace(24, 0xC0FFEE, 1, 200);
    for threads in [2usize, 8] {
        let parallel = run_trace(24, 0xC0FFEE, threads, 200);
        assert_eq!(parallel, sequential, "threads={threads} changed the golden trace");
    }
    let hash = fnv1a(&sequential);
    if std::env::var_os("GOLDEN_CAPTURE").is_some() {
        println!("golden hash: {hash:#018x}");
        return;
    }
    assert_eq!(
        hash, GOLDEN_HASH,
        "golden trace drifted from the pinned schedule; \
         rerun with GOLDEN_CAPTURE=1 and update the pin if intentional"
    );
}

#[test]
fn repeated_parallel_runs_are_identical() {
    let a = run_trace(17, 42, 8, 150);
    let b = run_trace(17, 42, 8, 150);
    assert_eq!(a, b, "same seed + same threads must reproduce exactly");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cross-domain message ordering is a function of (topology, seed,
    /// horizon) only — never of the thread count or the OS interleaving
    /// behind it.
    #[test]
    fn ordering_is_independent_of_thread_interleaving(
        n in 4usize..32,
        seed in any::<u64>(),
        threads_pick in 0usize..4,
        horizon_ms in 50u64..250,
    ) {
        let threads = [2usize, 3, 4, 8][threads_pick];
        let sequential = run_trace(n, seed, 1, horizon_ms);
        let parallel = run_trace(n, seed, threads, horizon_ms);
        prop_assert_eq!(parallel, sequential);
    }
}
