//! Property-based tests for the simulator's topology metrics.

use oceanstore_sim::{NodeId, SimDuration, Topology};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Shortest-path latency is a metric on connected random geometric
    /// graphs: symmetric, zero on the diagonal, triangle inequality.
    #[test]
    fn dist_is_a_metric(seed in any::<u64>(), n in 4usize..40) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let topo = Topology::random_geometric(n, 0.3, SimDuration::from_millis(50), &mut rng);
        prop_assert!(topo.is_connected());
        let idx = |i: usize| NodeId(i % n);
        for i in 0..n.min(6) {
            for j in 0..n.min(6) {
                let dij = topo.dist(idx(i), idx(j)).expect("connected");
                let dji = topo.dist(idx(j), idx(i)).expect("connected");
                prop_assert_eq!(dij, dji, "symmetry");
                if i == j {
                    prop_assert_eq!(dij, SimDuration::ZERO);
                }
                for k in 0..n.min(6) {
                    let dik = topo.dist(idx(i), idx(k)).expect("connected");
                    let dkj = topo.dist(idx(k), idx(j)).expect("connected");
                    prop_assert!(dij <= dik + dkj, "triangle inequality");
                }
            }
        }
    }

    /// Hop counts lower-bound any path length and are 1 exactly for
    /// direct neighbours.
    #[test]
    fn hops_consistent_with_edges(seed in any::<u64>(), n in 4usize..30) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let topo = Topology::random_geometric(n, 0.35, SimDuration::from_millis(10), &mut rng);
        for i in 0..n {
            for &(j, _) in topo.neighbors(NodeId(i)) {
                prop_assert_eq!(topo.hops(NodeId(i), j), Some(1));
            }
        }
    }

    /// Grid distances are Manhattan.
    #[test]
    fn grid_is_manhattan(w in 2usize..8, h in 2usize..8) {
        let topo = Topology::grid(w, h, SimDuration::from_millis(1));
        for a in 0..(w * h).min(10) {
            for b in 0..(w * h).min(10) {
                let (ax, ay) = (a % w, a / w);
                let (bx, by) = (b % w, b / w);
                let manhattan = ax.abs_diff(bx) + ay.abs_diff(by);
                prop_assert_eq!(topo.hops(NodeId(a), NodeId(b)), Some(manhattan as u32));
            }
        }
    }
}
