//! Regression guard: `Topology::dist` (the latency lookup behind every
//! `Context::send`) runs **exactly one** Dijkstra sweep per distinct source
//! node, no matter how many lookups hit it. A refactor that reintroduces
//! per-send recomputation turns every simulated message into an O(E log V)
//! graph walk — this test makes that impossible to miss.

use oceanstore_sim::{
    Context, Message, NodeId, Protocol, SimDuration, Simulator, Topology,
};

#[test]
fn repeated_dist_lookups_run_one_dijkstra_per_source() {
    let topo = Topology::grid(8, 8, SimDuration::from_millis(5));
    assert_eq!(topo.dijkstra_runs(), 0, "construction must not precompute");

    // Hammer a single source: thousands of lookups, one sweep.
    for round in 0..1_000 {
        for v in 0..topo.len() {
            let _ = topo.dist(NodeId(0), NodeId(v));
        }
        assert_eq!(topo.dijkstra_runs(), 1, "round {round}");
    }

    // Each new source costs exactly one more sweep; revisiting costs zero.
    for (i, src) in [7usize, 21, 63].into_iter().enumerate() {
        for v in 0..topo.len() {
            let _ = topo.dist(NodeId(src), NodeId(v));
            let _ = topo.dist(NodeId(0), NodeId(v));
        }
        assert_eq!(topo.dijkstra_runs(), 2 + i as u64);
    }

    // Self-distance short-circuits before the cache entirely.
    let fresh = Topology::ring(4, SimDuration::from_millis(1));
    assert_eq!(fresh.dist(NodeId(2), NodeId(2)), Some(SimDuration::ZERO));
    assert_eq!(fresh.dijkstra_runs(), 0);
}

#[test]
fn hops_lookups_run_one_bfs_per_source() {
    let topo = Topology::grid(6, 6, SimDuration::from_millis(5));
    for _ in 0..100 {
        for v in 0..topo.len() {
            let _ = topo.hops(NodeId(3), NodeId(v));
        }
    }
    assert_eq!(topo.bfs_runs(), 1);
}

/// End-to-end version: a full simulation where every node floods every
/// other node still triggers at most one Dijkstra per node that sent.
#[test]
fn simulation_routing_stays_within_one_dijkstra_per_source() {
    #[derive(Debug)]
    struct Gossip {
        id: usize,
        n: usize,
        rounds: u32,
    }
    #[derive(Debug, Clone)]
    struct G(u32);
    impl Message for G {
        fn wire_size(&self) -> usize {
            24
        }
    }
    impl Protocol for Gossip {
        type Msg = G;
        fn on_start(&mut self, ctx: &mut Context<'_, G>) {
            let peers = (0..self.n).filter(|&p| p != self.id).map(NodeId);
            ctx.broadcast(peers, G(self.rounds));
        }
        fn on_message(&mut self, ctx: &mut Context<'_, G>, _from: NodeId, msg: G) {
            if msg.0 > 0 {
                let peers = (0..self.n).filter(|&p| p != self.id).map(NodeId);
                ctx.broadcast(peers, G(msg.0 - 1));
            }
        }
    }
    let n = 16;
    let topo = Topology::grid(4, 4, SimDuration::from_millis(2));
    let nodes = (0..n).map(|id| Gossip { id, n, rounds: 2 }).collect();
    let mut sim = Simulator::new(topo, nodes, 11);
    sim.start();
    sim.run_to_quiescence(2_000_000);
    assert!(sim.stats().total_messages() > 1_000, "workload actually routed");
    assert_eq!(
        sim.topology().dijkstra_runs(),
        n as u64,
        "every node sent; each must have cost exactly one Dijkstra"
    );
}
