//! Golden event-trace test: pins the engine's exact event ordering.
//!
//! The first trace below was originally captured from the pre-timer-wheel
//! engine (a single `BinaryHeap` of owned events) and survived the engine
//! overhaul (Arc multicast, hierarchical timer wheel, pooled action
//! buffers) bit for bit. It was re-frozen exactly once, when drop
//! decisions switched from a shared engine-RNG stream to counter-mode
//! per-link hashing (DESIGN.md §11) — a deliberate, documented re-freeze:
//! the same messages flow, but different coins decide which are dropped.
//! Every run must stay bit-for-bit identical: same seed ⇒ same event
//! order, same clock, same byte accounting, same drop attribution. If this
//! test fails after an engine change, the determinism contract is broken —
//! do not regenerate the golden trace (`GOLDEN_CAPTURE=1`) unless the
//! ordering change is deliberate and called out in DESIGN.md.

use std::cell::RefCell;
use std::rc::Rc;

use oceanstore_sim::{
    Context, DropCause, Message, NodeId, Protocol, SimDuration, Simulator, Topology,
};

/// One line per protocol callback, in global dispatch order.
type Trace = Rc<RefCell<Vec<String>>>;

#[derive(Debug, Clone)]
struct Flood {
    id: u32,
    ttl: u8,
}

impl Message for Flood {
    fn wire_size(&self) -> usize {
        64 + (self.id as usize % 17)
    }
    fn class(&self) -> &'static str {
        "flood"
    }
}

struct TraceNode {
    id: usize,
    trace: Trace,
}

impl Protocol for TraceNode {
    type Msg = Flood;

    fn on_start(&mut self, ctx: &mut Context<'_, Flood>) {
        // Two timers at the same instant pin same-time tie-breaking by
        // insertion order; the staggered third pins cross-node interleave.
        ctx.set_timer(SimDuration::from_millis(5), 100 + self.id as u64);
        ctx.set_timer(SimDuration::from_millis(5), 200 + self.id as u64);
        if self.id == 0 {
            for to in [1usize, 2, 3] {
                ctx.send(NodeId(to), Flood { id: 1, ttl: 4 });
            }
        }
        if self.id == 3 {
            ctx.set_timer(SimDuration::from_millis(2), 300);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Flood>, from: NodeId, msg: Flood) {
        self.trace.borrow_mut().push(format!(
            "t={} n={} msg from={} id={} ttl={}",
            ctx.now().as_micros(),
            self.id,
            from.0,
            msg.id,
            msg.ttl
        ));
        if msg.ttl > 0 {
            let next = Flood { id: msg.id * 3 + self.id as u32, ttl: msg.ttl - 1 };
            ctx.send(NodeId((self.id + 1) % 4), next.clone());
            ctx.send(NodeId((self.id + 2) % 4), next);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Flood>, tag: u64) {
        self.trace.borrow_mut().push(format!(
            "t={} n={} timer tag={}",
            ctx.now().as_micros(),
            self.id,
            tag
        ));
        if tag == 300 {
            ctx.send(NodeId(0), Flood { id: 99, ttl: 2 });
        }
        if (100..104).contains(&tag) {
            ctx.set_timer(SimDuration::from_millis(7), tag + 10);
        }
    }
}

fn run_golden() -> (Vec<String>, Simulator<TraceNode>) {
    let ms = SimDuration::from_millis;
    let mut b = Topology::builder(4);
    b.edge(NodeId(0), NodeId(1), ms(10));
    b.edge(NodeId(1), NodeId(2), ms(15));
    b.edge(NodeId(2), NodeId(3), ms(10));
    b.edge(NodeId(0), NodeId(3), ms(25));
    b.edge(NodeId(0), NodeId(2), ms(40));
    let topo = b.build();
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    let nodes = (0..4).map(|id| TraceNode { id, trace: Rc::clone(&trace) }).collect();
    let mut sim = Simulator::new(topo, nodes, 0xC0FFEE);
    sim.set_drop_prob(0.15);
    sim.set_link_drop(NodeId(1), NodeId(2), 0.25);
    sim.start();
    sim.run_to_quiescence(10_000);
    let lines = trace.borrow().clone();
    (lines, sim)
}

/// Re-frozen once for the counter-mode drop RNG (see module docs).
const GOLDEN: &[&str] = &[
    "t=2000 n=3 timer tag=300",
    "t=5000 n=0 timer tag=100",
    "t=5000 n=0 timer tag=200",
    "t=5000 n=1 timer tag=101",
    "t=5000 n=1 timer tag=201",
    "t=5000 n=2 timer tag=102",
    "t=5000 n=2 timer tag=202",
    "t=5000 n=3 timer tag=103",
    "t=5000 n=3 timer tag=203",
    "t=10000 n=1 msg from=0 id=1 ttl=4",
    "t=12000 n=0 timer tag=110",
    "t=12000 n=1 timer tag=111",
    "t=12000 n=2 timer tag=112",
    "t=12000 n=3 timer tag=113",
    "t=25000 n=2 msg from=0 id=1 ttl=4",
    "t=27000 n=0 msg from=3 id=99 ttl=2",
    "t=35000 n=3 msg from=2 id=5 ttl=3",
    "t=37000 n=1 msg from=0 id=297 ttl=1",
    "t=50000 n=0 msg from=2 id=5 ttl=3",
    "t=52000 n=2 msg from=0 id=297 ttl=1",
    "t=60000 n=1 msg from=3 id=18 ttl=2",
    "t=60000 n=1 msg from=0 id=15 ttl=2",
    "t=62000 n=3 msg from=2 id=893 ttl=0",
    "t=75000 n=2 msg from=1 id=55 ttl=1",
    "t=75000 n=2 msg from=1 id=46 ttl=1",
    "t=77000 n=0 msg from=2 id=893 ttl=0",
    "t=85000 n=3 msg from=1 id=46 ttl=1",
    "t=85000 n=3 msg from=2 id=167 ttl=0",
    "t=85000 n=3 msg from=2 id=140 ttl=0",
    "t=100000 n=0 msg from=2 id=167 ttl=0",
    "t=100000 n=0 msg from=2 id=140 ttl=0",
    "t=110000 n=0 msg from=3 id=141 ttl=0",
    "t=110000 n=1 msg from=3 id=141 ttl=0",
];

#[test]
fn event_order_matches_golden_trace() {
    let (lines, sim) = run_golden();
    if std::env::var_os("GOLDEN_CAPTURE").is_some() {
        for l in &lines {
            println!("    \"{l}\",");
        }
        println!(
            "now={} events={} msgs={} bytes={} random={} flap={}",
            sim.now().as_micros(),
            sim.events_processed(),
            sim.stats().total_messages(),
            sim.stats().total_bytes(),
            sim.stats().dropped_by_cause(DropCause::Random),
            sim.stats().dropped_by_cause(DropCause::LinkFlap),
        );
        return;
    }
    assert_eq!(
        lines,
        GOLDEN.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        "event dispatch order diverged from the pinned golden trace"
    );
    // Aggregate counters pinned too: byte accounting happens at send time
    // (dropped messages still count), so these detect any change in what
    // the protocols emitted, not just in what was delivered.
    assert_eq!(sim.now().as_micros(), 110_000);
    assert_eq!(sim.events_processed(), 33);
    assert_eq!(sim.stats().total_messages(), 28);
    assert_eq!(sim.stats().total_bytes(), 1_987);
    assert_eq!(sim.stats().dropped_by_cause(DropCause::Random), 8);
    assert_eq!(sim.stats().dropped_by_cause(DropCause::LinkFlap), 0);
}

#[test]
fn golden_run_is_reproducible() {
    let (a, _) = run_golden();
    let (b, _) = run_golden();
    assert_eq!(a, b);
}

// --------------------------------------------------------------------------
// Second scenario: queue-structure edge paths.
//
// The flood trace above exercises the common case; this one pins the event
// queue's rarer paths so a storage change (e.g. sifting compact keys with
// payloads in a slab) cannot reorder them undetected:
//
// * **Overflow heap** — timers armed ≥ ~16.7 s ahead of the wheel clock
//   bypass the wheel levels entirely.
// * **Same-instant cohorts** — every node arms timers for one shared
//   instant, and a broadcast lands same-instant deliveries; both must pop
//   in global `seq` (insertion) order.
// * **Cross-level same-instant firing** — two timers expire at the same
//   microsecond but were armed at different times, so they live at
//   different wheel levels until the instant arrives.

struct ParkNode {
    id: usize,
    trace: Trace,
}

impl Protocol for ParkNode {
    type Msg = Flood;

    fn on_start(&mut self, ctx: &mut Context<'_, Flood>) {
        // Same-instant timer cohort: every node, two timers, one instant.
        ctx.set_timer(SimDuration::from_millis(10), 400 + self.id as u64);
        ctx.set_timer(SimDuration::from_millis(10), 500 + self.id as u64);
        // Overflow heap: far beyond the wheel horizon (~16.7 s).
        ctx.set_timer(SimDuration::from_secs(20 + self.id as u64), 900 + self.id as u64);
        // Mid-level slot that must cascade down before firing.
        if self.id == 0 {
            ctx.set_timer(SimDuration::from_millis(400), 600);
            // Stager: at 350 ms, arm a +50 ms timer so two timers fire at
            // t=400 ms from different wheel levels.
            ctx.set_timer(SimDuration::from_millis(350), 700);
        }
        // Same-instant delivery cohort via one multicast.
        if self.id == 2 {
            ctx.broadcast((0..5).filter(|&i| i != 2).map(NodeId), Flood { id: 7, ttl: 1 });
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Flood>, from: NodeId, msg: Flood) {
        self.trace.borrow_mut().push(format!(
            "t={} n={} msg from={} id={} ttl={}",
            ctx.now().as_micros(),
            self.id,
            from.0,
            msg.id,
            msg.ttl
        ));
        if msg.ttl > 0 {
            ctx.send(NodeId((self.id + 1) % 5), Flood { id: msg.id + 10, ttl: msg.ttl - 1 });
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Flood>, tag: u64) {
        self.trace.borrow_mut().push(format!(
            "t={} n={} timer tag={}",
            ctx.now().as_micros(),
            self.id,
            tag
        ));
        match tag {
            // Cohort members broadcast, piling same-instant deliveries on
            // top of the same-instant timer drain.
            400..=404 => {
                ctx.broadcast([(self.id + 1) % 5, (self.id + 2) % 5].map(NodeId), Flood {
                    id: 20 + self.id as u32,
                    ttl: 0,
                });
            }
            700 => ctx.set_timer(SimDuration::from_millis(50), 800),
            // Far timers respond so post-overflow dispatch is pinned too.
            900..=904 => ctx.send(NodeId((self.id + 1) % 5), Flood { id: 90, ttl: 0 }),
            _ => {}
        }
    }
}

fn run_golden_park() -> (Vec<String>, Simulator<ParkNode>) {
    let ms = SimDuration::from_millis;
    let topo = Topology::full_mesh(5, ms(3));
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    let nodes = (0..5).map(|id| ParkNode { id, trace: Rc::clone(&trace) }).collect();
    let mut sim = Simulator::new(topo, nodes, 0xBEEF);
    sim.start();
    sim.run_to_quiescence(10_000);
    let lines = trace.borrow().clone();
    (lines, sim)
}

/// Captured from the pre-key-slab engine; see module docs.
const GOLDEN_PARK: &[&str] = &[
    "t=3000 n=0 msg from=2 id=7 ttl=1",
    "t=3000 n=1 msg from=2 id=7 ttl=1",
    "t=3000 n=3 msg from=2 id=7 ttl=1",
    "t=3000 n=4 msg from=2 id=7 ttl=1",
    "t=6000 n=1 msg from=0 id=17 ttl=0",
    "t=6000 n=2 msg from=1 id=17 ttl=0",
    "t=6000 n=4 msg from=3 id=17 ttl=0",
    "t=6000 n=0 msg from=4 id=17 ttl=0",
    "t=10000 n=0 timer tag=400",
    "t=10000 n=0 timer tag=500",
    "t=10000 n=1 timer tag=401",
    "t=10000 n=1 timer tag=501",
    "t=10000 n=2 timer tag=402",
    "t=10000 n=2 timer tag=502",
    "t=10000 n=3 timer tag=403",
    "t=10000 n=3 timer tag=503",
    "t=10000 n=4 timer tag=404",
    "t=10000 n=4 timer tag=504",
    "t=13000 n=1 msg from=0 id=20 ttl=0",
    "t=13000 n=2 msg from=0 id=20 ttl=0",
    "t=13000 n=2 msg from=1 id=21 ttl=0",
    "t=13000 n=3 msg from=1 id=21 ttl=0",
    "t=13000 n=3 msg from=2 id=22 ttl=0",
    "t=13000 n=4 msg from=2 id=22 ttl=0",
    "t=13000 n=4 msg from=3 id=23 ttl=0",
    "t=13000 n=0 msg from=3 id=23 ttl=0",
    "t=13000 n=0 msg from=4 id=24 ttl=0",
    "t=13000 n=1 msg from=4 id=24 ttl=0",
    "t=350000 n=0 timer tag=700",
    "t=400000 n=0 timer tag=600",
    "t=400000 n=0 timer tag=800",
    "t=20000000 n=0 timer tag=900",
    "t=20003000 n=1 msg from=0 id=90 ttl=0",
    "t=21000000 n=1 timer tag=901",
    "t=21003000 n=2 msg from=1 id=90 ttl=0",
    "t=22000000 n=2 timer tag=902",
    "t=22003000 n=3 msg from=2 id=90 ttl=0",
    "t=23000000 n=3 timer tag=903",
    "t=23003000 n=4 msg from=3 id=90 ttl=0",
    "t=24000000 n=4 timer tag=904",
    "t=24003000 n=0 msg from=4 id=90 ttl=0",
];

#[test]
fn overflow_and_cohort_order_matches_golden_trace() {
    let (lines, sim) = run_golden_park();
    if std::env::var_os("GOLDEN_CAPTURE").is_some() {
        for l in &lines {
            println!("    \"{l}\",");
        }
        return;
    }
    assert_eq!(
        lines,
        GOLDEN_PARK.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        "queue edge-path dispatch order diverged from the pinned trace"
    );
    assert_eq!(sim.stats().dropped_messages(), 0);
}

#[test]
fn overflow_and_cohort_run_is_reproducible() {
    let (a, _) = run_golden_park();
    let (b, _) = run_golden_park();
    assert_eq!(a, b);
}
