//! Properties of the counter-mode drop RNG (DESIGN.md §11).
//!
//! Drop and link-flap verdicts are splitmix64-style hashes of
//! `(sim_seed, src, dst, attempt)` — pure functions of a routing
//! attempt's identity. Three consequences are pinned here:
//!
//! 1. **Thread invariance** — the delivered set, the per-cause drop
//!    tallies, and every per-link delivery sequence are identical at
//!    threads {1, 2, 8}, with drops active the whole run (the old
//!    engine-RNG scheme forced a sequential fallback here).
//! 2. **Evaluation-order invariance** — reordering sends *across*
//!    links (without changing any single link's attempt sequence)
//!    leaves every per-link verdict sequence untouched. A shared RNG
//!    stream could not satisfy this: interleaving would shift which
//!    draw each attempt consumed.
//! 3. **Rate preservation** — the coins are still fair: observed drop
//!    rates match the configured probabilities, and `DropCause`
//!    attribution (Random is rolled before LinkFlap) is preserved
//!    across the RNG switch.

use oceanstore_sim::{
    Context, DropCause, Message, NodeId, Protocol, SimDuration, Simulator, Topology,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Tag(u32);

impl Message for Tag {
    fn wire_size(&self) -> usize {
        16
    }
    fn class(&self) -> &'static str {
        "tag"
    }
}

/// Each node fires a periodic timer and sends a numbered `Tag` to its
/// next two ring neighbours. `swap` flips the order of the two sends
/// within a tick — changing the global evaluation order while leaving
/// every directed link's attempt sequence (tag 0, 1, 2, …) unchanged.
#[derive(Debug)]
struct Blaster {
    id: usize,
    n: usize,
    ticks_left: u32,
    tick: u32,
    swap: bool,
    /// Delivered messages as (time µs, sender, tag).
    seen: Vec<(u64, usize, u32)>,
}

impl Protocol for Blaster {
    type Msg = Tag;

    fn on_start(&mut self, ctx: &mut Context<'_, Tag>) {
        ctx.set_timer(SimDuration::from_millis(1 + (self.id % 3) as u64), 0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Tag>, from: NodeId, msg: Tag) {
        self.seen.push((ctx.now().as_micros(), from.0, msg.0));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Tag>, _tag: u64) {
        if self.ticks_left == 0 {
            return;
        }
        self.ticks_left -= 1;
        let t = self.tick;
        self.tick += 1;
        let a = NodeId((self.id + 1) % self.n);
        let b = NodeId((self.id + 2) % self.n);
        if self.swap {
            ctx.send(b, Tag(t));
            ctx.send(a, Tag(t));
        } else {
            ctx.send(a, Tag(t));
            ctx.send(b, Tag(t));
        }
        ctx.set_timer(SimDuration::from_millis(5), 0);
    }
}

fn blaster_sim(n: usize, seed: u64, ticks: u32, swap: bool) -> Simulator<Blaster> {
    let topo = Topology::ring(n, SimDuration::from_millis(10));
    let nodes = (0..n)
        .map(|id| Blaster { id, n, ticks_left: ticks, tick: 0, swap, seen: Vec::new() })
        .collect();
    Simulator::new(topo, nodes, seed)
}

/// Full observable surface relevant to drops: the clock, every per-node
/// delivery log, and the per-cause drop tallies.
fn fingerprint(sim: &Simulator<Blaster>) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "now={} msgs={} random={} flap={} partition={}\n",
        sim.now().as_micros(),
        sim.stats().total_messages(),
        sim.stats().dropped_by_cause(DropCause::Random),
        sim.stats().dropped_by_cause(DropCause::LinkFlap),
        sim.stats().dropped_by_cause(DropCause::Partition),
    );
    for (i, node) in sim.nodes().enumerate() {
        let _ = writeln!(out, "node {i}: {:?}", node.seen);
    }
    out
}

/// The per-(receiver, sender) sequence of delivered tags — the verdict
/// history of each directed link, stripped of global interleaving.
fn per_link_tags(sim: &Simulator<Blaster>) -> Vec<((usize, usize), Vec<u32>)> {
    let n = sim.nodes().count();
    let mut links: Vec<((usize, usize), Vec<u32>)> = Vec::new();
    for (to, node) in sim.nodes().enumerate() {
        for from in 0..n {
            let tags: Vec<u32> =
                node.seen.iter().filter(|(_, f, _)| *f == from).map(|(_, _, t)| *t).collect();
            if !tags.is_empty() {
                links.push(((from, to), tags));
            }
        }
    }
    links
}

fn run_with_drops(
    n: usize,
    seed: u64,
    threads: usize,
    drop_prob: f64,
    flap: Option<(usize, usize, f64)>,
    swap: bool,
) -> Simulator<Blaster> {
    let mut sim = blaster_sim(n, seed, 12, swap);
    sim.set_threads(threads);
    sim.set_drop_prob(drop_prob);
    if let Some((u, v, p)) = flap {
        sim.set_link_drop(NodeId(u), NodeId(v), p);
    }
    sim.start();
    sim.run_for(SimDuration::from_millis(200));
    sim
}

#[test]
fn drop_verdicts_survive_cross_link_reordering() {
    // Swapping the two sends inside each tick permutes the global
    // evaluation order but not any single link's attempt sequence, so
    // every link must see the exact same tags delivered.
    for seed in [1u64, 0xC0FFEE, 0xDEAD_BEEF] {
        let a = run_with_drops(8, seed, 1, 0.3, Some((0, 1, 0.4)), false);
        let b = run_with_drops(8, seed, 1, 0.3, Some((0, 1, 0.4)), true);
        assert_eq!(per_link_tags(&a), per_link_tags(&b), "seed {seed:#x}");
        // Aggregate attribution is order-blind too.
        assert_eq!(
            a.stats().dropped_by_cause(DropCause::Random),
            b.stats().dropped_by_cause(DropCause::Random)
        );
        assert_eq!(
            a.stats().dropped_by_cause(DropCause::LinkFlap),
            b.stats().dropped_by_cause(DropCause::LinkFlap)
        );
    }
}

#[test]
fn attribution_order_rolls_random_before_flap() {
    // drop_prob = 1.0 drowns everything as Random even on a link with
    // a configured flap rate — the Random coin is rolled first, exactly
    // as the sequential pre-counter-mode engine did.
    let sim = run_with_drops(6, 7, 1, 1.0, Some((0, 1, 1.0)), false);
    assert_eq!(sim.stats().dropped_by_cause(DropCause::LinkFlap), 0);
    assert!(sim.stats().dropped_by_cause(DropCause::Random) > 0);
    assert!(sim.nodes().all(|n| n.seen.is_empty()));

    // And with the Random coin disabled, a certain flap kills exactly
    // the flapping link's traffic, attributed to LinkFlap.
    let sim = run_with_drops(6, 7, 1, 0.0, Some((0, 1, 1.0)), false);
    assert_eq!(sim.stats().dropped_by_cause(DropCause::Random), 0);
    assert!(sim.stats().dropped_by_cause(DropCause::LinkFlap) > 0);
    let links: Vec<(usize, usize)> = per_link_tags(&sim).into_iter().map(|(l, _)| l).collect();
    assert!(!links.contains(&(0, 1)) && !links.contains(&(1, 0)));
}

#[test]
fn drop_rates_match_configured_probabilities() {
    // The counter-mode coins must be statistically indistinguishable
    // from the engine-RNG draws they replaced: a long run's observed
    // drop fraction lands within ±0.05 of the configured rate (≥ 4.5σ
    // for ~2000 attempts — deterministic given the seed, so not flaky).
    let mut sim = blaster_sim(4, 0xFEED, 1_000, false);
    sim.set_drop_prob(0.3);
    sim.start();
    sim.run_for(SimDuration::from_secs(20));
    // Byte accounting happens at send time, so total_messages counts
    // every routing attempt, dropped or not.
    let attempts = sim.stats().total_messages() as f64;
    let dropped = sim.stats().dropped_by_cause(DropCause::Random) as f64;
    assert!(attempts >= 2_000.0, "attempts={attempts}");
    let rate = dropped / attempts;
    assert!((rate - 0.3).abs() < 0.05, "Random rate {rate} vs configured 0.3");

    // In a 4-ring only node 0's first send per tick crosses link 0→1,
    // so that link sees exactly one attempt per tick: delivered tags
    // plus LinkFlap drops must sum to the tick count.
    let mut sim = blaster_sim(4, 0xFEED, 1_000, false);
    sim.set_link_drop(NodeId(0), NodeId(1), 0.4);
    sim.start();
    sim.run_for(SimDuration::from_secs(20));
    let delivered = per_link_tags(&sim)
        .into_iter()
        .find(|(l, _)| *l == (0, 1))
        .map_or(0, |(_, tags)| tags.len());
    let flapped = sim.stats().dropped_by_cause(DropCause::LinkFlap) as usize;
    assert_eq!(delivered + flapped, 1_000, "link 0→1 attempt accounting");
    let rate = flapped as f64 / 1_000.0;
    assert!((rate - 0.4).abs() < 0.05, "LinkFlap rate {rate} vs configured 0.4");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same (seed, src, dst, attempt) ⇒ same verdict at threads
    /// {1, 2, 8}: the full delivery fingerprint — per-link tag
    /// sequences and per-cause tallies — is thread-count invariant
    /// with drops and flaps active throughout.
    #[test]
    fn drop_verdicts_are_thread_count_invariant(
        n in 4usize..16,
        seed in any::<u64>(),
        drop_pct in 5u32..45,
        flap_pct in 5u32..60,
    ) {
        let drop_prob = f64::from(drop_pct) / 100.0;
        let flap = Some((0, 1, f64::from(flap_pct) / 100.0));
        let sequential = run_with_drops(n, seed, 1, drop_prob, flap, false);
        let seq_fp = fingerprint(&sequential);
        for threads in [2usize, 8] {
            let parallel = run_with_drops(n, seed, threads, drop_prob, flap, false);
            prop_assert_eq!(&fingerprint(&parallel), &seq_fp, "threads={}", threads);
            // And the drop phase genuinely ran parallel, not via fallback.
            let cov = parallel.par_coverage();
            prop_assert!(cov.windows_parallel + cov.windows_inline > 0);
            prop_assert_eq!(cov.fallback_entries, 0);
        }
    }
}
