//! Network accounting.
//!
//! Figure 6 of the paper is a pure byte-count experiment (bytes sent across
//! the network per update, normalized to the minimum), so the simulator
//! meters every message: totals, per-node, and per message class.

use std::collections::BTreeMap;

use crate::topology::NodeId;

/// Why the network failed to deliver a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// The destination was crashed at delivery time.
    NodeDown,
    /// Sender and destination were in different partition groups.
    Partition,
    /// The message lost the independent drop-probability coin flip.
    Random,
    /// No topology path exists between sender and destination.
    Unreachable,
    /// The message lost a per-link drop-probability coin flip (flapping
    /// or lossy individual links, as opposed to the global `Random`).
    LinkFlap,
}

impl DropCause {
    /// All causes, in a fixed display order.
    pub const ALL: [DropCause; 5] = [
        DropCause::NodeDown,
        DropCause::Partition,
        DropCause::Random,
        DropCause::Unreachable,
        DropCause::LinkFlap,
    ];

    fn index(self) -> usize {
        match self {
            DropCause::NodeDown => 0,
            DropCause::Partition => 1,
            DropCause::Random => 2,
            DropCause::Unreachable => 3,
            DropCause::LinkFlap => 4,
        }
    }
}

/// Byte and message counters for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    total_messages: u64,
    total_bytes: u64,
    dropped: [u64; 5],
    per_node_sent: Vec<u64>,
    per_node_received: Vec<u64>,
    /// Per-class counters in first-seen order. A flat vector, not a map:
    /// `record_send` runs once per message, a run uses only a handful of
    /// distinct classes, and class names are `&'static str` — so a linear
    /// scan with a pointer-equality fast path beats hashing or tree walks
    /// on every send. Name-ordered accessors sort on demand.
    by_class: Vec<ClassEntry>,
    events: BTreeMap<&'static str, u64>,
}

/// Counters for one message class, including its per-sender breakdown.
#[derive(Debug, Clone)]
struct ClassEntry {
    name: &'static str,
    totals: ClassStats,
    /// Indexed by sender node; sized lazily on first send of this class.
    per_sender: Vec<ClassStats>,
}

/// Counters for one message class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Messages delivered in this class.
    pub messages: u64,
    /// Bytes delivered in this class.
    pub bytes: u64,
}

impl NetStats {
    pub(crate) fn new(n: usize) -> Self {
        NetStats {
            per_node_sent: vec![0; n],
            per_node_received: vec![0; n],
            ..Default::default()
        }
    }

    /// An empty accumulator sized for `n` nodes. Per-domain accumulators in
    /// the parallel scheduler (and external tooling aggregating over runs)
    /// build partial counters with this and fold them with
    /// [`NetStats::merge`].
    pub fn accumulator(n: usize) -> Self {
        NetStats::new(n)
    }

    /// Folds `other` into `self`. Every counter is a sum, so merging is
    /// commutative and associative: accumulating per-domain partials in any
    /// merge order yields exactly the totals a single global accumulator
    /// would have recorded, which is what keeps chaos fingerprints
    /// identical at any thread count. Per-node vectors may be sized for
    /// fewer nodes on either side (accumulators that never saw a send stay
    /// empty); the merged result covers the larger of the two.
    pub fn merge(&mut self, other: &NetStats) {
        fn add_nodes(dst: &mut Vec<u64>, src: &[u64]) {
            if dst.len() < src.len() {
                dst.resize(src.len(), 0);
            }
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        self.total_messages += other.total_messages;
        self.total_bytes += other.total_bytes;
        for (d, s) in self.dropped.iter_mut().zip(&other.dropped) {
            *d += s;
        }
        add_nodes(&mut self.per_node_sent, &other.per_node_sent);
        add_nodes(&mut self.per_node_received, &other.per_node_received);
        for src in &other.by_class {
            // Zeroed entries are left behind by `clear_for_reuse` so domain
            // accumulators keep their per-sender tables across epochs;
            // skipping them here keeps a merge from registering classes the
            // source never actually recorded (which would perturb
            // `classes()` counts after a reset).
            if src.totals == ClassStats::default() {
                continue;
            }
            let entry = match self.class_index(src.name) {
                Some(i) => &mut self.by_class[i],
                None => {
                    self.by_class.push(ClassEntry {
                        name: src.name,
                        totals: ClassStats::default(),
                        per_sender: Vec::new(),
                    });
                    self.by_class.last_mut().expect("just pushed")
                }
            };
            entry.totals.messages += src.totals.messages;
            entry.totals.bytes += src.totals.bytes;
            if entry.per_sender.len() < src.per_sender.len() {
                entry.per_sender.resize(src.per_sender.len(), ClassStats::default());
            }
            for (d, s) in entry.per_sender.iter_mut().zip(&src.per_sender) {
                d.messages += s.messages;
                d.bytes += s.bytes;
            }
        }
        for (name, n) in &other.events {
            *self.events.entry(name).or_insert(0) += n;
        }
    }

    pub(crate) fn record_send(&mut self, from: NodeId, to: NodeId, bytes: usize, class: &'static str) {
        self.total_messages += 1;
        self.total_bytes += bytes as u64;
        self.per_node_sent[from.0] += bytes as u64;
        self.per_node_received[to.0] += bytes as u64;
        let n = self.per_node_sent.len();
        let entry = match self.class_index(class) {
            Some(i) => &mut self.by_class[i],
            None => {
                self.by_class.push(ClassEntry {
                    name: class,
                    totals: ClassStats::default(),
                    per_sender: vec![ClassStats::default(); n],
                });
                self.by_class.last_mut().expect("just pushed")
            }
        };
        entry.totals.messages += 1;
        entry.totals.bytes += bytes as u64;
        let ps = &mut entry.per_sender[from.0];
        ps.messages += 1;
        ps.bytes += bytes as u64;
    }

    /// Index of `class` in `by_class`, comparing pointers before contents:
    /// class names come from `Message::class` returning the same `&'static`
    /// literal every call, so the pointer test almost always decides.
    fn class_index(&self, class: &str) -> Option<usize> {
        self.by_class
            .iter()
            .position(|e| std::ptr::eq(e.name, class) || e.name == class)
    }

    /// Records a multicast of one `bytes`-sized message from `from` to every
    /// node in `to` as a single aggregated update — observably identical to
    /// calling [`NetStats::record_send`] once per recipient (every counter
    /// lands on the same final value), but the totals, per-sender, and class
    /// counters are each touched once per batch instead of once per
    /// recipient. Only the per-recipient `per_node_received` column still
    /// needs a loop, and that loop touches nothing else.
    pub(crate) fn record_multicast(
        &mut self,
        from: NodeId,
        to: &[NodeId],
        bytes: usize,
        class: &'static str,
    ) {
        if to.is_empty() {
            return;
        }
        let count = to.len() as u64;
        let batch_bytes = count * bytes as u64;
        self.total_messages += count;
        self.total_bytes += batch_bytes;
        self.per_node_sent[from.0] += batch_bytes;
        for t in to {
            self.per_node_received[t.0] += bytes as u64;
        }
        let n = self.per_node_sent.len();
        let entry = match self.class_index(class) {
            Some(i) => &mut self.by_class[i],
            None => {
                self.by_class.push(ClassEntry {
                    name: class,
                    totals: ClassStats::default(),
                    per_sender: vec![ClassStats::default(); n],
                });
                self.by_class.last_mut().expect("just pushed")
            }
        };
        entry.totals.messages += count;
        entry.totals.bytes += batch_bytes;
        let ps = &mut entry.per_sender[from.0];
        ps.messages += count;
        ps.bytes += batch_bytes;
    }

    pub(crate) fn record_drop(&mut self, cause: DropCause) {
        self.dropped[cause.index()] += 1;
    }

    pub(crate) fn record_event(&mut self, name: &'static str, n: u64) {
        *self.events.entry(name).or_insert(0) += n;
    }

    /// Total messages sent (whether or not delivered).
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Total bytes sent across the network.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Messages lost to drops, partitions, or dead destinations (all
    /// causes combined).
    pub fn dropped_messages(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Messages lost to one specific cause.
    pub fn dropped_by_cause(&self, cause: DropCause) -> u64 {
        self.dropped[cause.index()]
    }

    /// Iterates over `(cause, count)` pairs in [`DropCause::ALL`] order,
    /// including zero counts.
    pub fn drops_by_cause(&self) -> impl Iterator<Item = (DropCause, u64)> + '_ {
        DropCause::ALL.iter().map(|&c| (c, self.dropped[c.index()]))
    }

    /// Bytes sent by `node`.
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.per_node_sent[node.0]
    }

    /// Bytes addressed to `node`.
    pub fn received_by(&self, node: NodeId) -> u64 {
        self.per_node_received[node.0]
    }

    /// Counters for one message class (zero counters if never seen).
    pub fn class(&self, name: &str) -> ClassStats {
        self.class_index(name).map(|i| self.by_class[i].totals).unwrap_or_default()
    }

    /// Iterates over `(class, counters)` pairs in name order.
    pub fn classes(&self) -> impl Iterator<Item = (&'static str, ClassStats)> + '_ {
        let mut sorted: Vec<_> = self.by_class.iter().map(|e| (e.name, e.totals)).collect();
        sorted.sort_unstable_by_key(|&(name, _)| name);
        sorted.into_iter()
    }

    /// Counters for one message class restricted to messages sent by
    /// `node` (zero counters if never seen). Chaos scenarios use this for
    /// per-node retry accounting — e.g. "which primaries re-routed shares".
    pub fn class_sent_by(&self, node: NodeId, name: &str) -> ClassStats {
        self.class_index(name)
            .and_then(|i| self.by_class[i].per_sender.get(node.0).copied())
            .unwrap_or_default()
    }

    /// Count of one named protocol event (zero if never recorded).
    ///
    /// Protocol code bumps these through [`crate::Context::count`]; the
    /// re-push machinery uses them to expose its per-cause costs
    /// (`repush/resend`, `repush/recovered`, `repush/exhausted`) without
    /// every protocol growing its own accessor surface.
    pub fn event(&self, name: &str) -> u64 {
        self.events.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(event, count)` pairs in name order.
    pub fn events(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.events.iter().map(|(k, v)| (*k, *v))
    }

    /// Resets every counter to zero (e.g. between warm-up and measurement).
    pub fn reset(&mut self) {
        let n = self.per_node_sent.len();
        *self = NetStats::new(n);
    }

    /// Zeroes every counter in place, keeping allocations — the per-node
    /// vectors and each class's per-sender table — so a per-domain
    /// accumulator can be reused across epochs without reallocating
    /// `O(nodes)` storage. Class entries stay in `by_class` with zero
    /// totals; [`NetStats::merge`] skips them, so they are invisible
    /// downstream.
    pub(crate) fn clear_for_reuse(&mut self) {
        self.total_messages = 0;
        self.total_bytes = 0;
        self.dropped = [0; 5];
        self.per_node_sent.fill(0);
        self.per_node_received.fill(0);
        for e in &mut self.by_class {
            e.totals = ClassStats::default();
            e.per_sender.fill(ClassStats::default());
        }
        self.events.clear();
    }

    /// Whether nothing has been recorded since construction or the last
    /// clear. Every record path bumps `total_messages`, a drop counter, or
    /// an event, so this is a three-field check rather than an `O(nodes)`
    /// scan — cheap enough to gate a merge on.
    pub(crate) fn is_untouched(&self) -> bool {
        self.total_messages == 0 && self.dropped == [0; 5] && self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut s = NetStats::new(3);
        s.record_send(NodeId(0), NodeId(1), 100, "prepare");
        s.record_send(NodeId(0), NodeId(2), 50, "prepare");
        s.record_send(NodeId(1), NodeId(0), 10, "commit");
        s.record_drop(DropCause::Partition);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 160);
        assert_eq!(s.dropped_messages(), 1);
        assert_eq!(s.sent_by(NodeId(0)), 150);
        assert_eq!(s.received_by(NodeId(0)), 10);
        assert_eq!(s.class("prepare"), ClassStats { messages: 2, bytes: 150 });
        assert_eq!(s.class("unknown"), ClassStats::default());
        assert_eq!(s.classes().count(), 2);
    }

    #[test]
    fn record_multicast_matches_send_loop() {
        let recipients = [NodeId(1), NodeId(2), NodeId(3), NodeId(1)];
        let mut looped = NetStats::new(4);
        for &t in &recipients {
            looped.record_send(NodeId(0), t, 100, "prepare");
        }
        looped.record_send(NodeId(2), NodeId(0), 10, "commit");
        let mut batched = NetStats::new(4);
        batched.record_multicast(NodeId(0), &recipients, 100, "prepare");
        batched.record_send(NodeId(2), NodeId(0), 10, "commit");
        assert_eq!(looped.total_messages(), batched.total_messages());
        assert_eq!(looped.total_bytes(), batched.total_bytes());
        for i in 0..4 {
            assert_eq!(looped.sent_by(NodeId(i)), batched.sent_by(NodeId(i)), "sent {i}");
            assert_eq!(looped.received_by(NodeId(i)), batched.received_by(NodeId(i)), "recv {i}");
            assert_eq!(
                looped.class_sent_by(NodeId(i), "prepare"),
                batched.class_sent_by(NodeId(i), "prepare"),
                "class sent {i}"
            );
        }
        assert_eq!(looped.class("prepare"), batched.class("prepare"));
        assert_eq!(looped.class("commit"), batched.class("commit"));
        // Empty recipient lists are a no-op, not a zero-class registration.
        let before = batched.classes().count();
        batched.record_multicast(NodeId(0), &[], 64, "prepare");
        assert_eq!(batched.classes().count(), before);
    }

    #[test]
    fn drops_split_by_cause() {
        let mut s = NetStats::new(2);
        s.record_drop(DropCause::NodeDown);
        s.record_drop(DropCause::NodeDown);
        s.record_drop(DropCause::Random);
        assert_eq!(s.dropped_messages(), 3);
        assert_eq!(s.dropped_by_cause(DropCause::NodeDown), 2);
        assert_eq!(s.dropped_by_cause(DropCause::Random), 1);
        assert_eq!(s.dropped_by_cause(DropCause::Partition), 0);
        let collected: Vec<u64> = s.drops_by_cause().map(|(_, n)| n).collect();
        assert_eq!(collected, vec![2, 0, 1, 0, 0]);
    }

    #[test]
    fn per_node_class_counters() {
        let mut s = NetStats::new(3);
        s.record_send(NodeId(0), NodeId(1), 100, "prepare");
        s.record_send(NodeId(0), NodeId(2), 50, "prepare");
        s.record_send(NodeId(1), NodeId(0), 10, "prepare");
        assert_eq!(s.class_sent_by(NodeId(0), "prepare"), ClassStats { messages: 2, bytes: 150 });
        assert_eq!(s.class_sent_by(NodeId(1), "prepare"), ClassStats { messages: 1, bytes: 10 });
        assert_eq!(s.class_sent_by(NodeId(2), "prepare"), ClassStats::default());
        assert_eq!(s.class_sent_by(NodeId(0), "unknown"), ClassStats::default());
    }

    #[test]
    fn reset_clears() {
        let mut s = NetStats::new(2);
        s.record_send(NodeId(0), NodeId(1), 5, "x");
        s.record_event("ev", 1);
        s.reset();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.sent_by(NodeId(0)), 0);
        assert_eq!(s.classes().count(), 0);
        assert_eq!(s.event("ev"), 0);
    }

    #[test]
    fn clear_for_reuse_keeps_zeroed_classes_invisible_to_merge() {
        let mut acc = NetStats::accumulator(2);
        acc.record_send(NodeId(0), NodeId(1), 5, "x");
        acc.record_event("ev", 1);
        acc.record_drop(DropCause::Random);
        assert!(!acc.is_untouched());
        acc.clear_for_reuse();
        assert!(acc.is_untouched());
        assert_eq!(acc.total_bytes(), 0);
        assert_eq!(acc.sent_by(NodeId(0)), 0);
        assert_eq!(acc.class_sent_by(NodeId(0), "x"), ClassStats::default());
        // Merging a cleared accumulator must not register its zeroed class.
        let mut global = NetStats::new(2);
        global.merge(&acc);
        assert_eq!(global.classes().count(), 0);
        assert_eq!(global.total_messages(), 0);
        // Reuse after clearing lands in the retained tables correctly.
        acc.record_send(NodeId(1), NodeId(0), 7, "x");
        global.merge(&acc);
        assert_eq!(global.class("x"), ClassStats { messages: 1, bytes: 7 });
        assert_eq!(global.class_sent_by(NodeId(1), "x"), ClassStats { messages: 1, bytes: 7 });
    }

    #[test]
    fn merge_matches_single_accumulator() {
        // Record the same operation stream into one global accumulator and
        // into three per-domain partials merged in a scrambled order: every
        // readable counter must agree.
        let ops: [(usize, usize, usize, &'static str); 6] = [
            (0, 1, 100, "prepare"),
            (2, 0, 50, "commit"),
            (1, 2, 10, "prepare"),
            (3, 1, 70, "gossip"),
            (0, 3, 5, "commit"),
            (2, 3, 25, "gossip"),
        ];
        let mut global = NetStats::new(4);
        let mut parts = [NetStats::accumulator(4), NetStats::accumulator(4), NetStats::accumulator(4)];
        for (i, &(f, t, b, c)) in ops.iter().enumerate() {
            global.record_send(NodeId(f), NodeId(t), b, c);
            parts[i % 3].record_send(NodeId(f), NodeId(t), b, c);
        }
        global.record_multicast(NodeId(1), &[NodeId(0), NodeId(2)], 40, "prepare");
        parts[2].record_multicast(NodeId(1), &[NodeId(0), NodeId(2)], 40, "prepare");
        global.record_drop(DropCause::Random);
        global.record_drop(DropCause::NodeDown);
        parts[0].record_drop(DropCause::Random);
        parts[1].record_drop(DropCause::NodeDown);
        global.record_event("repush/resend", 2);
        parts[0].record_event("repush/resend", 1);
        parts[2].record_event("repush/resend", 1);
        // Merge in non-domain order to prove commutativity.
        let mut merged = NetStats::accumulator(4);
        for i in [2, 0, 1] {
            merged.merge(&parts[i]);
        }
        assert_eq!(merged.total_messages(), global.total_messages());
        assert_eq!(merged.total_bytes(), global.total_bytes());
        for (c, n) in global.drops_by_cause() {
            assert_eq!(merged.dropped_by_cause(c), n, "{c:?}");
        }
        for i in 0..4 {
            assert_eq!(merged.sent_by(NodeId(i)), global.sent_by(NodeId(i)), "sent {i}");
            assert_eq!(merged.received_by(NodeId(i)), global.received_by(NodeId(i)), "recv {i}");
            for class in ["prepare", "commit", "gossip"] {
                assert_eq!(
                    merged.class_sent_by(NodeId(i), class),
                    global.class_sent_by(NodeId(i), class),
                    "class {class} sent {i}"
                );
            }
        }
        let a: Vec<_> = merged.classes().collect();
        let b: Vec<_> = global.classes().collect();
        assert_eq!(a, b);
        let ea: Vec<_> = merged.events().collect();
        let eb: Vec<_> = global.events().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn merge_handles_short_and_empty_accumulators() {
        // A drop-only accumulator carries no per-node vectors at all; the
        // merged result must still line up node-indexed counters correctly.
        let mut base = NetStats::new(3);
        base.record_send(NodeId(0), NodeId(2), 10, "x");
        let mut drops_only = NetStats::accumulator(0);
        drops_only.record_drop(DropCause::LinkFlap);
        drops_only.record_event("ev", 3);
        base.merge(&drops_only);
        assert_eq!(base.dropped_by_cause(DropCause::LinkFlap), 1);
        assert_eq!(base.event("ev"), 3);
        assert_eq!(base.sent_by(NodeId(0)), 10);
        // Merging a wider accumulator into a narrower one grows it.
        let mut narrow = NetStats::accumulator(0);
        narrow.merge(&base);
        assert_eq!(narrow.sent_by(NodeId(0)), 10);
        assert_eq!(narrow.received_by(NodeId(2)), 10);
        assert_eq!(narrow.class("x"), ClassStats { messages: 1, bytes: 10 });
    }

    #[test]
    fn event_counters_accumulate() {
        let mut s = NetStats::new(1);
        s.record_event("repush/resend", 1);
        s.record_event("repush/resend", 2);
        s.record_event("repush/exhausted", 1);
        assert_eq!(s.event("repush/resend"), 3);
        assert_eq!(s.event("repush/exhausted"), 1);
        assert_eq!(s.event("unknown"), 0);
        let all: Vec<_> = s.events().collect();
        assert_eq!(all, vec![("repush/exhausted", 1), ("repush/resend", 3)]);
    }
}
