//! Simulated time.
//!
//! The simulator's clock advances only when events fire, so protocol
//! latencies are exact functions of the configured topology — never of host
//! scheduling. Resolution is one microsecond, comfortably below the WAN
//! latencies (~100 ms, §4.4.5) the paper reasons about.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future (useful as an "off" deadline).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Constructs a duration from fractional seconds (rounds to µs).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative");
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    /// Microseconds in this duration.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scales the duration by a non-negative factor.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(100);
        assert_eq!(t.as_millis(), 100);
        assert_eq!(t.as_micros(), 100_000);
        let t2 = t + SimDuration::from_secs(1);
        assert_eq!(t2.saturating_since(t), SimDuration::from_secs(1));
        assert_eq!(t.saturating_since(t2), SimDuration::ZERO);
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.1).as_millis(), 100);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_millis(10).mul_f64(2.5), SimDuration::from_millis(25));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::ZERO + SimDuration::from_micros(1));
        assert!(SimTime::MAX > SimTime::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.500000s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
