//! Shared deployment geometry: node-id block allocation and
//! dissemination-tree indexing for two-tier clusters.
//!
//! Every harness in the workspace lays out the same shape — one or more
//! consensus rings of equal size, then a block of tree-organized
//! secondaries, then clients — and each used to recompute the id ranges
//! and binary-heap tree arithmetic by hand. [`ClusterSpec`] is the single
//! source of that geometry, so the replica harness, the consensus tier
//! harness, the chaos runner, the workload generator, and the benches all
//! drive one deployment code path.
//!
//! The layout is purely positional: ring `r` occupies ids
//! `[r·ring_size, (r+1)·ring_size)`, secondaries follow all rings, clients
//! come last. With `rings = 1` this is exactly the historical single-ring
//! layout, which the pinned golden traces and chaos fingerprints depend
//! on.

use crate::time::SimDuration;
use crate::topology::{NodeId, Topology};

/// Node-count shape of a cluster: `rings` consensus rings of `ring_size`
/// members each, `secondaries` tree replicas, `clients` submitters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Number of independent consensus rings.
    pub rings: usize,
    /// Members per ring (`3m + 1` for a PBFT tier).
    pub ring_size: usize,
    /// Secondary replicas, organized as one binary dissemination tree.
    pub secondaries: usize,
    /// Update-submitting clients.
    pub clients: usize,
}

/// Above this many nodes, [`ClusterSpec::mesh`] switches from an explicit
/// full mesh to the implicit [`Topology::uniform_mesh`] — identical
/// latencies, O(n) instead of O(n²) memory.
const DENSE_MESH_LIMIT: usize = 1024;

impl ClusterSpec {
    /// Total node count.
    pub fn total(&self) -> usize {
        self.rings * self.ring_size + self.secondaries + self.clients
    }

    /// The contiguous domain assignment the parallel scheduler uses for
    /// this deployment at `threads` workers (`domains[i]` = the domain of
    /// node `i`). Node ids are laid out positionally — ring replicas
    /// first, then tree-ordered secondaries, then clients — so contiguous
    /// blocks keep ring peers and tree neighbours, the heaviest-traffic
    /// pairs, inside one domain wherever the block boundaries allow.
    pub fn domains(&self, threads: usize) -> Vec<u32> {
        crate::engine::contiguous_domains(self.total(), threads)
    }

    /// Members of ring `r` (tier order).
    pub fn ring(&self, r: usize) -> Vec<NodeId> {
        assert!(r < self.rings, "ring {r} out of range ({} rings)", self.rings);
        (r * self.ring_size..(r + 1) * self.ring_size).map(NodeId).collect()
    }

    /// All ring members, ring-major.
    pub fn all_ring_members(&self) -> Vec<NodeId> {
        (0..self.rings * self.ring_size).map(NodeId).collect()
    }

    /// The secondary block (tree order: index 0 is the root).
    pub fn secondaries(&self) -> Vec<NodeId> {
        let base = self.rings * self.ring_size;
        (base..base + self.secondaries).map(NodeId).collect()
    }

    /// The client block.
    pub fn clients(&self) -> Vec<NodeId> {
        let base = self.rings * self.ring_size + self.secondaries;
        (base..self.total()).map(NodeId).collect()
    }

    /// Uniform-latency any-to-any topology over the whole cluster. Small
    /// clusters get the explicit [`Topology::full_mesh`] (bit-compatible
    /// with every pinned schedule); large ones the implicit
    /// latency-identical [`Topology::uniform_mesh`].
    pub fn mesh(&self, latency: SimDuration) -> Topology {
        if self.total() <= DENSE_MESH_LIMIT {
            Topology::full_mesh(self.total(), latency)
        } else {
            Topology::uniform_mesh(self.total(), latency)
        }
    }
}

/// Parent of tree slot `j` in the binary-heap dissemination tree; `None`
/// for the root (whose parent is outside the secondary block).
pub fn tree_parent(j: usize) -> Option<usize> {
    (j > 0).then(|| (j - 1) / 2)
}

/// Grandparent of tree slot `j`; `None` when the parent is the root or
/// `j` is the root.
pub fn tree_grandparent(j: usize) -> Option<usize> {
    tree_parent(j).and_then(tree_parent)
}

/// The other child of `j`'s parent, when it exists within a tree of `s`
/// slots.
pub fn tree_sibling(j: usize, s: usize) -> Option<usize> {
    if j == 0 {
        return None;
    }
    let sib = if j % 2 == 1 { j + 1 } else { j - 1 };
    (sib < s).then_some(sib)
}

/// Children of tree slot `j` within a tree of `s` slots.
pub fn tree_children(j: usize, s: usize) -> impl Iterator<Item = usize> {
    [2 * j + 1, 2 * j + 2].into_iter().filter(move |&c| c < s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_ring_layout_matches_historical_ranges() {
        let spec = ClusterSpec { rings: 1, ring_size: 4, secondaries: 6, clients: 1 };
        assert_eq!(spec.total(), 11);
        assert_eq!(spec.ring(0), (0..4).map(NodeId).collect::<Vec<_>>());
        assert_eq!(spec.secondaries(), (4..10).map(NodeId).collect::<Vec<_>>());
        assert_eq!(spec.clients(), vec![NodeId(10)]);
    }

    #[test]
    fn rings_are_disjoint_and_contiguous() {
        let spec = ClusterSpec { rings: 4, ring_size: 4, secondaries: 3, clients: 2 };
        let all = spec.all_ring_members();
        assert_eq!(all.len(), 16);
        for r in 0..4 {
            assert_eq!(spec.ring(r), all[r * 4..(r + 1) * 4]);
        }
        assert_eq!(spec.secondaries()[0], NodeId(16));
        assert_eq!(spec.clients()[0], NodeId(19));
    }

    #[test]
    fn tree_geometry_is_a_binary_heap() {
        assert_eq!(tree_parent(0), None);
        assert_eq!(tree_parent(1), Some(0));
        assert_eq!(tree_parent(2), Some(0));
        assert_eq!(tree_parent(5), Some(2));
        assert_eq!(tree_grandparent(0), None);
        assert_eq!(tree_grandparent(1), None);
        assert_eq!(tree_grandparent(5), Some(0));
        assert_eq!(tree_sibling(0, 6), None);
        assert_eq!(tree_sibling(1, 6), Some(2));
        assert_eq!(tree_sibling(2, 6), Some(1));
        assert_eq!(tree_sibling(5, 6), None, "right sibling out of range");
        assert_eq!(tree_children(0, 6).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(tree_children(2, 6).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn big_cluster_mesh_is_implicit_but_latency_identical() {
        let lat = SimDuration::from_millis(20);
        let big = ClusterSpec { rings: 16, ring_size: 4, secondaries: 5000, clients: 8 };
        let t = big.mesh(lat);
        assert_eq!(t.len(), big.total());
        assert_eq!(t.dist(NodeId(0), NodeId(5000)), Some(lat));
        assert_eq!(t.hops(NodeId(1), NodeId(2)), Some(1));
        assert!(t.is_connected());
        let small = ClusterSpec { rings: 1, ring_size: 4, secondaries: 6, clients: 1 };
        let ts = small.mesh(lat);
        assert_eq!(ts.edge_count(), 11 * 10 / 2, "small clusters keep the explicit mesh");
    }

    #[test]
    fn domain_assignment_is_contiguous_and_covers_every_node() {
        let spec = ClusterSpec { rings: 4, ring_size: 4, secondaries: 100, clients: 4 };
        let domains = spec.domains(8);
        assert_eq!(domains.len(), spec.total());
        // Contiguous blocks: domain ids are non-decreasing along the
        // positional layout, and all 8 domains are populated.
        assert!(domains.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(domains.last(), Some(&7));
        // A whole ring (4 consecutive nodes in a ~15-node block) stays in
        // one domain here: ring 0 occupies nodes 0..4.
        let ring0: Vec<u32> = spec.ring(0).iter().map(|n| domains[n.0]).collect();
        assert!(ring0.windows(2).all(|w| w[0] == w[1]), "ring 0 split: {ring0:?}");
        // One worker degenerates to a single domain.
        assert!(spec.domains(1).iter().all(|&d| d == 0));
    }
}
