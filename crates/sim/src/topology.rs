//! Network topologies for the simulated wide area.
//!
//! A topology is an undirected weighted graph: vertices are physical
//! servers, edge weights are one-way link latencies. Messages between
//! non-adjacent nodes travel at the shortest-path latency — this models the
//! paper's assumption that OceanStore "does not supplant IP routing, but
//! rather provides additional functionality on top of IP" (§4.3.1):
//! any-to-any unicast exists, while *overlay* protocols (attenuated Bloom
//! filters, the Plaxton mesh) make hop-by-hop decisions using
//! [`Topology::neighbors`].
//!
//! Shortest-path latencies and hop counts are computed lazily per source
//! and cached behind a lock, so large meshes only pay for the sources they
//! actually use.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::Rng;

use crate::time::SimDuration;

/// Identifies a node (server or client host) in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An undirected latency-weighted graph of nodes.
pub struct Topology {
    /// adjacency[u] = (v, one-way latency)
    adj: Vec<Vec<(NodeId, SimDuration)>>,
    /// Set for [`Topology::uniform_mesh`]: every distinct pair is linked at
    /// this latency, but no adjacency/cache memory is materialized —
    /// `dist`/`hops` answer in O(1). A 10k-node full mesh would otherwise
    /// cost ~10⁸ adjacency entries plus an O(n) Dijkstra row per warmed
    /// source, which is what caps deployment size.
    uniform: Option<SimDuration>,
    /// Optional 2-D embedding (geometric topologies keep it for debugging
    /// and for latency-proportional placement experiments).
    positions: Option<Vec<(f64, f64)>>,
    /// Per-source shortest-path latency cache (µs); `u64::MAX` = unreachable.
    dist_cache: Mutex<Vec<Option<Vec<u64>>>>,
    /// Per-source hop-count cache; `u32::MAX` = unreachable.
    hop_cache: Mutex<Vec<Option<Vec<u32>>>>,
    /// How many Dijkstra sweeps [`Topology::dist`] has run. The cache
    /// guarantees at most one per source; this counter lets tests prove it
    /// (see `tests/one_dijkstra_per_source.rs` in this crate).
    dijkstra_runs: AtomicU64,
    /// How many BFS sweeps have run ([`Topology::hops`] plus one per
    /// [`Topology::is_connected`] call, which bypasses the cache).
    bfs_runs: AtomicU64,
}

/// Deep copy, *including* the warmed shortest-path and hop caches.
/// Benchmarks and replay harnesses build one topology, warm its caches,
/// and clone it per run so repeated runs never re-pay Dijkstra sweeps.
impl Clone for Topology {
    fn clone(&self) -> Self {
        Topology {
            adj: self.adj.clone(),
            uniform: self.uniform,
            positions: self.positions.clone(),
            dist_cache: Mutex::new(self.dist_cache.lock().clone()),
            hop_cache: Mutex::new(self.hop_cache.lock().clone()),
            dijkstra_runs: AtomicU64::new(self.dijkstra_runs.load(Ordering::Relaxed)),
            bfs_runs: AtomicU64::new(self.bfs_runs.load(Ordering::Relaxed)),
        }
    }
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Topology")
            .field("nodes", &self.len())
            .field("edges", &self.edge_count())
            .finish()
    }
}

impl Topology {
    fn with_adj(adj: Vec<Vec<(NodeId, SimDuration)>>, positions: Option<Vec<(f64, f64)>>) -> Self {
        let n = adj.len();
        Topology {
            adj,
            uniform: None,
            positions,
            dist_cache: Mutex::new(vec![None; n]),
            hop_cache: Mutex::new(vec![None; n]),
            dijkstra_runs: AtomicU64::new(0),
            bfs_runs: AtomicU64::new(0),
        }
    }

    /// Builds an empty-edged topology of `n` isolated nodes; add edges with
    /// [`TopologyBuilder`].
    pub fn builder(n: usize) -> TopologyBuilder {
        TopologyBuilder { adj: vec![Vec::new(); n], positions: None }
    }

    /// Complete graph on `n` nodes with uniform one-way `latency`.
    ///
    /// This is the wide-area model of §4.4.5 ("each message takes 100 ms").
    pub fn full_mesh(n: usize, latency: SimDuration) -> Self {
        let mut b = Self::builder(n);
        for u in 0..n {
            for v in (u + 1)..n {
                b.edge(NodeId(u), NodeId(v), latency);
            }
        }
        b.build()
    }

    /// Ring of `n` nodes with uniform edge `latency`.
    pub fn ring(n: usize, latency: SimDuration) -> Self {
        let mut b = Self::builder(n);
        for u in 0..n {
            b.edge(NodeId(u), NodeId((u + 1) % n), latency);
        }
        b.build()
    }

    /// Complete graph on `n` nodes with uniform one-way `latency`, stored
    /// implicitly: `dist`/`hops` answer in O(1) with no adjacency lists or
    /// per-source caches, so meshes of 10k+ nodes cost O(n) memory instead
    /// of O(n²). Latency-identical to [`Topology::full_mesh`] for every
    /// pair, hence schedule-identical for any protocol that routes by
    /// [`Topology::dist`]; [`Topology::neighbors`] reports no overlay
    /// edges, so hop-by-hop overlay protocols should keep `full_mesh`.
    pub fn uniform_mesh(n: usize, latency: SimDuration) -> Self {
        let mut t = Self::with_adj(vec![Vec::new(); n], None);
        t.uniform = Some(latency);
        t
    }

    /// `w × h` grid with uniform edge `latency`.
    pub fn grid(w: usize, h: usize, latency: SimDuration) -> Self {
        let mut b = Self::builder(w * h);
        for y in 0..h {
            for x in 0..w {
                let u = NodeId(y * w + x);
                if x + 1 < w {
                    b.edge(u, NodeId(y * w + x + 1), latency);
                }
                if y + 1 < h {
                    b.edge(u, NodeId((y + 1) * w + x), latency);
                }
            }
        }
        b.build()
    }

    /// Random geometric graph: `n` nodes placed uniformly in the unit
    /// square; nodes within `radius` are linked, with latency proportional
    /// to Euclidean distance scaled so that a full unit of distance costs
    /// `unit_latency`. Connectivity is guaranteed by afterwards linking each
    /// connected component to its nearest neighbour component.
    pub fn random_geometric<R: Rng>(
        n: usize,
        radius: f64,
        unit_latency: SimDuration,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0, "topology needs at least one node");
        let pts: Vec<(f64, f64)> =
            (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
        let lat = |a: (f64, f64), b: (f64, f64)| {
            let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
            // Minimum 1µs so no edge is free.
            SimDuration::from_micros((d * unit_latency.as_micros() as f64).round().max(1.0) as u64)
        };
        let mut b = Self::builder(n);
        b.positions = Some(pts.clone());
        for u in 0..n {
            for v in (u + 1)..n {
                let d = ((pts[u].0 - pts[v].0).powi(2) + (pts[u].1 - pts[v].1).powi(2)).sqrt();
                if d <= radius {
                    b.edge(NodeId(u), NodeId(v), lat(pts[u], pts[v]));
                }
            }
        }
        // Stitch components together (union-find).
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for (u, nbrs) in b.adj.iter().enumerate() {
            for (v, _) in nbrs {
                let (ru, rv) = (find(&mut parent, u), find(&mut parent, v.0));
                if ru != rv {
                    parent[ru] = rv;
                }
            }
        }
        loop {
            let roots: Vec<usize> =
                (0..n).filter(|&x| find(&mut parent, x) == x).collect();
            if roots.len() <= 1 {
                break;
            }
            // Link the two closest nodes in different components.
            let mut best: Option<(usize, usize, f64)> = None;
            for u in 0..n {
                for v in (u + 1)..n {
                    if find(&mut parent, u) != find(&mut parent, v) {
                        let d = ((pts[u].0 - pts[v].0).powi(2) + (pts[u].1 - pts[v].1).powi(2))
                            .sqrt();
                        if best.is_none_or(|(_, _, bd)| d < bd) {
                            best = Some((u, v, d));
                        }
                    }
                }
            }
            let (u, v, _) = best.expect("more than one component implies a crossing pair");
            b.edge(NodeId(u), NodeId(v), lat(pts[u], pts[v]));
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            parent[ru] = rv;
        }
        b.build()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        if self.uniform.is_some() {
            return self.adj.len() * self.adj.len().saturating_sub(1) / 2;
        }
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Direct neighbours of `u` with link latencies.
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, SimDuration)] {
        &self.adj[u.0]
    }

    /// 2-D position of `u`, when the topology has an embedding.
    pub fn position(&self, u: NodeId) -> Option<(f64, f64)> {
        self.positions.as_ref().map(|p| p[u.0])
    }

    /// One-way shortest-path latency from `u` to `v` (the "IP distance" the
    /// paper's locality arguments use). `None` if unreachable.
    pub fn dist(&self, u: NodeId, v: NodeId) -> Option<SimDuration> {
        if u == v {
            return Some(SimDuration::ZERO);
        }
        if let Some(lat) = self.uniform {
            return (u.0 < self.adj.len() && v.0 < self.adj.len()).then_some(lat);
        }
        let mut cache = self.dist_cache.lock();
        if cache[u.0].is_none() {
            cache[u.0] = Some(self.dijkstra(u));
        }
        let d = cache[u.0].as_ref().expect("just filled")[v.0];
        (d != u64::MAX).then(|| SimDuration::from_micros(d))
    }

    /// Runs the Dijkstra sweep for every source now, so later
    /// [`Topology::dist`] calls — and calls on clones of this topology —
    /// are pure cache reads. Benchmarks warm once outside the timed
    /// region; simulations that only ever touch a few sources should skip
    /// this and keep the lazy per-source behaviour.
    pub fn warm_dist(&self) {
        let mut cache = self.dist_cache.lock();
        for u in 0..self.adj.len() {
            if cache[u].is_none() {
                cache[u] = Some(self.dijkstra(NodeId(u)));
            }
        }
    }

    /// Hop count of the shortest unweighted path from `u` to `v` (the
    /// attenuated-Bloom-filter distance metric, §4.3.2). `None` if
    /// unreachable.
    pub fn hops(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        if self.uniform.is_some() {
            return (u.0 < self.adj.len() && v.0 < self.adj.len()).then_some(1);
        }
        let mut cache = self.hop_cache.lock();
        if cache[u.0].is_none() {
            cache[u.0] = Some(self.bfs(u));
        }
        let h = cache[u.0].as_ref().expect("just filled")[v.0];
        (h != u32::MAX).then_some(h)
    }

    /// Minimum one-way latency over links that cross `groups` boundaries —
    /// the conservative PDES lookahead bound: any message between nodes in
    /// different groups travels a shortest path containing at least one
    /// crossing edge, so its latency is at least this value. `None` when no
    /// link crosses (the groups are network-isolated, i.e. unbounded
    /// lookahead). For a [`Topology::uniform_mesh`] every distinct pair is
    /// a crossing link, so the answer is the uniform latency in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `groups.len()` differs from the node count.
    pub fn min_cross_group_latency(&self, groups: &[u32]) -> Option<SimDuration> {
        assert_eq!(groups.len(), self.adj.len(), "one group per node");
        if let Some(lat) = self.uniform {
            let first = groups.first().copied().unwrap_or(0);
            return groups.iter().any(|&g| g != first).then_some(lat);
        }
        let mut best: Option<SimDuration> = None;
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &(v, lat) in nbrs {
                if groups[u] != groups[v.0] && best.is_none_or(|b| lat < b) {
                    best = Some(lat);
                }
            }
        }
        best
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() || self.uniform.is_some() {
            return true;
        }
        let reach = self.bfs(NodeId(0));
        reach.iter().all(|&h| h != u32::MAX)
    }

    /// Total Dijkstra sweeps run so far. The per-source cache bounds this by
    /// the number of distinct sources ever passed to [`Topology::dist`].
    pub fn dijkstra_runs(&self) -> u64 {
        self.dijkstra_runs.load(Ordering::Relaxed)
    }

    /// Total BFS sweeps run so far ([`Topology::hops`] cache fills plus
    /// [`Topology::is_connected`] calls).
    pub fn bfs_runs(&self) -> u64 {
        self.bfs_runs.load(Ordering::Relaxed)
    }

    fn dijkstra(&self, src: NodeId) -> Vec<u64> {
        self.dijkstra_runs.fetch_add(1, Ordering::Relaxed);
        let mut dist = vec![u64::MAX; self.adj.len()];
        dist[src.0] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, src.0)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, w) in &self.adj[u] {
                let nd = d.saturating_add(w.as_micros());
                if nd < dist[v.0] {
                    dist[v.0] = nd;
                    heap.push(Reverse((nd, v.0)));
                }
            }
        }
        dist
    }

    fn bfs(&self, src: NodeId) -> Vec<u32> {
        self.bfs_runs.fetch_add(1, Ordering::Relaxed);
        let mut hops = vec![u32::MAX; self.adj.len()];
        hops[src.0] = 0;
        let mut queue = std::collections::VecDeque::from([src.0]);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &self.adj[u] {
                if hops[v.0] == u32::MAX {
                    hops[v.0] = hops[u] + 1;
                    queue.push_back(v.0);
                }
            }
        }
        hops
    }
}

/// Incremental topology construction.
#[derive(Debug)]
pub struct TopologyBuilder {
    adj: Vec<Vec<(NodeId, SimDuration)>>,
    positions: Option<Vec<(f64, f64)>>,
}

impl TopologyBuilder {
    /// Adds an undirected edge (replacing any existing edge between the
    /// pair).
    ///
    /// # Panics
    ///
    /// Panics on a self-loop or an out-of-range endpoint.
    pub fn edge(&mut self, u: NodeId, v: NodeId, latency: SimDuration) -> &mut Self {
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(u.0 < self.adj.len() && v.0 < self.adj.len(), "node out of range");
        self.adj[u.0].retain(|(x, _)| *x != v);
        self.adj[v.0].retain(|(x, _)| *x != u);
        self.adj[u.0].push((v, latency));
        self.adj[v.0].push((u, latency));
        self
    }

    /// Finishes construction.
    pub fn build(self) -> Topology {
        Topology::with_adj(self.adj, self.positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const MS: fn(u64) -> SimDuration = SimDuration::from_millis;

    #[test]
    fn full_mesh_shape() {
        let t = Topology::full_mesh(5, MS(100));
        assert_eq!(t.len(), 5);
        assert_eq!(t.edge_count(), 10);
        assert_eq!(t.dist(NodeId(0), NodeId(4)), Some(MS(100)));
        assert_eq!(t.hops(NodeId(0), NodeId(4)), Some(1));
        assert!(t.is_connected());
    }

    #[test]
    fn ring_distances() {
        let t = Topology::ring(6, MS(10));
        // Opposite side of the ring: 3 hops either way.
        assert_eq!(t.hops(NodeId(0), NodeId(3)), Some(3));
        assert_eq!(t.dist(NodeId(0), NodeId(3)), Some(MS(30)));
        assert_eq!(t.dist(NodeId(0), NodeId(5)), Some(MS(10)));
    }

    #[test]
    fn grid_distances() {
        let t = Topology::grid(4, 4, MS(5));
        // Manhattan distance from corner to corner is 6 hops.
        assert_eq!(t.hops(NodeId(0), NodeId(15)), Some(6));
        assert_eq!(t.dist(NodeId(0), NodeId(15)), Some(MS(30)));
    }

    #[test]
    fn dist_to_self_is_zero() {
        let t = Topology::ring(4, MS(10));
        assert_eq!(t.dist(NodeId(2), NodeId(2)), Some(SimDuration::ZERO));
        assert_eq!(t.hops(NodeId(2), NodeId(2)), Some(0));
    }

    #[test]
    fn disconnected_pair() {
        let t = Topology::builder(3).build();
        assert_eq!(t.dist(NodeId(0), NodeId(1)), None);
        assert_eq!(t.hops(NodeId(0), NodeId(1)), None);
        assert!(!t.is_connected());
    }

    #[test]
    fn dijkstra_prefers_cheap_multihop() {
        // 0-1-2 cheap path vs 0-2 expensive direct edge.
        let mut b = Topology::builder(3);
        b.edge(NodeId(0), NodeId(1), MS(1));
        b.edge(NodeId(1), NodeId(2), MS(1));
        b.edge(NodeId(0), NodeId(2), MS(10));
        let t = b.build();
        assert_eq!(t.dist(NodeId(0), NodeId(2)), Some(MS(2)));
        // Hops still counts the direct edge as 1.
        assert_eq!(t.hops(NodeId(0), NodeId(2)), Some(1));
    }

    #[test]
    fn random_geometric_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Small radius: forces the component-stitching path.
        let t = Topology::random_geometric(50, 0.08, MS(100), &mut rng);
        assert_eq!(t.len(), 50);
        assert!(t.is_connected());
        // Determinism under the same seed.
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        let t2 = Topology::random_geometric(50, 0.08, MS(100), &mut rng2);
        assert_eq!(t.edge_count(), t2.edge_count());
    }

    #[test]
    fn geometric_latency_tracks_distance() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = Topology::random_geometric(30, 0.5, MS(100), &mut rng);
        for u in 0..t.len() {
            for &(v, lat) in t.neighbors(NodeId(u)) {
                let (a, b) = (t.position(NodeId(u)).unwrap(), t.position(v).unwrap());
                let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
                let expect = (d * MS(100).as_micros() as f64).round().max(1.0) as u64;
                assert_eq!(lat.as_micros(), expect);
            }
        }
    }

    #[test]
    fn edge_replacement() {
        let mut b = Topology::builder(2);
        b.edge(NodeId(0), NodeId(1), MS(10));
        b.edge(NodeId(0), NodeId(1), MS(5));
        let t = b.build();
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.dist(NodeId(0), NodeId(1)), Some(MS(5)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        Topology::builder(2).edge(NodeId(0), NodeId(0), MS(1));
    }

    #[test]
    fn min_cross_group_latency_is_the_lookahead_bound() {
        // Ring 0-1-2-3-0 with one cheap edge inside group 0 and crossing
        // edges of 10 ms and 7 ms: the lookahead is the cheapest *crossing*
        // edge, not the cheapest edge overall.
        let mut b = Topology::builder(4);
        b.edge(NodeId(0), NodeId(1), MS(1));
        b.edge(NodeId(1), NodeId(2), MS(10));
        b.edge(NodeId(2), NodeId(3), MS(2));
        b.edge(NodeId(3), NodeId(0), MS(7));
        let t = b.build();
        let groups = [0, 0, 1, 1];
        assert_eq!(t.min_cross_group_latency(&groups), Some(MS(7)));
        // Every cross-group shortest path respects the bound.
        for u in 0..4 {
            for v in 0..4 {
                if groups[u] != groups[v] {
                    assert!(t.dist(NodeId(u), NodeId(v)).unwrap() >= MS(7));
                }
            }
        }
        // One group: no crossing links.
        assert_eq!(t.min_cross_group_latency(&[0; 4]), None);
        // Isolated groups: unbounded lookahead.
        let iso = Topology::builder(2).build();
        assert_eq!(iso.min_cross_group_latency(&[0, 1]), None);
        // Uniform meshes answer in O(1).
        let u = Topology::uniform_mesh(100, MS(25));
        let mut g = vec![0u32; 100];
        g[50..].iter_mut().for_each(|x| *x = 1);
        assert_eq!(u.min_cross_group_latency(&g), Some(MS(25)));
        assert_eq!(u.min_cross_group_latency(&vec![0u32; 100]), None);
    }
}
