//! Hierarchical timer wheel.
//!
//! Timers used to live in the engine's global `BinaryHeap` alongside
//! message deliveries, which made every heap operation pay for the
//! (much more numerous, constantly re-armed) protocol timers —
//! heartbeats, retransmit deadlines, anti-entropy periods. This wheel
//! gives O(1) insert and near-O(1) extraction while preserving the
//! engine's determinism contract *exactly*: timers fire in `(at, seq)`
//! order, where `seq` is the engine's global insertion counter shared
//! with message events, so the merged event order is bit-for-bit what
//! the single-heap engine produced.
//!
//! Four levels of 64 slots at granularities 1 µs, 64 µs, 4096 µs and
//! ~0.26 s cover every deadline within ~16.7 simulated seconds of its
//! arming point; rarer far-future timers overflow into a small binary
//! heap. Slots track occupancy in a per-level `u64` bitmask so finding
//! the next armed slot is a rotate + trailing-zeros, not a scan.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS; // 64
const LEVELS: usize = 4;
/// Deadlines at least this far ahead of the wheel's clock overflow.
const HORIZON: u64 = 1 << (SLOT_BITS * LEVELS as u32); // 64^4 µs ≈ 16.7 s

/// One armed timer, as the engine sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TimerEntry {
    /// Absolute expiry in simulated microseconds.
    pub at: u64,
    /// Engine-global insertion sequence (shared with message events).
    pub seq: u64,
    /// Node whose `on_timer` runs.
    pub node: usize,
    /// Protocol-chosen timer tag.
    pub tag: u64,
}

/// What actually moves through slots, cascades, and the overflow heap: a
/// compact `(at, seq, slab)` key. The `(node, tag)` payload parks in the
/// wheel's slab until the key pops, so sorting a cohort or cascading a
/// far slot shuffles 24-byte keys instead of 32-byte entries. The slab
/// index never participates in ordering — `(at, seq)` is engine-unique.
type TimerKey = (u64, u64, u32);

/// One wheel slot: a sorted run of entries consumed front-to-back
/// (ladder-queue style).
///
/// Pushes append in O(1) and track whether the run is still ascending
/// by `(at, seq)` plus its exact minimum; the one `sort_unstable` is
/// deferred until the slot becomes the active extraction target (or is
/// cascaded), after which pops are O(1) cursor bumps. This shape is
/// what makes lockstep cohorts cheap — protocols routinely arm every
/// node's timer for the same instant, and those cohorts land in one
/// slot where a heap would pay O(log cohort) per element per level.
/// Better still, cascades emit in sorted order, so destination slots
/// receive already-ascending runs and steady-state re-sorts vanish.
/// `(at, seq)` keys are engine-unique, so extraction order stays total
/// and deterministic.
#[derive(Debug, Default, Clone)]
struct Slot {
    /// Live keys are `entries[head..]`.
    entries: Vec<TimerKey>,
    /// Consumed-prefix cursor; non-zero only while `sorted`.
    head: usize,
    /// Whether `entries[head..]` is ascending by `(at, seq)`.
    sorted: bool,
    /// Exact minimum `(at, seq)` over live keys; meaningless when empty.
    min: (u64, u64),
}

impl Slot {
    fn push(&mut self, k: TimerKey) {
        let key = (k.0, k.1);
        if self.is_empty() {
            self.entries.clear();
            self.head = 0;
            self.sorted = true;
            self.min = key;
        } else {
            if self.sorted {
                let last = self.entries.last().expect("non-empty");
                if key < (last.0, last.1) {
                    self.sorted = false;
                }
            }
            if key < self.min {
                self.min = key;
            }
        }
        self.entries.push(k);
    }

    /// Exact minimum key in O(1); the slot must be non-empty.
    fn min_key(&self) -> (u64, u64) {
        debug_assert!(!self.is_empty());
        self.min
    }

    /// Sorts the live run if appends broke its order. Amortized: a run is
    /// sorted at most once between becoming extraction-active and being
    /// drained, and already-ascending runs (the common case, since
    /// cascades emit in order) skip it entirely. Sorting the raw triple is
    /// the `(at, seq)` order: seqs are unique, so the slab index never
    /// breaks a tie.
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            debug_assert_eq!(self.head, 0, "consumption only starts once sorted");
            self.entries.sort_unstable();
            self.sorted = true;
        }
    }

    /// Removes and returns the minimum key; the slot must be non-empty.
    fn pop_min(&mut self) -> TimerKey {
        self.ensure_sorted();
        let k = self.entries[self.head];
        self.head += 1;
        if self.head == self.entries.len() {
            self.entries.clear();
            self.head = 0;
        } else {
            let next = &self.entries[self.head];
            self.min = (next.0, next.1);
        }
        k
    }

    fn is_empty(&self) -> bool {
        self.head == self.entries.len()
    }
}

/// Where the cached earliest entry lives.
#[derive(Debug, Clone, Copy)]
enum Source {
    Slot { level: usize, slot: usize },
    Overflow,
}

#[derive(Debug, Clone, Copy)]
struct Earliest {
    at: u64,
    seq: u64,
    source: Source,
}

/// Deterministic hierarchical timer wheel keyed on absolute `SimTime`
/// microseconds.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    /// `levels[l][s]` holds keys whose slot at level `l` is `s`.
    /// Order within a slot is irrelevant: extraction always selects the
    /// minimum `(at, seq)`.
    levels: Vec<Vec<Slot>>,
    /// Per-level slot-occupancy bitmask (bit `s` ⇔ slot `s` non-empty).
    occupied: [u64; LEVELS],
    /// Keys ≥ `HORIZON` ahead at arming time, ordered by `(at, seq)`.
    overflow: BinaryHeap<Reverse<TimerKey>>,
    /// `(node, tag)` payloads indexed by the key's slab slot. Contents are
    /// only meaningful while the slot's key is armed somewhere above.
    payloads: Vec<(usize, u64)>,
    /// Free slots in `payloads`, reused LIFO.
    free: Vec<u32>,
    /// The wheel's clock: never exceeds the earliest pending deadline.
    now: u64,
    len: usize,
    /// Cached earliest entry; `None` means "needs recompute".
    cached: Option<Earliest>,
    /// Per-level cached earliest: outer `None` = stale, inner `None` =
    /// level empty. A pop or cascade only stales the level it touched;
    /// inserts keep a fresh cache fresh in O(1). Recomputing the global
    /// earliest is then three cached compares plus one level rescan
    /// instead of four full bitmask walks.
    level_cache: [Option<Option<Earliest>>; LEVELS],
    /// Reusable cascade buffer so redistributing a slot neither drops the
    /// slot's capacity nor allocates a fresh vector each time.
    scratch: Vec<TimerKey>,
}

impl TimerWheel {
    pub(crate) fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS).map(|_| vec![Slot::default(); SLOTS]).collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            now: 0,
            len: 0,
            cached: None,
            level_cache: [Some(None); LEVELS],
            scratch: Vec::new(),
        }
    }

    /// Number of armed timers.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Advances the wheel clock to `t` (no-op if already past). The caller
    /// must guarantee every pending deadline is `>= t` — true for the engine
    /// clock, since events pop in time order.
    pub(crate) fn advance(&mut self, t: u64) {
        debug_assert!(self.cached.is_none_or(|c| c.at >= t));
        if t > self.now {
            self.now = t;
        }
    }

    /// Arms a timer. `at` must not precede the latest pop (the engine's
    /// clock is monotone, so this holds by construction).
    pub(crate) fn insert(&mut self, entry: TimerEntry) {
        debug_assert!(entry.at >= self.now, "timer armed in the past");
        self.len += 1;
        // Park the payload in the slab; only the compact key travels.
        let slab = match self.free.pop() {
            Some(slab) => {
                self.payloads[slab as usize] = (entry.node, entry.tag);
                slab
            }
            None => {
                let slab = u32::try_from(self.payloads.len())
                    .expect("more than u32::MAX armed timers");
                self.payloads.push((entry.node, entry.tag));
                slab
            }
        };
        // Keep the cache exact: a new minimum replaces it (seqs are unique,
        // so beating the cached key means *being* the new global earliest),
        // anything later leaves it valid.
        let beats =
            self.cached.is_some_and(|c| (entry.at, entry.seq) < (c.at, c.seq));
        let (at, seq) = (entry.at, entry.seq);
        let source = self.place((at, seq, slab));
        if beats {
            self.cached = Some(Earliest { at, seq, source });
        }
    }

    fn place(&mut self, key: TimerKey) -> Source {
        let (at, seq, _) = key;
        let dt = at - self.now;
        if dt >= HORIZON {
            self.overflow.push(Reverse(key));
            return Source::Overflow;
        }
        let level = (0..LEVELS)
            .find(|&l| dt < 1 << (SLOT_BITS * (l as u32 + 1)))
            .expect("dt < HORIZON");
        let slot = ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level][slot].push(key);
        self.occupied[level] |= 1 << slot;
        // A fresh level cache stays fresh: the new key either beats the
        // cached minimum or leaves it untouched. A stale cache stays stale.
        match self.level_cache[level] {
            Some(Some(b)) if (at, seq) < (b.at, b.seq) => {
                self.level_cache[level] =
                    Some(Some(Earliest { at, seq, source: Source::Slot { level, slot } }));
            }
            Some(None) => {
                self.level_cache[level] =
                    Some(Some(Earliest { at, seq, source: Source::Slot { level, slot } }));
            }
            _ => {}
        }
        Source::Slot { level, slot }
    }

    /// Minimum `(at, seq)` entry at `level`, if any. Served from the
    /// per-level cache when fresh; a rescan is one `Option` compare per
    /// occupied slot (≤ 64) thanks to the per-slot memoized minima, and
    /// needs no revolution bookkeeping: keys are absolute, so the smallest
    /// key wins regardless of which revolution mapped an entry into its
    /// slot.
    fn level_earliest(&mut self, level: usize) -> Option<Earliest> {
        if let Some(cached) = self.level_cache[level] {
            return cached;
        }
        let mut occ = self.occupied[level];
        let mut best: Option<Earliest> = None;
        while occ != 0 {
            let slot = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            let (at, seq) = self.levels[level][slot].min_key();
            if best.is_none_or(|b| (at, seq) < (b.at, b.seq)) {
                best = Some(Earliest { at, seq, source: Source::Slot { level, slot } });
            }
        }
        self.level_cache[level] = Some(best);
        best
    }

    /// `(at, seq)` of the earliest armed timer, or `None` when empty.
    /// Interior mutability in spirit: cascades far slots downward as a
    /// side effect, which never changes the observable firing order.
    pub(crate) fn peek(&mut self) -> Option<(u64, u64)> {
        if self.len == 0 {
            return None;
        }
        if let Some(c) = self.cached {
            return Some((c.at, c.seq));
        }
        loop {
            let mut best: Option<Earliest> = None;
            for level in 0..LEVELS {
                if let Some(e) = self.level_earliest(level) {
                    if best.is_none_or(|b| (e.at, e.seq) < (b.at, b.seq)) {
                        best = Some(e);
                    }
                    // A lower level's minimum can't be beaten by a higher
                    // level's only when it is before that level's whole
                    // window; cheap to just compare all four.
                }
            }
            if let Some(&Reverse((at, seq, _))) = self.overflow.peek() {
                if best.is_none_or(|b| (at, seq) < (b.at, b.seq)) {
                    best = Some(Earliest { at, seq, source: Source::Overflow });
                }
            }
            let best = best.expect("len > 0 implies an entry somewhere");
            match best.source {
                // Cascade: redistribute a due high-level slot into finer
                // levels. Only legal once the wheel clock has reached the
                // slot's covered window (`dt = at - now < 64^level` then
                // guarantees strict descent); the clock itself only moves
                // via `advance`/`pop_earliest`, because message deliveries
                // may still be pending *before* this slot and their
                // handlers may arm earlier timers.
                Source::Slot { level, slot }
                    if level > 0
                        && (best.at >> (SLOT_BITS * level as u32)) << (SLOT_BITS * level as u32)
                            <= self.now =>
                {
                    let mut scratch = std::mem::take(&mut self.scratch);
                    {
                        let s = &mut self.levels[level][slot];
                        // Sorted so the redistribution emits ascending
                        // runs: destination slots then receive their
                        // entries in order and stay sorted for free.
                        // Draining into scratch (not `into_iter`) keeps
                        // the slot's allocation for future inserts.
                        s.ensure_sorted();
                        scratch.extend(s.entries.drain(s.head..));
                        s.entries.clear();
                        s.head = 0;
                    }
                    self.occupied[level] &= !(1 << slot);
                    self.level_cache[level] = None;
                    for e in scratch.drain(..) {
                        // Entries sharing the slot but belonging to a later
                        // wheel revolution keep their level; the rest drop
                        // at least one level, so this terminates.
                        self.place(e);
                    }
                    self.scratch = scratch;
                }
                _ => {
                    self.cached = Some(best);
                    return Some((best.at, best.seq));
                }
            }
        }
    }

    /// Whether any source other than level `level` holds a key smaller
    /// than `(at, seq)`. Sound only right after a pop at `level`: the
    /// preceding peek filled every level cache, and only the popped level
    /// has been disturbed since. A stale cache (possible when the cohort
    /// fast path has been serving peeks) conservatively reports "beaten",
    /// which just routes the caller to the full recompute.
    fn beaten_elsewhere(&self, level: usize, at: u64, seq: u64) -> bool {
        for l in 0..LEVELS {
            if l == level {
                continue;
            }
            match self.level_cache[l] {
                Some(Some(b)) if (b.at, b.seq) < (at, seq) => return true,
                Some(_) => {}
                None => return true,
            }
        }
        if let Some(&Reverse((oat, oseq, _))) = self.overflow.peek() {
            if (oat, oseq) < (at, seq) {
                return true;
            }
        }
        false
    }

    /// Removes and returns every pending entry in `(at, seq)` order.
    /// Used when the engine re-shards timers between the global wheel and
    /// per-domain wheels: entries carry their seqs, so re-inserting them
    /// into another wheel preserves the fire schedule exactly.
    pub(crate) fn drain_sorted(&mut self) -> impl Iterator<Item = TimerEntry> + '_ {
        std::iter::from_fn(|| self.pop_earliest())
    }

    /// Removes and returns the earliest timer. Must follow a `peek` with
    /// no intervening `insert` (the engine's step loop guarantees this).
    pub(crate) fn pop_earliest(&mut self) -> Option<TimerEntry> {
        self.peek()?;
        let c = self.cached.take().expect("peek filled the cache");
        self.len -= 1;
        self.now = c.at;
        match c.source {
            Source::Overflow => {
                let Reverse((at, seq, slab)) = self.overflow.pop().expect("cached overflow");
                debug_assert_eq!((at, seq), (c.at, c.seq));
                let (node, tag) = self.payloads[slab as usize];
                self.free.push(slab);
                Some(TimerEntry { at, seq, node, tag })
            }
            Source::Slot { level, slot } => {
                let (k, next) = {
                    let s = &mut self.levels[level][slot];
                    let k = s.pop_min();
                    let next = (!s.is_empty()).then(|| s.min_key());
                    (k, next)
                };
                let (at, seq, slab) = k;
                debug_assert_eq!((at, seq), (c.at, c.seq), "cached key was the slot minimum");
                let (node, tag) = self.payloads[slab as usize];
                self.free.push(slab);
                match next {
                    None => {
                        self.occupied[level] &= !(1 << slot);
                        self.level_cache[level] = None;
                    }
                    // Cohort fast path. Lockstep protocols pop runs of
                    // entries sharing one instant, and equal `at` maps to
                    // equal slot indices, so within this level the slot's
                    // next entry already wins. It is the *global* earliest
                    // unless an equal-`at` entry armed earlier (smaller
                    // seq) sits at another level (possible: the level is
                    // chosen from `at - now` at arming time) or in the
                    // overflow. Those are O(1) compares against caches the
                    // preceding peek left fresh — no rescan, and the next
                    // peek is a guaranteed cache hit.
                    Some((at2, seq2)) if at2 == at && !self.beaten_elsewhere(level, at2, seq2) => {
                        let ee = Earliest { at: at2, seq: seq2, source: Source::Slot { level, slot } };
                        self.level_cache[level] = Some(Some(ee));
                        self.cached = Some(ee);
                    }
                    Some(_) => {
                        self.level_cache[level] = None;
                    }
                }
                Some(TimerEntry { at, seq, node, tag })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Reference model: the old heap semantics.
    #[derive(Default)]
    struct Model {
        heap: BinaryHeap<Reverse<(u64, u64, usize, u64)>>,
    }

    impl Model {
        fn insert(&mut self, e: TimerEntry) {
            self.heap.push(Reverse((e.at, e.seq, e.node, e.tag)));
        }
        fn pop(&mut self) -> Option<TimerEntry> {
            self.heap.pop().map(|Reverse((at, seq, node, tag))| TimerEntry { at, seq, node, tag })
        }
    }

    #[test]
    fn empty_wheel() {
        let mut w = TimerWheel::new();
        assert_eq!(w.len(), 0);
        assert_eq!(w.peek(), None);
        assert_eq!(w.pop_earliest(), None);
    }

    #[test]
    fn fires_in_at_then_seq_order() {
        let mut w = TimerWheel::new();
        for (i, at) in [(0u64, 50u64), (1, 10), (2, 50), (3, 10)] {
            w.insert(TimerEntry { at, seq: i, node: i as usize, tag: i });
        }
        let order: Vec<u64> = std::iter::from_fn(|| w.pop_earliest()).map(|e| e.seq).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn spans_all_levels_and_overflow() {
        let mut w = TimerWheel::new();
        let ats = [3u64, 100, 5_000, 300_000, 20_000_000, HORIZON * 3, u64::MAX];
        for (i, &at) in ats.iter().enumerate() {
            w.insert(TimerEntry { at, seq: i as u64, node: 0, tag: 0 });
        }
        let fired: Vec<u64> = std::iter::from_fn(|| w.pop_earliest()).map(|e| e.at).collect();
        assert_eq!(fired, ats.to_vec());
    }

    #[test]
    fn matches_heap_model_under_random_interleaving() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xBEE5);
        for trial in 0..20 {
            let mut w = TimerWheel::new();
            let mut m = Model::default();
            let mut seq = 0u64;
            let mut clock = 0u64;
            for _ in 0..400 {
                if rng.gen_bool(0.6) || w.len() == 0 {
                    // Arm a timer with a delay spanning every level.
                    let delay = match rng.gen_range(0..5u32) {
                        0 => rng.gen_range(0..64),
                        1 => rng.gen_range(0..4_096),
                        2 => rng.gen_range(0..262_144),
                        3 => rng.gen_range(0..HORIZON),
                        _ => rng.gen_range(HORIZON..HORIZON * 20),
                    };
                    let e = TimerEntry { at: clock + delay, seq, node: 0, tag: seq };
                    seq += 1;
                    w.insert(e);
                    m.insert(e);
                } else {
                    let (a, b) = (w.pop_earliest(), m.pop());
                    assert_eq!(a, b, "trial {trial}: wheel diverged from heap model");
                    clock = a.expect("non-empty").at;
                }
            }
            // Drain both.
            loop {
                let (a, b) = (w.pop_earliest(), m.pop());
                assert_eq!(a, b, "trial {trial}: drain diverged");
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(w.len(), 0);
        }
    }

    /// Not a correctness test: times the wheel against the heap model on
    /// the perf-report grid pattern (many concurrent periodic timers).
    /// Run manually with `cargo test -p oceanstore-sim --release
    /// wheel_vs_heap_grid_pattern -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn wheel_vs_heap_grid_pattern() {
        const PERIODS: [u64; 4] = [5_000, 11_000, 17_000, 29_000];
        const OPS: u64 = 2_000_000;
        let run_wheel = |nodes: u64| {
            let mut w = TimerWheel::new();
            let mut seq = 0u64;
            for n in 0..nodes {
                for p in PERIODS {
                    w.insert(TimerEntry { at: p, seq, node: n as usize, tag: p });
                    seq += 1;
                }
            }
            let mut fired = 0u64;
            while fired < OPS {
                let e = w.pop_earliest().expect("periodic timers never drain");
                w.insert(TimerEntry { at: e.at + e.tag, seq, node: e.node, tag: e.tag });
                seq += 1;
                fired += 1;
            }
            w.len()
        };
        let run_heap = |nodes: u64| {
            let mut m = Model::default();
            let mut seq = 0u64;
            for n in 0..nodes {
                for p in PERIODS {
                    m.insert(TimerEntry { at: p, seq, node: n as usize, tag: p });
                    seq += 1;
                }
            }
            let mut fired = 0u64;
            while fired < OPS {
                let e = m.pop().expect("periodic timers never drain");
                m.insert(TimerEntry { at: e.at + e.tag, seq, node: e.node, tag: e.tag });
                seq += 1;
                fired += 1;
            }
            m.heap.len()
        };
        for nodes in [256u64, 4096, 16384] {
            for round in 0..2 {
                let t = std::time::Instant::now();
                let wl = run_wheel(nodes);
                let wheel_s = t.elapsed().as_secs_f64();
                let t = std::time::Instant::now();
                let hl = run_heap(nodes);
                let heap_s = t.elapsed().as_secs_f64();
                assert_eq!(wl, hl);
                println!(
                    "timers {:>6} round {round}: wheel {:.1} Mops/s  heap {:.1} Mops/s  ratio {:.2}x",
                    nodes * 4,
                    OPS as f64 / wheel_s / 1e6,
                    OPS as f64 / heap_s / 1e6,
                    heap_s / wheel_s
                );
            }
        }
    }

    #[test]
    fn peek_is_stable_and_cheap_across_inserts_of_later_timers() {
        let mut w = TimerWheel::new();
        w.insert(TimerEntry { at: 10, seq: 0, node: 0, tag: 0 });
        assert_eq!(w.peek(), Some((10, 0)));
        w.insert(TimerEntry { at: 99, seq: 1, node: 0, tag: 1 });
        assert_eq!(w.peek(), Some((10, 0)));
        // An earlier timer invalidates and refreshes the cache.
        w.insert(TimerEntry { at: 5, seq: 2, node: 0, tag: 2 });
        assert_eq!(w.peek(), Some((5, 2)));
    }
}
