//! The discrete-event simulation engine.
//!
//! Protocols are written sans-io: a [`Protocol`] is a state machine that
//! reacts to message deliveries and timer expirations by emitting new sends
//! and timers through a [`Context`]. The engine owns the event queue, the
//! clock, the [`crate::topology::Topology`], failure injection,
//! and byte accounting. Everything is deterministic for a given seed:
//! events at equal times fire in insertion order, and all randomness flows
//! from per-node ChaCha streams derived from the master seed — except drop
//! and link-flap coins, which are counter-mode hashes of the master seed
//! and each routing attempt's identity (see `counter_drop`), so they too
//! are pure functions of the seed.
//!
//! # Hot-path structure
//!
//! Four things keep the event loop cheap without changing its observable
//! order (a single global `(at, seq)` sequence, `seq` assigned at emission):
//!
//! * **Arc multicast** — [`Context::broadcast`] queues one allocation for n
//!   recipients; each delivery borrows the shared payload through
//!   [`Protocol::on_message_ref`] (the last one gets it by value for free),
//!   and its byte accounting is folded into one
//!   [`NetStats::record_multicast`] batch instead of n counter updates.
//! * **Timer wheel** — timers live in a hierarchical wheel
//!   ([`crate::wheel`]) instead of the delivery heap; [`Simulator::step`]
//!   pops the global `(at, seq)` minimum across both structures, which is
//!   exactly the order the single-heap engine produced.
//! * **Key-slab delivery queue** — the heap sifts compact 24-byte
//!   `(at, seq, slab)` keys while the fat delivery bodies (sender,
//!   destination, payload) sit still in a slab with a free list, so every
//!   sift-up/sift-down moves three words instead of a whole `Event`.
//! * **Pooled action buffers** — every callback writes into one reusable
//!   scratch `Vec<Action>` owned by the simulator rather than a fresh
//!   allocation per dispatch.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::stats::{DropCause, NetStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use crate::wheel::{TimerEntry, TimerWheel};

/// A protocol message that can travel over the simulated network.
pub trait Message: Clone {
    /// Bytes this message occupies on the wire (used for Figure-6-style
    /// accounting). Include headers/signatures as the real system would.
    fn wire_size(&self) -> usize;

    /// Accounting class (e.g. `"prepare"`, `"gossip"`). Defaults to `"msg"`.
    fn class(&self) -> &'static str {
        "msg"
    }
}

/// A node-local protocol state machine.
pub trait Protocol {
    /// Message type exchanged between nodes.
    type Msg: Message;

    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Called when a message addressed to this node arrives.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Borrowing variant of [`Protocol::on_message`], used when the payload
    /// is shared with other still-pending deliveries of the same
    /// [`Context::broadcast`]. The default clones and delegates; protocols
    /// that never need ownership may override it to skip the clone. An
    /// override must be observably equivalent to `on_message` — the engine
    /// is free to call either.
    fn on_message_ref(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: &Self::Msg) {
        self.on_message(ctx, from, msg.clone());
    }

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Msg>, _tag: u64) {}
}

/// What a protocol may do in reaction to an event.
#[derive(Debug)]
enum Action<M> {
    Send { to: NodeId, msg: M },
    Multicast { to: Vec<NodeId>, msg: Arc<M> },
    Timer { delay: SimDuration, tag: u64 },
    Count { name: &'static str, n: u64 },
}

/// Handle given to protocol callbacks for interacting with the simulated
/// world.
#[derive(Debug)]
pub struct Context<'a, M> {
    now: SimTime,
    node: NodeId,
    actions: &'a mut Vec<Action<M>>,
    rng: &'a mut ChaCha8Rng,
}

impl<M> Context<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this callback runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends `msg` to `to`; it arrives after the topology's shortest-path
    /// latency (or never, if `to` is unreachable, partitioned away, down at
    /// delivery time, or the message is randomly dropped).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Sends one message to every recipient in `to`, in order — observably
    /// identical to calling [`Context::send`] in a loop (same per-link
    /// accounting, drops, and delivery order), but the payload is allocated
    /// once and shared by reference until delivery.
    pub fn broadcast(&mut self, to: impl IntoIterator<Item = NodeId>, msg: M) {
        let to: Vec<NodeId> = to.into_iter().collect();
        match to.len() {
            0 => {}
            1 => self.actions.push(Action::Send { to: to[0], msg }),
            _ => self.actions.push(Action::Multicast { to, msg: Arc::new(msg) }),
        }
    }

    /// Schedules [`Protocol::on_timer`] with `tag` after `delay`.
    ///
    /// Timers cannot be cancelled; protocols should treat stale timers as
    /// no-ops based on their own state.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.actions.push(Action::Timer { delay, tag });
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut impl Rng {
        self.rng
    }

    /// Bumps the named protocol-event counter in [`NetStats`] by one.
    ///
    /// Events are for costs that are invisible in pure message counts —
    /// e.g. how many `Commit` re-pushes were retries vs the retry budget
    /// being exhausted. They appear in [`NetStats::event`] and the chaos
    /// fingerprint, so determinism checks cover them too.
    pub fn count(&mut self, name: &'static str) {
        self.actions.push(Action::Count { name, n: 1 });
    }

    /// Runs an *embedded* protocol that speaks message type `N`, wrapping
    /// every send with `wrap` so it travels as this protocol's `M`. Timers
    /// pass through unchanged — composite protocols must partition the tag
    /// space between layers.
    ///
    /// This is how a composite node (e.g. an OceanStore server) hosts a
    /// self-contained state machine (e.g. a PBFT replica) without the inner
    /// machine knowing about the envelope type.
    pub fn with_inner<N: Clone, R>(
        &mut self,
        wrap: impl Fn(N) -> M,
        f: impl FnOnce(&mut Context<'_, N>) -> R,
    ) -> R {
        self.with_inner_mapped(wrap, |t| t, f)
    }

    /// Like [`Context::with_inner`], additionally rewriting timer tags the
    /// embedded protocol sets through `tag_map`. A composite node hosting
    /// several timer-using subsystems namespaces their tags this way (and
    /// inverts the map in its own `on_timer`).
    pub fn with_inner_mapped<N: Clone, R>(
        &mut self,
        wrap: impl Fn(N) -> M,
        tag_map: impl Fn(u64) -> u64,
        f: impl FnOnce(&mut Context<'_, N>) -> R,
    ) -> R {
        let mut inner_actions: Vec<Action<N>> = Vec::new();
        let r = {
            let mut inner = Context {
                now: self.now,
                node: self.node,
                actions: &mut inner_actions,
                rng: self.rng,
            };
            f(&mut inner)
        };
        for action in inner_actions {
            match action {
                Action::Send { to, msg } => self.actions.push(Action::Send { to, msg: wrap(msg) }),
                Action::Multicast { to, msg } => {
                    let inner_msg = Arc::try_unwrap(msg).unwrap_or_else(|a| (*a).clone());
                    self.actions.push(Action::Multicast { to, msg: Arc::new(wrap(inner_msg)) });
                }
                Action::Timer { delay, tag } => {
                    self.actions.push(Action::Timer { delay, tag: tag_map(tag) })
                }
                Action::Count { name, n } => self.actions.push(Action::Count { name, n }),
            }
        }
        r
    }
}

/// A delivery payload: owned for unicast, `Arc`-shared for multicast so one
/// allocation serves every recipient.
#[derive(Debug)]
enum Payload<M> {
    One(M),
    Shared(Arc<M>),
}

impl<M> Payload<M> {
    fn as_msg(&self) -> &M {
        match self {
            Payload::One(m) => m,
            Payload::Shared(a) => a,
        }
    }
}

/// Heap key of one pending delivery: `(at µs, seq, slab index)`. Wrapped in
/// [`Reverse`] so the `BinaryHeap` max-heap pops the earliest `(at, seq)`
/// first, ties broken by insertion order for determinism. Seqs are unique,
/// so the slab index never participates in an ordering decision.
type DeliveryKey = Reverse<(u64, u64, u32)>;

/// The fat part of a pending delivery, parked in the delivery slab while
/// its compact [`DeliveryKey`] sifts through the heap.
#[derive(Debug)]
struct DeliveryBody<M> {
    from: NodeId,
    to: NodeId,
    msg: Payload<M>,
}

/// The one next-event decision, shared by the sequential step loop and each
/// parallel domain's window loop: the global `(at, seq)` minimum across a
/// delivery queue and a timer wheel. Seqs are unique across both sources,
/// so the two never tie. Returns `(at, seq, take_timer)`.
fn peek_next(queue: &BinaryHeap<DeliveryKey>, timers: &mut TimerWheel) -> Option<(u64, u64, bool)> {
    let msg_key = queue.peek().map(|&Reverse((at, seq, _))| (at, seq));
    match (msg_key, timers.peek()) {
        (None, None) => None,
        (Some((at, seq)), None) => Some((at, seq, false)),
        (None, Some((at, seq))) => Some((at, seq, true)),
        (Some(m), Some(t)) => {
            if t < m {
                Some((t.0, t.1, true))
            } else {
                Some((m.0, m.1, false))
            }
        }
    }
}

/// Parks `body` in `slab` (reusing a free slot LIFO) and returns the slot
/// for the compact heap key. Shared by the global queue and the per-domain
/// queues so both sides keep identical slab semantics.
fn park_delivery<M>(
    slab: &mut Vec<Option<DeliveryBody<M>>>,
    free: &mut Vec<u32>,
    body: DeliveryBody<M>,
) -> u32 {
    match free.pop() {
        Some(slot) => {
            debug_assert!(slab[slot as usize].is_none());
            slab[slot as usize] = Some(body);
            slot
        }
        None => {
            let slot = u32::try_from(slab.len())
                .expect("more than u32::MAX simultaneous in-flight deliveries");
            slab.push(Some(body));
            slot
        }
    }
}

/// Deterministic contiguous block partition of `n` nodes into `count`
/// domains: node `i`'s domain depends only on `(n, count)`, never on thread
/// scheduling. Contiguity matters twice over — it matches the positional
/// rack/ring layout [`crate::cluster::ClusterSpec`] assigns (so domains
/// align with cluster structure), and it lets the window runner hand each
/// worker a disjoint `&mut` slice of the node and RNG vectors.
pub(crate) fn contiguous_domains(n: usize, count: usize) -> Vec<u32> {
    let count = count.clamp(1, n.max(1));
    let base = n / count;
    let rem = n % count;
    let mut of_node = Vec::with_capacity(n);
    for d in 0..count {
        let size = base + usize::from(d < rem);
        of_node.extend(std::iter::repeat_n(d as u32, size));
    }
    of_node
}

/// SplitMix64 finalizer: a cheap, statistically strong 64-bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain-separation salts so the global-probability coin and the per-link
/// flap coin of the same routing attempt are independent draws.
const DROP_SALT_RANDOM: u64 = 0x9E6C_63D0_985E_E21B;
const DROP_SALT_FLAP: u64 = 0x517C_C1B7_2722_0A95;

/// One counter-mode drop coin in `[0, 1)`: a splitmix-style hash of
/// `(drop seed, directed link, attempt counter, salt)` widened to the same
/// 53-bit-mantissa uniform float `rand` produces. A pure function of the
/// routing attempt's identity — no shared RNG stream, so the verdict is
/// independent of evaluation order and thread count.
fn drop_coin(drop_seed: u64, link: (u32, u32), ctr: u64, salt: u64) -> f64 {
    let mut h = mix64(drop_seed ^ salt ^ ((u64::from(link.0) << 32) | u64::from(link.1)));
    h = mix64(h ^ ctr);
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The counter-mode drop decision for one routing attempt from `from` to
/// `to`. Bumps the directed-link attempt counter once iff any coin is live
/// (global `drop_prob` or a per-link override), so drop-free runs never
/// touch `ctrs` and their schedules stay byte-identical to a build without
/// this machinery. Counters are keyed by the *directed* link: every attempt
/// on `from → to` happens while dispatching `from`, i.e. inside `from`'s
/// domain, so a directed counter advances in domain-local order — which for
/// a single sender is exactly the sequential global order restricted to its
/// dispatches. (An undirected key would be shared by two domains and race.)
fn counter_drop(
    ctrs: &mut HashMap<(u32, u32), u64>,
    drop_seed: u64,
    drop_prob: f64,
    link_drops: &HashMap<(usize, usize), f64>,
    from: NodeId,
    to: NodeId,
) -> Option<DropCause> {
    let link_p = if link_drops.is_empty() {
        None
    } else {
        link_drops.get(&(from.0.min(to.0), from.0.max(to.0))).copied()
    };
    if drop_prob == 0.0 && link_p.is_none() {
        return None;
    }
    let link = (from.0 as u32, to.0 as u32);
    let ctr = ctrs.entry(link).or_insert(0);
    let attempt = *ctr;
    *ctr += 1;
    if drop_prob > 0.0 && drop_coin(drop_seed, link, attempt, DROP_SALT_RANDOM) < drop_prob {
        return Some(DropCause::Random);
    }
    if let Some(p) = link_p {
        if drop_coin(drop_seed, link, attempt, DROP_SALT_FLAP) < p {
            return Some(DropCause::LinkFlap);
        }
    }
    None
}

/// One *seq-consuming* emission logged by a window dispatch, in action
/// order, replayed at the barrier to assign real seqs exactly as the
/// sequential engine would have. Dropped sends consume no seq and are
/// tallied thread-side in the domain accumulator, so they produce no entry;
/// multicasts are flattened to one entry per surviving recipient (byte
/// accounting for the whole fan-out also happens thread-side).
#[derive(Debug)]
enum Emission<M> {
    /// Executed inside this window under a provisional key: consumes one
    /// real seq at commit.
    Exec,
    /// A delivery that survives the window (cross-domain, or lands past the
    /// window end): enqueued into the target domain at commit with its real
    /// seq. The body rides in an `Option` so the commit loop can take it by
    /// value.
    Park { to: NodeId, at: u64, body: Option<Payload<M>> },
    /// A timer armed past the window end: inserted into this domain's wheel
    /// at commit with its real seq.
    ArmTimer { at: u64, tag: u64 },
}

/// One decoded [`Emission`], pulled out of the log by value so the borrow
/// of the emitting domain's log ends before any cross-domain park — a
/// single stack slot where the commit loop once allocated a `Vec` per
/// emission record.
enum Step<M> {
    Exec,
    Park { to: NodeId, at: u64, body: Payload<M> },
    Arm { at: u64, tag: u64 },
}

/// One window dispatch that emitted something: the dispatched event's key
/// (provisional iff `seq >= seq_base`) plus its slice of the domain's
/// emission log. Zero-emission dispatches need no record — they consume no
/// seqs and nothing downstream orders against them.
#[derive(Debug, Clone, Copy)]
struct DispatchRecord {
    at: u64,
    seq: u64,
    node: u32,
    emi: u32,
    emi_len: u32,
}

/// One spatial domain of the conservative PDES scheduler: a contiguous
/// node block with its own delivery queue, slab, and timer-wheel shard,
/// plus the per-window logs the barrier commit consumes.
struct Domain<M> {
    /// First node id in this domain's contiguous block.
    base: usize,
    /// One-past-last node id.
    end: usize,
    queue: BinaryHeap<DeliveryKey>,
    slab: Vec<Option<DeliveryBody<M>>>,
    free: Vec<u32>,
    wheel: TimerWheel,
    /// Dispatches with emissions, in domain execution order.
    records: Vec<DispatchRecord>,
    /// Flat emission log; records hold ranges into it.
    emissions: Vec<Emission<M>>,
    /// Per-domain accumulator for every commutative counter recorded
    /// mid-window: byte accounting (`record_send` / `record_multicast`),
    /// per-cause drop tallies, and `Context::count` events. Sized for the
    /// full node count (recipients can live in other domains). Persists
    /// *across* windows and folds into the global [`NetStats`] once per
    /// epoch (`drain_epoch_stats`), so the barrier never pays a per-window
    /// `O(nodes)` clear.
    stats: NetStats,
    /// Attempt counters of directed links whose source node lives in this
    /// domain, sharded out of [`Simulator::link_ctrs`] for lock-free
    /// counter-mode drop decisions during windows.
    link_ctrs: HashMap<(u32, u32), u64>,
    events_processed: u64,
    /// Count of intra-window seq-consuming emissions so far: the k-th one
    /// runs under provisional key `seq_base + k`.
    provisional: u64,
    /// Reusable action buffer for this domain's dispatches.
    actions: Vec<Action<M>>,
}

impl<M> Domain<M> {
    fn new(base: usize, end: usize, n: usize) -> Self {
        Domain {
            base,
            end,
            queue: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            wheel: TimerWheel::new(),
            records: Vec::new(),
            emissions: Vec::new(),
            stats: NetStats::accumulator(n),
            link_ctrs: HashMap::new(),
            events_processed: 0,
            provisional: 0,
            actions: Vec::new(),
        }
    }

    fn push_with_seq(&mut self, at: u64, seq: u64, body: DeliveryBody<M>) {
        let slot = park_delivery(&mut self.slab, &mut self.free, body);
        self.queue.push(Reverse((at, seq, slot)));
    }

    fn pending(&self) -> usize {
        self.queue.len() + self.wheel.len()
    }
}

/// Live sharded state of a parallel epoch.
struct ParState<M> {
    domains: Vec<Domain<M>>,
    /// Domain index per node (contiguous blocks).
    of_node: Vec<u32>,
    /// Unscaled PDES lookahead in µs: the minimum cross-domain link
    /// latency. `u64::MAX` when domains are network-isolated.
    base_lookahead: u64,
    /// Barrier-commit scratch, reused across windows (cleared each commit,
    /// capacity kept) so the serial section allocates nothing steady-state.
    merge: MergeScratch,
}

/// Reusable state of one barrier commit: per-domain record cursors, the
/// loser tree and its external keys, and the provisional→real seq tables.
#[derive(Default)]
struct MergeScratch {
    /// Next unmerged record index per domain.
    heads: Vec<usize>,
    /// Resolved `(at, seq)` merge key of each domain's head record;
    /// `None` = run exhausted.
    keys: Vec<Option<(u64, u64)>>,
    tree: LoserTree,
    /// `real_of[d][k]` = real seq of domain d's k-th executed emission.
    real_of: Vec<Vec<u64>>,
}

/// Tournament loser tree over `k` sorted runs, keyed externally through a
/// `keys` slice (`None` = exhausted = +infinity; live keys never tie, since
/// seqs are unique — the leaf index breaks `None` ties determinstically).
/// Slot 0 holds the overall winner and internal slots `1..k` hold match
/// losers, with leaf `d` conceptually at heap slot `k + d`. After the
/// winner's run advances, only its leaf-to-root path replays: `O(log k)`
/// comparisons per pop instead of the `O(k)` head scan the commit loop used
/// to pay per record.
#[derive(Default)]
struct LoserTree {
    node: Vec<u32>,
    k: usize,
}

/// Whether leaf `a`'s key beats (merges before) leaf `b`'s.
fn leaf_beats(keys: &[Option<(u64, u64)>], a: usize, b: usize) -> bool {
    match (&keys[a], &keys[b]) {
        (Some(x), Some(y)) => (x, a) < (y, b),
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => a < b,
    }
}

impl LoserTree {
    /// Rebuilds the tournament bottom-up for `k` runs. Heap-shaped with
    /// leaves at slots `k..2k`, which is well-formed for any `k`, not just
    /// powers of two.
    fn rebuild(&mut self, k: usize, keys: &[Option<(u64, u64)>]) {
        self.k = k;
        self.node.clear();
        if k == 1 {
            self.node.push(0);
            return;
        }
        let mut winner = vec![0u32; 2 * k];
        for d in 0..k {
            winner[k + d] = d as u32;
        }
        self.node.resize(k, 0);
        for i in (1..k).rev() {
            let (a, b) = (winner[2 * i], winner[2 * i + 1]);
            let (w, l) =
                if leaf_beats(keys, a as usize, b as usize) { (a, b) } else { (b, a) };
            winner[i] = w;
            self.node[i] = l;
        }
        self.node[0] = winner[1];
    }

    /// The leaf holding the smallest key.
    fn winner(&self) -> usize {
        self.node[0] as usize
    }

    /// Replays the matches along leaf `d`'s path after its key changed.
    fn replay(&mut self, d: usize, keys: &[Option<(u64, u64)>]) {
        if self.k == 1 {
            return;
        }
        let mut w = d as u32;
        let mut i = (self.k + d) / 2;
        while i >= 1 {
            let l = self.node[i];
            if leaf_beats(keys, l as usize, w as usize) {
                self.node[i] = w;
                w = l;
            }
            i /= 2;
        }
        self.node[0] = w;
    }
}

/// The resolved `(at, seq)` merge key of `records[head]`, `None` when the
/// run is exhausted. A provisional seq (`>= seq_base`) resolves through
/// `real_of`: its emitter's record sits strictly earlier in the same run
/// (the emitter dispatched first and logged at least that emission), so by
/// the time a record becomes its run's head, its entry exists.
fn head_key(
    records: &[DispatchRecord],
    head: usize,
    seq_base: u64,
    real_of: &[u64],
) -> Option<(u64, u64)> {
    let r = records.get(head)?;
    let seq = if r.seq >= seq_base { real_of[(r.seq - seq_base) as usize] } else { r.seq };
    Some((r.at, seq))
}

/// Coverage counters for the parallel scheduler: how much of the run
/// actually executed under windows, and what fraction of epoch wall time
/// the single-threaded barrier commit consumed.
///
/// Deliberately *not* part of [`NetStats`]: stats are asserted bit-identical
/// across thread counts, while coverage varies with the thread count and
/// the wall clock by design.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ParCoverage {
    /// Windows fanned out across worker threads.
    pub windows_parallel: u64,
    /// Windows run inline on the driver thread (below the spawn threshold).
    /// Still windowed execution — identical schedule, no thread wake-ups.
    pub windows_inline: u64,
    /// Times a `run_until` abandoned the windowed scheduler for the
    /// sequential loop (no usable lookahead, or single-threaded config).
    pub fallback_entries: u64,
    /// Events processed by the sequential loop inside those fallbacks.
    pub fallback_events: u64,
    /// Wall-clock nanoseconds inside the single-threaded barrier commit.
    pub serial_nanos: u64,
    /// Wall-clock nanoseconds across entire parallel epochs (windows,
    /// barriers, and scheduling glue).
    pub epoch_nanos: u64,
}

impl ParCoverage {
    /// Fraction of epoch wall time spent in the serial barrier commit.
    pub fn serial_fraction(&self) -> f64 {
        if self.epoch_nanos == 0 {
            0.0
        } else {
            self.serial_nanos as f64 / self.epoch_nanos as f64
        }
    }
}

/// Read-only world state shared by every domain worker during one window,
/// plus the window constants.
struct WindowEnv<'a> {
    topo: &'a Topology,
    down: &'a [bool],
    partitions: Option<&'a [u32]>,
    latency_factor: f64,
    drop_prob: f64,
    link_drops: &'a HashMap<(usize, usize), f64>,
    drop_seed: u64,
    /// Exclusive end of the window: events with `at < window_end` execute.
    window_end: u64,
    /// Global seq counter at window start; provisional keys start here.
    seq_base: u64,
}

/// Below this many pending events across all domains, a window runs inline
/// on the driver thread: results are identical either way (domains are
/// independent within a window), so threads are only worth their spawn cost
/// when the window carries real work.
const PARALLEL_SPAWN_THRESHOLD: usize = 64;

/// The discrete-event simulator driving one [`Protocol`] instance per node.
pub struct Simulator<P: Protocol> {
    nodes: Vec<P>,
    node_rngs: Vec<ChaCha8Rng>,
    topo: Topology,
    clock: SimTime,
    /// Message delivery *keys* only; timers live in `timers`. Both share
    /// the global `seq` counter, so the merged `(at, seq)` order is
    /// identical to the historical single-heap order.
    queue: BinaryHeap<DeliveryKey>,
    /// Delivery bodies indexed by the key's slab slot; `None` marks a free
    /// slot awaiting reuse through `delivery_free`.
    delivery_slab: Vec<Option<DeliveryBody<P::Msg>>>,
    /// Free slots in `delivery_slab`, reused LIFO for cache locality.
    delivery_free: Vec<u32>,
    timers: TimerWheel,
    seq: u64,
    stats: NetStats,
    down: Vec<bool>,
    /// Partition group per node; messages cross groups only if `None`.
    partitions: Option<Vec<u32>>,
    drop_prob: f64,
    /// Per-link drop probabilities (flapping links), keyed by the
    /// direction-normalized endpoint pair.
    link_drops: HashMap<(usize, usize), f64>,
    /// Multiplier applied to every link latency (link degradation).
    latency_factor: f64,
    /// Seed of the counter-mode drop coins: every drop verdict is a pure
    /// hash of `(drop_seed, directed link, attempt counter)`, never a draw
    /// from a shared RNG stream — so drop decisions commute with evaluation
    /// order and thread count.
    drop_seed: u64,
    /// Per-directed-link attempt counters backing [`counter_drop`],
    /// authoritative while no parallel epoch is live (sharded into each
    /// [`Domain::link_ctrs`] otherwise).
    link_ctrs: HashMap<(u32, u32), u64>,
    events_processed: u64,
    /// Parallel-scheduler coverage counters; see [`ParCoverage`].
    coverage: ParCoverage,
    /// Reusable per-callback action buffer (dispatch is not reentrant).
    scratch: Vec<Action<P::Msg>>,
    /// Configured worker count for the conservative PDES scheduler; 1 =
    /// the classic sequential loop.
    threads: usize,
    /// Sharded per-domain event structures, present while a parallel epoch
    /// is live. `None` means the global `queue`/`timers` are authoritative.
    par: Option<ParState<P::Msg>>,
    /// Monomorphized parallel driver, installed by [`Simulator::set_threads`]
    /// (which carries the `Send` bounds the thread scope needs); `None`
    /// keeps every run on the sequential path.
    par_exec: Option<fn(&mut Simulator<P>, u64)>,
}

impl<P: Protocol> std::fmt::Debug for Simulator<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.nodes.len())
            .field("clock", &self.clock)
            .field("pending_events", &(self.queue.len() + self.timers.len()))
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator over `topology` with one protocol instance per
    /// node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != topology.len()`.
    pub fn new(topology: Topology, nodes: Vec<P>, seed: u64) -> Self {
        assert_eq!(nodes.len(), topology.len(), "one protocol instance per topology node");
        let n = nodes.len();
        let node_rngs = (0..n)
            .map(|i| ChaCha8Rng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))))
            .collect();
        Simulator {
            nodes,
            node_rngs,
            topo: topology,
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            delivery_slab: Vec::new(),
            delivery_free: Vec::new(),
            timers: TimerWheel::new(),
            seq: 0,
            stats: NetStats::new(n),
            down: vec![false; n],
            partitions: None,
            drop_prob: 0.0,
            link_drops: HashMap::new(),
            latency_factor: 1.0,
            drop_seed: mix64(seed ^ 0xD1B5_4A32_D192_ED03),
            link_ctrs: HashMap::new(),
            events_processed: 0,
            coverage: ParCoverage::default(),
            scratch: Vec::new(),
            threads: 1,
            par: None,
            par_exec: None,
        }
    }

    /// Calls [`Protocol::on_start`] on every live node.
    pub fn start(&mut self) {
        for i in 0..self.nodes.len() {
            if !self.down[i] {
                self.dispatch_start(NodeId(i));
            }
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Network accounting so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets the byte counters (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        if let Some(par) = &mut self.par {
            // Domain accumulators are drained at every epoch end, so they
            // are empty between runs; clear defensively anyway.
            for dom in &mut par.domains {
                dom.stats.clear_for_reuse();
            }
        }
    }

    /// Parallel-scheduler coverage counters accumulated since construction:
    /// how many windows actually ran (parallel vs inline), how often the
    /// scheduler fell back to the sequential loop, and the wall-clock split
    /// between the serial barrier commit and whole epochs. All zeros on a
    /// purely sequential simulator.
    pub fn par_coverage(&self) -> ParCoverage {
        self.coverage
    }

    /// The topology the simulation runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Shared access to the protocol instance at `node`.
    pub fn node(&self, node: NodeId) -> &P {
        &self.nodes[node.0]
    }

    /// Exclusive access to the protocol instance at `node` (for test
    /// inspection and external stimulus outside the event loop).
    pub fn node_mut(&mut self, node: NodeId) -> &mut P {
        &mut self.nodes[node.0]
    }

    /// Iterates over all protocol instances.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// Marks a node crashed (true) or recovered (false). A crashed node
    /// receives no messages or timers; pending events addressed to it are
    /// dropped at delivery time.
    ///
    /// Note that flipping a node back up this way does **not** re-run
    /// [`Protocol::on_start`], so periodic timers stay dead — use
    /// [`Simulator::recover_node`] for a crash-recovery that restarts the
    /// protocol's timer wheels.
    pub fn set_down(&mut self, node: NodeId, down: bool) {
        self.down[node.0] = down;
    }

    /// Whether `node` is currently crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.0]
    }

    /// Crashes `node`: from now until recovery it receives no messages and
    /// none of its timers fire (they are silently discarded when they come
    /// due). Protocol state is preserved in place. No-op if already down.
    pub fn crash_node(&mut self, node: NodeId) {
        self.down[node.0] = true;
    }

    /// Recovers a crashed node with its protocol state intact (a process
    /// restart on a machine whose disk survived). [`Protocol::on_start`]
    /// runs again so periodic timers — all lost while down — are re-armed.
    /// No-op if the node is not down.
    pub fn recover_node(&mut self, node: NodeId) {
        if !self.down[node.0] {
            return;
        }
        self.down[node.0] = false;
        self.dispatch_start(node);
    }

    /// Recovers a crashed node with its state wiped: `fresh` replaces the
    /// old protocol instance (a machine rebuilt from nothing) and
    /// [`Protocol::on_start`] runs on it. Works whether or not the node is
    /// currently down.
    pub fn recover_node_wiped(&mut self, node: NodeId, fresh: P) {
        self.nodes[node.0] = fresh;
        self.down[node.0] = false;
        self.dispatch_start(node);
    }

    /// Sets the independent per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_drop_prob(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_prob = p;
    }

    /// The current independent per-message drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Sets the drop probability of the single (bidirectional) link between
    /// `a` and `b`, independent of the global [`Simulator::set_drop_prob`]
    /// coin. `p = 0.0` restores the link. Models a flapping or lossy link
    /// without disturbing the rest of the mesh.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_link_drop(&mut self, a: NodeId, b: NodeId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let key = (a.0.min(b.0), a.0.max(b.0));
        if p == 0.0 {
            self.link_drops.remove(&key);
        } else {
            self.link_drops.insert(key, p);
        }
    }

    /// The drop probability of the link between `a` and `b` (0.0 unless
    /// overridden via [`Simulator::set_link_drop`]).
    pub fn link_drop(&self, a: NodeId, b: NodeId) -> f64 {
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.link_drops.get(&key).copied().unwrap_or(0.0)
    }

    /// Degrades (factor > 1) or restores (factor = 1) every link: message
    /// latencies are multiplied by `factor` at send time.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn set_latency_factor(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "latency factor must be positive");
        self.latency_factor = factor;
    }

    /// The current link-latency multiplier.
    pub fn latency_factor(&self) -> f64 {
        self.latency_factor
    }

    /// Installs a network partition: messages are delivered only within a
    /// group. `None` heals all partitions.
    ///
    /// # Panics
    ///
    /// Panics if the group vector length differs from the node count.
    pub fn set_partitions(&mut self, groups: Option<Vec<u32>>) {
        if let Some(g) = &groups {
            assert_eq!(g.len(), self.nodes.len(), "one group per node");
        }
        self.partitions = groups;
    }

    /// Injects a message from the outside world (e.g. a test driver acting
    /// as a client) for delivery to `to` at the current time, attributed to
    /// `from`.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        let at = self.clock;
        self.push_delivery(at, from, to, Payload::One(msg));
    }

    /// Lets external code act *as* `node`: the closure receives the
    /// protocol and a live [`Context`], so stimulus goes through the same
    /// send/timer path as real events.
    pub fn with_node_ctx<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>) -> R,
    ) -> R {
        self.with_ctx(node, f)
    }

    /// Runs a single event. Returns `false` when the queue is empty.
    ///
    /// Single-stepping is inherently sequential: if a parallel epoch is
    /// live, its sharded queues are merged back into the global structures
    /// first (a no-op otherwise).
    pub fn step(&mut self) -> bool {
        self.unshard();
        self.step_bounded(u64::MAX)
    }

    /// Runs the next event unless its timestamp (µs) exceeds `bound`.
    /// Returns `false` when nothing ran. One peek pair decides both "is
    /// there an event" and "is it in range", so `run_until` doesn't pay a
    /// second round of queue peeks per event.
    fn step_bounded(&mut self, bound: u64) -> bool {
        let Some((next_at, _seq, take_timer)) = peek_next(&self.queue, &mut self.timers) else {
            return false;
        };
        if next_at > bound {
            return false;
        }
        if take_timer {
            let entry = self.timers.pop_earliest().expect("peeked");
            let at = SimTime::ZERO + SimDuration::from_micros(entry.at);
            debug_assert!(at >= self.clock, "time must be monotonic");
            self.clock = at;
            self.events_processed += 1;
            if !self.down[entry.node] {
                self.dispatch_timer(NodeId(entry.node), entry.tag);
            }
        } else {
            let Reverse((at_us, _seq, slot)) = self.queue.pop().expect("peeked");
            let body = self.delivery_slab[slot as usize]
                .take()
                .expect("queued key points at a parked body");
            self.delivery_free.push(slot);
            let at = SimTime::ZERO + SimDuration::from_micros(at_us);
            debug_assert!(at >= self.clock, "time must be monotonic");
            self.clock = at;
            // Timers armed by this delivery's handler must be placeable
            // relative to the new clock.
            self.timers.advance(at_us);
            self.events_processed += 1;
            if self.down[body.to.0] {
                self.stats.record_drop(DropCause::NodeDown);
            } else {
                self.dispatch_payload(body.to, body.from, body.msg);
            }
        }
        true
    }

    /// Runs until the event queue drains. Returns the number of events
    /// processed by this call.
    ///
    /// # Panics
    ///
    /// Panics after `max_events` events as a runaway-protocol guard.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let start = self.events_processed;
        while self.step() {
            assert!(
                self.events_processed - start <= max_events,
                "simulation exceeded {max_events} events without quiescing"
            );
        }
        self.events_processed - start
    }

    /// Runs events with timestamps `<= until`, leaving later events queued.
    /// The clock is advanced to `until` even if the queue drains early.
    ///
    /// With [`Simulator::set_threads`] above 1 this drives the conservative
    /// PDES scheduler; the observable schedule is bit-identical to the
    /// sequential loop at any thread count.
    pub fn run_until(&mut self, until: SimTime) {
        let bound = until.as_micros();
        match self.par_exec {
            Some(f) => f(self, bound),
            None => while self.step_bounded(bound) {},
        }
        if self.clock < until {
            self.clock = until;
            self.timers.advance(bound);
            if let Some(par) = &mut self.par {
                for dom in &mut par.domains {
                    dom.wheel.advance(bound);
                }
            }
        }
    }

    /// Runs for a span of simulated time from the current clock.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.clock + d;
        self.run_until(until);
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently queued (deliveries and timers), across
    /// the global structures and any live domain shards.
    pub fn pending_events(&self) -> usize {
        let sharded: usize =
            self.par.iter().flat_map(|p| p.domains.iter()).map(Domain::pending).sum();
        self.queue.len() + self.timers.len() + sharded
    }

    /// The configured worker count (1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The domain a node is assigned to under the current thread
    /// configuration (contiguous blocks; see `contiguous_domains`).
    /// Exposed for tests and diagnostics.
    pub fn domain_of(&self, node: NodeId) -> u32 {
        contiguous_domains(self.nodes.len(), self.threads)[node.0]
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn push_delivery(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: Payload<P::Msg>) {
        let seq = self.next_seq();
        let body = DeliveryBody { from, to, msg };
        // Between windows of a parallel epoch the sharded queues are
        // authoritative: route straight into the destination's domain.
        // (Seqs are global and real here, so ordering is unaffected.)
        if let Some(par) = &mut self.par {
            let d = par.of_node[to.0] as usize;
            par.domains[d].push_with_seq(at.as_micros(), seq, body);
            return;
        }
        let slot = park_delivery(&mut self.delivery_slab, &mut self.delivery_free, body);
        self.queue.push(Reverse((at.as_micros(), seq, slot)));
    }

    /// Runs `f` against `node`'s protocol with a live context backed by the
    /// pooled scratch buffer, then applies the emitted actions.
    fn with_ctx<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>) -> R,
    ) -> R {
        let mut actions = std::mem::take(&mut self.scratch);
        debug_assert!(actions.is_empty());
        let r = {
            let mut ctx = Context {
                now: self.clock,
                node,
                actions: &mut actions,
                rng: &mut self.node_rngs[node.0],
            };
            f(&mut self.nodes[node.0], &mut ctx)
        };
        self.apply_actions(node, &mut actions);
        self.scratch = actions;
        r
    }

    fn dispatch_start(&mut self, node: NodeId) {
        self.with_ctx(node, |p, ctx| p.on_start(ctx));
    }

    fn dispatch_payload(&mut self, node: NodeId, from: NodeId, payload: Payload<P::Msg>) {
        match payload {
            Payload::One(msg) => self.with_ctx(node, |p, ctx| p.on_message(ctx, from, msg)),
            // The last recipient of a multicast owns the payload outright;
            // earlier ones borrow it.
            Payload::Shared(arc) => match Arc::try_unwrap(arc) {
                Ok(msg) => self.with_ctx(node, |p, ctx| p.on_message(ctx, from, msg)),
                Err(arc) => self.with_ctx(node, |p, ctx| p.on_message_ref(ctx, from, &arc)),
            },
        }
    }

    fn dispatch_timer(&mut self, node: NodeId, tag: u64) {
        self.with_ctx(node, |p, ctx| p.on_timer(ctx, tag));
    }

    fn apply_actions(&mut self, node: NodeId, actions: &mut Vec<Action<P::Msg>>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.route(node, to, Payload::One(msg)),
                Action::Multicast { to, msg } => {
                    // One aggregated accounting entry for the whole fan-out;
                    // the per-recipient loop then only decides delivery. The
                    // counter totals are identical to per-recipient
                    // record_send calls, so stats fingerprints don't move.
                    let (wire_size, class) = (msg.wire_size(), msg.class());
                    self.stats.record_multicast(node, &to, wire_size, class);
                    for t in to {
                        self.route_unaccounted(node, t, Payload::Shared(Arc::clone(&msg)));
                    }
                }
                Action::Timer { delay, tag } => {
                    let at = self.clock + delay;
                    let seq = self.next_seq();
                    let entry = TimerEntry { at: at.as_micros(), seq, node: node.0, tag };
                    match &mut self.par {
                        Some(par) => {
                            let d = par.of_node[node.0] as usize;
                            par.domains[d].wheel.insert(entry);
                        }
                        None => self.timers.insert(entry),
                    }
                }
                Action::Count { name, n } => self.stats.record_event(name, n),
            }
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: Payload<P::Msg>) {
        // Accounting happens at send time: bytes hit the wire even when the
        // destination later proves dead.
        let (wire_size, class) = {
            let m = msg.as_msg();
            (m.wire_size(), m.class())
        };
        self.stats.record_send(from, to, wire_size, class);
        self.route_unaccounted(from, to, msg);
    }

    /// Delivery decision only — byte accounting already happened (either
    /// [`NetStats::record_send`] in [`Simulator::route`] or one batched
    /// [`NetStats::record_multicast`] for a whole fan-out). Which attempts
    /// bump a link's drop counter, and in what per-link order, is part of
    /// the determinism contract.
    fn route_unaccounted(&mut self, from: NodeId, to: NodeId, msg: Payload<P::Msg>) {
        if let Some(groups) = &self.partitions {
            if groups[from.0] != groups[to.0] {
                self.stats.record_drop(DropCause::Partition);
                return;
            }
        }
        // Counter-mode drop coins: identical verdicts whether this attempt
        // runs here or inside a window, because the decision depends only
        // on the link's attempt counter — which lives wherever the sender's
        // domain lives while shards are up.
        let ctrs = match &mut self.par {
            Some(par) => &mut par.domains[par.of_node[from.0] as usize].link_ctrs,
            None => &mut self.link_ctrs,
        };
        if let Some(cause) =
            counter_drop(ctrs, self.drop_seed, self.drop_prob, &self.link_drops, from, to)
        {
            self.stats.record_drop(cause);
            return;
        }
        let Some(latency) = self.topo.dist(from, to) else {
            self.stats.record_drop(DropCause::Unreachable);
            return;
        };
        let latency =
            if self.latency_factor == 1.0 { latency } else { latency.mul_f64(self.latency_factor) };
        let at = self.clock + latency;
        self.push_delivery(at, from, to, msg);
    }

    /// Splits the global queue and timer wheel into per-domain shards for a
    /// parallel epoch. No-op if already sharded. Seqs travel with their
    /// keys, so the merged `(at, seq)` order is untouched.
    fn ensure_sharded(&mut self) {
        if self.par.is_some() {
            return;
        }
        let n = self.nodes.len();
        let of_node = contiguous_domains(n, self.threads);
        let count = of_node.last().map_or(1, |&d| d as usize + 1);
        let mut domains: Vec<Domain<P::Msg>> = Vec::with_capacity(count);
        let mut base = 0;
        for d in 0..count {
            let end = of_node.iter().filter(|&&x| x == d as u32).count() + base;
            let mut dom = Domain::new(base, end, n);
            dom.wheel.advance(self.clock.as_micros());
            domains.push(dom);
            base = end;
        }
        // Drop counters shard by the *sender's* domain: every attempt on a
        // directed link happens while its source node dispatches.
        for ((from, to), c) in self.link_ctrs.drain() {
            domains[of_node[from as usize] as usize].link_ctrs.insert((from, to), c);
        }
        let base_lookahead = self
            .topo
            .min_cross_group_latency(&of_node)
            .map_or(u64::MAX, |l| l.as_micros());
        while let Some(Reverse((at, seq, slot))) = self.queue.pop() {
            let body = self.delivery_slab[slot as usize]
                .take()
                .expect("queued key points at a parked body");
            let d = of_node[body.to.0] as usize;
            domains[d].push_with_seq(at, seq, body);
        }
        self.delivery_slab.clear();
        self.delivery_free.clear();
        for e in self.timers.drain_sorted() {
            domains[of_node[e.node] as usize].wheel.insert(e);
        }
        self.timers = TimerWheel::new();
        self.timers.advance(self.clock.as_micros());
        self.par = Some(ParState { domains, of_node, base_lookahead, merge: MergeScratch::default() });
    }

    /// Merges any live domain shards back into the global structures (the
    /// inverse of `ensure_sharded`). Called whenever sequential stepping
    /// needs the single-queue view: `step`, thread-count changes, and the
    /// zero-lookahead fallback.
    fn unshard(&mut self) {
        let Some(mut par) = self.par.take() else { return };
        for dom in &mut par.domains {
            while let Some(Reverse((at, seq, slot))) = dom.queue.pop() {
                let body = dom.slab[slot as usize]
                    .take()
                    .expect("queued key points at a parked body");
                let slot =
                    park_delivery(&mut self.delivery_slab, &mut self.delivery_free, body);
                self.queue.push(Reverse((at, seq, slot)));
            }
            for e in dom.wheel.drain_sorted() {
                self.timers.insert(e);
            }
            // Domain shards of disjoint key sets fold straight back in.
            for (k, v) in dom.link_ctrs.drain() {
                self.link_ctrs.insert(k, v);
            }
            // Load-bearing: window-side accounting accumulates here until
            // the epoch-end drain, and a mid-epoch fallback lands in this
            // merge instead.
            if !dom.stats.is_untouched() {
                self.stats.merge(&dom.stats);
            }
            self.events_processed += dom.events_processed;
        }
    }

    /// Folds every domain's window-side accumulator into the global stats.
    /// Called once per epoch (and implicitly by `unshard`): accumulators
    /// persist across the epoch's windows, so the per-window barrier never
    /// touches the `O(nodes)` counter vectors.
    fn drain_epoch_stats(&mut self) {
        let Some(par) = &mut self.par else { return };
        for dom in &mut par.domains {
            if dom.stats.is_untouched() {
                continue;
            }
            self.stats.merge(&dom.stats);
            dom.stats.clear_for_reuse();
        }
    }

    /// The window barrier: replays every domain's emission log in exact
    /// sequential dispatch order, assigning real seqs and enqueueing
    /// surviving (cross-domain or post-window) events into their target
    /// domains. All commutative accounting — bytes, classes, drop tallies,
    /// counter events — already happened thread-side in the domain
    /// accumulators, so the serial section here replays only the
    /// ordering-sensitive emissions.
    ///
    /// Dispatch records merge by the dispatched event's real `(at, seq)`
    /// key. A record whose key is provisional (`seq >= seq_base`) was
    /// emitted *this* window by its own domain, and its emitter's record
    /// sits earlier in the same domain's list — so by the time it reaches
    /// the merge head, its real seq is already known. Each domain's record
    /// list is already sorted (domains execute in local `(at, seq)` order),
    /// so the merge is a loser-tree tournament over the per-domain runs:
    /// `O(log D)` per record, with all scratch reused window to window.
    /// This reconstructs the exact global emission order of the sequential
    /// engine, which is what makes every thread count bit-identical.
    fn commit_window(&mut self, seq_base: u64) {
        let mut par = self.par.take().expect("commit only inside a parallel epoch");
        let count = par.domains.len();
        let mut scratch = std::mem::take(&mut par.merge);
        scratch.heads.clear();
        scratch.heads.resize(count, 0);
        scratch.real_of.resize_with(count, Vec::new);
        for (d, v) in scratch.real_of.iter_mut().enumerate() {
            v.clear();
            v.reserve(par.domains[d].provisional as usize);
        }
        scratch.keys.clear();
        for d in 0..count {
            scratch.keys.push(head_key(&par.domains[d].records, 0, seq_base, &scratch.real_of[d]));
        }
        scratch.tree.rebuild(count, &scratch.keys);
        loop {
            let d = scratch.tree.winner();
            if scratch.keys[d].is_none() {
                break;
            }
            let r = par.domains[d].records[scratch.heads[d]];
            scratch.heads[d] += 1;
            let from = NodeId(r.node as usize);
            for i in r.emi as usize..(r.emi + r.emi_len) as usize {
                // Pull the emission out by value so the borrow of this
                // domain's log ends before any cross-domain park.
                let step: Step<P::Msg> = match &mut par.domains[d].emissions[i] {
                    Emission::Exec => Step::Exec,
                    Emission::Park { to, at, body } => Step::Park {
                        to: *to,
                        at: *at,
                        body: body.take().expect("parked body consumed once"),
                    },
                    Emission::ArmTimer { at, tag } => Step::Arm { at: *at, tag: *tag },
                };
                let s = self.next_seq();
                match step {
                    Step::Exec => scratch.real_of[d].push(s),
                    Step::Park { to, at, body } => {
                        let td = par.of_node[to.0] as usize;
                        par.domains[td].push_with_seq(at, s, DeliveryBody { from, to, msg: body });
                    }
                    Step::Arm { at, tag } => {
                        par.domains[d].wheel.insert(TimerEntry {
                            at,
                            seq: s,
                            node: r.node as usize,
                            tag,
                        });
                    }
                }
            }
            // Only this leaf's key can have changed: `real_of` entries for
            // other domains are appended exclusively by their own records.
            scratch.keys[d] =
                head_key(&par.domains[d].records, scratch.heads[d], seq_base, &scratch.real_of[d]);
            scratch.tree.replay(d, &scratch.keys);
        }
        for (d, dom) in par.domains.iter_mut().enumerate() {
            debug_assert_eq!(scratch.heads[d], dom.records.len(), "every record merged");
            debug_assert_eq!(
                dom.records.iter().map(|r| r.emi_len as usize).sum::<usize>(),
                dom.emissions.len(),
                "every emission replayed"
            );
            dom.records.clear();
            dom.emissions.clear();
            self.events_processed += dom.events_processed;
            dom.events_processed = 0;
            dom.provisional = 0;
        }
        par.merge = scratch;
        self.par = Some(par);
    }
}

/// Parallel execution requires moving protocol state and messages across
/// worker threads, hence the bounds. A `Simulator` whose protocol is not
/// `Send` simply never gains `set_threads` and stays sequential.
impl<P> Simulator<P>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
{
    /// Sets the worker-thread count for [`Simulator::run_until`] /
    /// [`Simulator::run_for`]. `1` restores the plain sequential loop.
    ///
    /// The observable schedule — traces, stats, fingerprints, RNG streams —
    /// is bit-identical at every thread count; threads only change
    /// wall-clock time. Counts above the node count are capped.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "thread count must be at least 1");
        let threads = threads.min(self.nodes.len().max(1));
        if threads == self.threads {
            return;
        }
        // Repartitioning invalidates the current shards; fold them back
        // first (cheap, and only on reconfiguration).
        self.unshard();
        self.threads = threads;
        // Stored as a fn pointer so the unbounded `run_until` can invoke
        // the parallel path without carrying these bounds itself.
        self.par_exec = if threads > 1 { Some(Self::parallel_epoch) } else { None };
    }

    /// The conservative-PDES driver behind `run_until` when `threads > 1`:
    /// repeatedly picks the global minimum next-event time `t`, lets every
    /// domain run independently inside `[t, t + lookahead)`, then commits
    /// the window barrier. Random drops and link flaps do *not* force a
    /// fallback: their verdicts are counter-mode hashes of each attempt's
    /// identity, so windows stay parallel through chaos phases. The only
    /// remaining fallback is the absence of a usable lookahead window.
    fn parallel_epoch(sim: &mut Self, bound: u64) {
        let epoch_start = std::time::Instant::now();
        loop {
            let eligible = sim.threads > 1 && sim.nodes.len() >= 2;
            if !eligible {
                sim.fallback(bound);
                break;
            }
            sim.ensure_sharded();
            let par = sim.par.as_mut().expect("just sharded");
            // Scale the lookahead exactly like message routing scales
            // latency: rounding is monotone, so the scaled bound is still a
            // valid lower bound on cross-domain delivery delay.
            let w = match par.base_lookahead {
                u64::MAX => u64::MAX,
                base if sim.latency_factor == 1.0 => base,
                base => SimDuration::from_micros(base).mul_f64(sim.latency_factor).as_micros(),
            };
            if w == 0 {
                // A zero-latency cross-domain link means no safe window.
                sim.fallback(bound);
                break;
            }
            let mut t_min: Option<u64> = None;
            for dom in &mut par.domains {
                if let Some((at, _, _)) = peek_next(&dom.queue, &mut dom.wheel) {
                    t_min = Some(t_min.map_or(at, |t| t.min(at)));
                }
            }
            let Some(t) = t_min else { break };
            if t > bound {
                break;
            }
            // `bound + 1` because the window is half-open while `bound` is
            // inclusive (run events with `at <= bound`).
            let window_end = t.saturating_add(w).min(bound.saturating_add(1));
            let seq_base = sim.seq;
            sim.run_window(window_end, seq_base);
            let serial_start = std::time::Instant::now();
            sim.commit_window(seq_base);
            sim.coverage.serial_nanos += serial_start.elapsed().as_nanos() as u64;
        }
        sim.drain_epoch_stats();
        sim.coverage.epoch_nanos += epoch_start.elapsed().as_nanos() as u64;
    }

    /// Abandons the windowed scheduler for this `run_until`: folds shards
    /// back and drains the bound sequentially, with coverage accounting.
    fn fallback(&mut self, bound: u64) {
        self.coverage.fallback_entries += 1;
        self.unshard();
        let before = self.events_processed;
        while self.step_bounded(bound) {}
        self.coverage.fallback_events += self.events_processed - before;
    }

    /// Executes one window `[t, window_end)` across all domains, in
    /// parallel when enough work is pending. Domains are contiguous node
    /// blocks, so `split_at_mut` hands each worker disjoint `&mut` slices
    /// of protocol state and per-node RNGs without any locking.
    fn run_window(&mut self, window_end: u64, seq_base: u64) {
        let mut par = self.par.take().expect("window requires live shards");
        let env = WindowEnv {
            topo: &self.topo,
            down: &self.down,
            partitions: self.partitions.as_deref(),
            latency_factor: self.latency_factor,
            drop_prob: self.drop_prob,
            link_drops: &self.link_drops,
            drop_seed: self.drop_seed,
            window_end,
            seq_base,
        };
        let pending: usize = par.domains.iter().map(Domain::pending).sum();
        if pending < PARALLEL_SPAWN_THRESHOLD {
            self.coverage.windows_inline += 1;
        } else {
            self.coverage.windows_parallel += 1;
        }
        // One window job per domain: its shard plus disjoint `&mut`
        // slices of protocol state and per-node RNGs.
        type Job<'a, P> =
            (&'a mut Domain<<P as Protocol>::Msg>, &'a mut [P], &'a mut [ChaCha8Rng]);
        let mut jobs: Vec<Job<'_, P>> = Vec::with_capacity(par.domains.len());
        let mut nodes_rest: &mut [P] = &mut self.nodes;
        let mut rngs_rest: &mut [ChaCha8Rng] = &mut self.node_rngs;
        for dom in &mut par.domains {
            let take = dom.end - dom.base;
            let (n, nr) = nodes_rest.split_at_mut(take);
            let (r, rr) = rngs_rest.split_at_mut(take);
            nodes_rest = nr;
            rngs_rest = rr;
            jobs.push((dom, n, r));
        }
        if pending < PARALLEL_SPAWN_THRESHOLD {
            // Tiny windows aren't worth thread wake-ups. Domains are
            // independent within a window, so inline execution produces
            // byte-identical results.
            for (dom, nodes, rngs) in jobs {
                run_domain_window(dom, nodes, rngs, &env);
            }
        } else {
            std::thread::scope(|s| {
                let mut jobs = jobs.into_iter();
                let first = jobs.next();
                for (dom, nodes, rngs) in jobs {
                    let env = &env;
                    s.spawn(move || run_domain_window(dom, nodes, rngs, env));
                }
                // The driver thread works the first domain instead of
                // idling at the join.
                if let Some((dom, nodes, rngs)) = first {
                    run_domain_window(dom, nodes, rngs, &env);
                }
            });
        }
        self.par = Some(par);
    }
}

/// One domain's event loop for one window: run every local event with
/// `at < window_end` in `(at, seq)` order, recording emissions for the
/// barrier replay instead of touching global state.
fn run_domain_window<P: Protocol>(
    dom: &mut Domain<P::Msg>,
    nodes: &mut [P],
    rngs: &mut [ChaCha8Rng],
    env: &WindowEnv<'_>,
) {
    loop {
        let Some((at, _seq, take_timer)) = peek_next(&dom.queue, &mut dom.wheel) else {
            return;
        };
        if at >= env.window_end {
            return;
        }
        if take_timer {
            let entry = dom.wheel.pop_earliest().expect("peeked");
            dom.events_processed += 1;
            if !env.down[entry.node] {
                dispatch_window(dom, nodes, rngs, env, (entry.at, entry.seq), NodeId(entry.node), |p, ctx| {
                    p.on_timer(ctx, entry.tag)
                });
            }
        } else {
            let Reverse((at_us, seq, slot)) = dom.queue.pop().expect("peeked");
            let body = dom.slab[slot as usize]
                .take()
                .expect("queued key points at a parked body");
            dom.free.push(slot);
            // Mirrors the sequential loop: timers armed by this handler
            // must be placeable relative to the new local time.
            dom.wheel.advance(at_us);
            dom.events_processed += 1;
            if env.down[body.to.0] {
                // Delivery-time drops are pure counters, so they can live
                // in the domain accumulator and merge at the barrier.
                dom.stats.record_drop(DropCause::NodeDown);
            } else {
                let (to, from) = (body.to, body.from);
                match body.msg {
                    Payload::One(msg) => {
                        dispatch_window(dom, nodes, rngs, env, (at_us, seq), to, |p, ctx| {
                            p.on_message(ctx, from, msg)
                        });
                    }
                    Payload::Shared(arc) => match Arc::try_unwrap(arc) {
                        Ok(msg) => {
                            dispatch_window(dom, nodes, rngs, env, (at_us, seq), to, |p, ctx| {
                                p.on_message(ctx, from, msg)
                            });
                        }
                        Err(arc) => {
                            dispatch_window(dom, nodes, rngs, env, (at_us, seq), to, |p, ctx| {
                                p.on_message_ref(ctx, from, &arc)
                            });
                        }
                    },
                }
            }
        }
    }
}

/// Runs one handler inside a window and logs its emissions. Intra-window
/// intra-domain effects execute immediately under provisional seqs
/// (`seq_base + k`, `k` counting only executed emissions in this domain);
/// everything else parks for the barrier. The provisional numbering
/// preserves the domain-local relative order the sequential engine would
/// produce, and the barrier replay rewrites it into the real global order.
fn dispatch_window<P: Protocol>(
    dom: &mut Domain<P::Msg>,
    nodes: &mut [P],
    rngs: &mut [ChaCha8Rng],
    env: &WindowEnv<'_>,
    key: (u64, u64),
    node: NodeId,
    f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
) {
    let mut actions = std::mem::take(&mut dom.actions);
    debug_assert!(actions.is_empty());
    {
        let mut ctx = Context {
            now: SimTime::ZERO + SimDuration::from_micros(key.0),
            node,
            actions: &mut actions,
            rng: &mut rngs[node.0 - dom.base],
        };
        f(&mut nodes[node.0 - dom.base], &mut ctx);
    }
    let emi = dom.emissions.len() as u32;
    for action in actions.drain(..) {
        match action {
            Action::Send { to, msg } => {
                let (wire, class) = (msg.wire_size(), msg.class());
                dom.stats.record_send(node, to, wire, class);
                window_route(dom, env, node, to, key.0, Payload::One(msg));
            }
            Action::Multicast { to, msg } => {
                // One aggregated accounting entry for the fan-out, exactly
                // like the sequential `apply_actions` path.
                let (wire, class) = (msg.wire_size(), msg.class());
                dom.stats.record_multicast(node, &to, wire, class);
                for &t in &to {
                    window_route(dom, env, node, t, key.0, Payload::Shared(Arc::clone(&msg)));
                }
            }
            Action::Timer { delay, tag } => {
                let at = (SimTime::ZERO + SimDuration::from_micros(key.0) + delay).as_micros();
                if at < env.window_end {
                    let seq = env.seq_base + dom.provisional;
                    dom.provisional += 1;
                    dom.wheel.insert(TimerEntry { at, seq, node: node.0, tag });
                    dom.emissions.push(Emission::Exec);
                } else {
                    dom.emissions.push(Emission::ArmTimer { at, tag });
                }
            }
            Action::Count { name, n } => dom.stats.record_event(name, n),
        }
    }
    dom.actions = actions;
    let emi_len = dom.emissions.len() as u32 - emi;
    if emi_len > 0 {
        dom.records.push(DispatchRecord {
            at: key.0,
            seq: key.1,
            node: node.0 as u32,
            emi,
            emi_len,
        });
    }
}

/// The window-local routing decision, mirroring `route_unaccounted` step
/// for step: partition check, counter-mode drop coins (against this
/// domain's shard of the link counters — the sender always lives here),
/// reachability, then latency. Drops tally into the domain accumulator and
/// log nothing; surviving recipients log exactly one seq-consuming
/// [`Emission`] for the barrier replay.
fn window_route<M>(
    dom: &mut Domain<M>,
    env: &WindowEnv<'_>,
    from: NodeId,
    to: NodeId,
    now_us: u64,
    msg: Payload<M>,
) {
    if let Some(groups) = env.partitions {
        if groups[from.0] != groups[to.0] {
            dom.stats.record_drop(DropCause::Partition);
            return;
        }
    }
    if let Some(cause) = counter_drop(
        &mut dom.link_ctrs,
        env.drop_seed,
        env.drop_prob,
        env.link_drops,
        from,
        to,
    ) {
        dom.stats.record_drop(cause);
        return;
    }
    let Some(latency) = env.topo.dist(from, to) else {
        dom.stats.record_drop(DropCause::Unreachable);
        return;
    };
    let latency =
        if env.latency_factor == 1.0 { latency } else { latency.mul_f64(env.latency_factor) };
    let at = (SimTime::ZERO + SimDuration::from_micros(now_us) + latency).as_micros();
    let intra = dom.base <= to.0 && to.0 < dom.end;
    if intra && at < env.window_end {
        let seq = env.seq_base + dom.provisional;
        dom.provisional += 1;
        dom.push_with_seq(at, seq, DeliveryBody { from, to, msg });
        dom.emissions.push(Emission::Exec);
    } else {
        // The lookahead guarantee: a cross-domain delivery can never land
        // inside the window that produced it.
        debug_assert!(
            intra || at >= env.window_end,
            "cross-domain send inside its own window violates lookahead"
        );
        dom.emissions.push(Emission::Park { to, at, body: Some(msg) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Toy protocol: floods a counter token around the ring `rounds` times.
    #[derive(Debug)]
    struct RingToken {
        id: usize,
        n: usize,
        rounds_left: u32,
        seen: u32,
    }

    #[derive(Debug, Clone)]
    struct Token(u32);

    impl Message for Token {
        fn wire_size(&self) -> usize {
            16
        }
        fn class(&self) -> &'static str {
            "token"
        }
    }

    impl Protocol for RingToken {
        type Msg = Token;

        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            if self.id == 0 {
                ctx.send(NodeId(1 % self.n), Token(self.rounds_left));
            }
        }

        fn on_message(&mut self, ctx: &mut Context<'_, Token>, _from: NodeId, msg: Token) {
            self.seen += 1;
            let next = NodeId((self.id + 1) % self.n);
            if self.id == 0 {
                if msg.0 > 1 {
                    ctx.send(next, Token(msg.0 - 1));
                }
            } else {
                ctx.send(next, msg);
            }
        }
    }

    fn ring_sim(n: usize, rounds: u32, seed: u64) -> Simulator<RingToken> {
        let topo = crate::topology::Topology::ring(n, SimDuration::from_millis(10));
        let nodes = (0..n)
            .map(|id| RingToken { id, n, rounds_left: rounds, seen: 0 })
            .collect();
        Simulator::new(topo, nodes, seed)
    }

    #[test]
    fn token_circulates_and_time_advances() {
        let mut sim = ring_sim(5, 3, 1);
        sim.start();
        sim.run_to_quiescence(10_000);
        // 3 full rounds of 5 hops = 15 deliveries, 10 ms each.
        assert_eq!(sim.now().as_millis(), 150);
        for i in 0..5 {
            assert_eq!(sim.node(NodeId(i)).seen, 3, "node {i}");
        }
        assert_eq!(sim.stats().class("token").messages, 15);
        assert_eq!(sim.stats().total_bytes(), 15 * 16);
    }

    #[test]
    fn determinism_across_runs() {
        let run = |seed| {
            let mut sim = ring_sim(7, 4, seed);
            sim.start();
            sim.run_to_quiescence(10_000);
            (sim.now(), sim.stats().total_messages(), sim.events_processed())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn down_node_breaks_the_ring() {
        let mut sim = ring_sim(5, 3, 1);
        sim.set_down(NodeId(3), true);
        sim.start();
        sim.run_to_quiescence(10_000);
        // Token dies at node 3: nodes 1..=2 saw it once, 4 never.
        assert_eq!(sim.node(NodeId(1)).seen, 1);
        assert_eq!(sim.node(NodeId(2)).seen, 1);
        assert_eq!(sim.node(NodeId(4)).seen, 0);
        assert_eq!(sim.stats().dropped_messages(), 1);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::NodeDown), 1);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::Random), 0);
    }

    #[test]
    fn drops_are_attributed_to_their_cause() {
        let mut sim = ring_sim(4, 1, 1);
        sim.set_partitions(Some(vec![0, 1, 1, 1]));
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::Partition), 1);

        let mut sim = ring_sim(4, 1, 1);
        sim.set_drop_prob(1.0);
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::Random), 1);
    }

    #[test]
    fn crash_preserves_state_and_recover_restarts() {
        let mut sim = ring_sim(5, 3, 1);
        sim.start();
        // Let the token pass node 2 once, then crash it.
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(25));
        assert_eq!(sim.node(NodeId(2)).seen, 1);
        sim.crash_node(NodeId(2));
        assert!(sim.is_down(NodeId(2)));
        sim.run_for(SimDuration::from_millis(50));
        // The ring is severed at node 2; its state survived the crash.
        assert_eq!(sim.node(NodeId(2)).seen, 1);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::NodeDown), 1);
        sim.recover_node(NodeId(2));
        assert!(!sim.is_down(NodeId(2)));
        assert_eq!(sim.node(NodeId(2)).seen, 1, "state preserved across recovery");
    }

    #[test]
    fn recover_node_reruns_on_start() {
        // RingToken's node 0 emits the token from on_start, so recovering
        // node 0 restarts the whole circulation.
        let mut sim = ring_sim(3, 1, 1);
        sim.start();
        sim.run_to_quiescence(10_000);
        let seen_before = sim.node(NodeId(1)).seen;
        sim.crash_node(NodeId(0));
        sim.recover_node(NodeId(0));
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.node(NodeId(1)).seen, seen_before + 1);
    }

    #[test]
    fn recover_node_wiped_replaces_state() {
        let mut sim = ring_sim(5, 3, 1);
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.node(NodeId(2)).seen, 3);
        sim.crash_node(NodeId(2));
        sim.recover_node_wiped(NodeId(2), RingToken { id: 2, n: 5, rounds_left: 0, seen: 0 });
        assert_eq!(sim.node(NodeId(2)).seen, 0, "wiped recovery loses state");
        assert!(!sim.is_down(NodeId(2)));
    }

    #[test]
    fn latency_factor_stretches_links() {
        let mut sim = ring_sim(5, 1, 1);
        sim.set_latency_factor(3.0);
        sim.start();
        sim.run_to_quiescence(10_000);
        // One round of 5 hops at 10 ms × 3.
        assert_eq!(sim.now().as_millis(), 150);
        sim.set_latency_factor(1.0);
        assert!((sim.latency_factor() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn partitions_block_delivery() {
        let mut sim = ring_sim(4, 1, 1);
        // Node 0,1 in group 0; nodes 2,3 in group 1.
        sim.set_partitions(Some(vec![0, 0, 1, 1]));
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.node(NodeId(1)).seen, 1);
        assert_eq!(sim.node(NodeId(2)).seen, 0);
    }

    #[test]
    fn link_drop_kills_one_link_only() {
        // Flap the 1→2 link closed; the token dies there and the drop is
        // attributed to LinkFlap, not Random.
        let mut sim = ring_sim(4, 1, 1);
        sim.set_link_drop(NodeId(1), NodeId(2), 1.0);
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.node(NodeId(1)).seen, 1);
        assert_eq!(sim.node(NodeId(2)).seen, 0);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::LinkFlap), 1);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::Random), 0);
        // Restoring the link clears the override in both directions.
        sim.set_link_drop(NodeId(2), NodeId(1), 0.0);
        assert_eq!(sim.link_drop(NodeId(1), NodeId(2)), 0.0);
    }

    #[test]
    fn full_drop_probability_kills_everything() {
        let mut sim = ring_sim(4, 2, 9);
        sim.set_drop_prob(1.0);
        sim.start();
        sim.run_to_quiescence(10_000);
        for i in 1..4 {
            assert_eq!(sim.node(NodeId(i)).seen, 0);
        }
    }

    #[test]
    fn run_until_respects_bound() {
        let mut sim = ring_sim(5, 3, 1);
        sim.start();
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(35));
        // 10ms per hop: 3 deliveries fit in 35 ms.
        let total: u32 = (0..5).map(|i| sim.node(NodeId(i)).seen).sum();
        assert_eq!(total, 3);
        assert_eq!(sim.now().as_millis(), 35);
        assert!(sim.pending_events() > 0);
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Debug, Default)]
        struct T {
            fired: Vec<u64>,
        }
        #[derive(Debug, Clone)]
        struct Never;
        impl Message for Never {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl Protocol for T {
            type Msg = Never;
            fn on_start(&mut self, ctx: &mut Context<'_, Never>) {
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_message(&mut self, _: &mut Context<'_, Never>, _: NodeId, _: Never) {}
            fn on_timer(&mut self, _: &mut Context<'_, Never>, tag: u64) {
                self.fired.push(tag);
            }
        }
        let topo = crate::topology::Topology::builder(1).build();
        let mut sim = Simulator::new(topo, vec![T::default()], 0);
        sim.start();
        sim.run_to_quiescence(100);
        assert_eq!(sim.node(NodeId(0)).fired, vec![1, 2, 3]);
        assert_eq!(sim.now().as_millis(), 30);
    }

    #[test]
    fn far_future_timers_survive_the_wheel_horizon() {
        // A timer past the wheel's in-range horizon (~16.7 s) lands in the
        // overflow heap and still fires in order with near-term timers.
        #[derive(Debug, Default)]
        struct T {
            fired: Vec<(u64, u64)>,
        }
        #[derive(Debug, Clone)]
        struct Never;
        impl Message for Never {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl Protocol for T {
            type Msg = Never;
            fn on_start(&mut self, ctx: &mut Context<'_, Never>) {
                ctx.set_timer(SimDuration::from_secs(60), 60);
                ctx.set_timer(SimDuration::from_millis(1), 1);
                ctx.set_timer(SimDuration::from_secs(20), 20);
            }
            fn on_message(&mut self, _: &mut Context<'_, Never>, _: NodeId, _: Never) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Never>, tag: u64) {
                self.fired.push((ctx.now().as_micros(), tag));
            }
        }
        let topo = crate::topology::Topology::builder(1).build();
        let mut sim = Simulator::new(topo, vec![T::default()], 0);
        sim.start();
        sim.run_to_quiescence(100);
        assert_eq!(
            sim.node(NodeId(0)).fired,
            vec![(1_000, 1), (20_000_000, 20), (60_000_000, 60)]
        );
    }

    #[test]
    fn with_node_ctx_sends_through_network() {
        let mut sim = ring_sim(3, 1, 5);
        // Drive node 2 externally instead of via on_start.
        sim.with_node_ctx(NodeId(2), |_, ctx| ctx.send(NodeId(0), Token(1)));
        sim.run_to_quiescence(100);
        assert_eq!(sim.node(NodeId(0)).seen, 1);
    }

    #[test]
    fn broadcast_matches_send_loop_exactly() {
        // Two identical sims, one protocol using a send loop, the other
        // ctx.broadcast: stats, drop attribution, drop-coin consumption,
        // and delivery order must be indistinguishable.
        #[derive(Debug)]
        struct Fan {
            id: usize,
            use_broadcast: bool,
            got: Vec<(u64, usize, u32)>,
        }
        #[derive(Debug, Clone)]
        struct Blob(u32, Vec<u8>);
        impl Message for Blob {
            fn wire_size(&self) -> usize {
                32 + self.1.len()
            }
        }
        impl Protocol for Fan {
            type Msg = Blob;
            fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
                if self.id == 0 {
                    let msg = Blob(7, vec![0xAB; 256]);
                    if self.use_broadcast {
                        ctx.broadcast((1..5).map(NodeId), msg);
                    } else {
                        for i in 1..5 {
                            ctx.send(NodeId(i), msg.clone());
                        }
                    }
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Blob>, from: NodeId, msg: Blob) {
                self.got.push((ctx.now().as_micros(), from.0, msg.0));
                if self.id == 2 {
                    // Reply so the broadcast run also exercises unicast after
                    // shared deliveries.
                    ctx.send(NodeId(0), Blob(msg.0 + 1, Vec::new()));
                }
            }
        }
        let run = |use_broadcast: bool| {
            let topo = crate::topology::Topology::full_mesh(5, SimDuration::from_millis(10));
            let nodes =
                (0..5).map(|id| Fan { id, use_broadcast, got: Vec::new() }).collect();
            let mut sim = Simulator::new(topo, nodes, 77);
            sim.set_drop_prob(0.3);
            sim.start();
            sim.run_to_quiescence(1_000);
            let got: Vec<_> = (0..5).map(|i| sim.node(NodeId(i)).got.clone()).collect();
            (
                got,
                sim.stats().total_messages(),
                sim.stats().total_bytes(),
                sim.stats().dropped_by_cause(DropCause::Random),
                sim.events_processed(),
                sim.now(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn shared_payload_dispatches_via_on_message_ref() {
        // A protocol overriding on_message_ref sees borrowed deliveries for
        // all but the last recipient of a broadcast (which owns the Arc).
        #[derive(Debug, Default)]
        struct RefCounter {
            owned: u32,
            borrowed: u32,
        }
        #[derive(Debug, Clone)]
        struct Big(#[allow(dead_code)] Vec<u8>);
        impl Message for Big {
            fn wire_size(&self) -> usize {
                self.0.len()
            }
        }
        impl Protocol for RefCounter {
            type Msg = Big;
            fn on_start(&mut self, ctx: &mut Context<'_, Big>) {
                if ctx.node() == NodeId(0) {
                    ctx.broadcast((1..4).map(NodeId), Big(vec![1; 1024]));
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Big>, _: NodeId, _: Big) {
                self.owned += 1;
            }
            fn on_message_ref(&mut self, _: &mut Context<'_, Big>, _: NodeId, _: &Big) {
                self.borrowed += 1;
            }
        }
        let topo = crate::topology::Topology::full_mesh(4, SimDuration::from_millis(10));
        let mut sim = Simulator::new(topo, (0..4).map(|_| RefCounter::default()).collect(), 0);
        sim.start();
        sim.run_to_quiescence(100);
        let (owned, borrowed) = sim
            .nodes()
            .fold((0, 0), |(o, b), n| (o + n.owned, b + n.borrowed));
        assert_eq!(owned + borrowed, 3);
        assert_eq!(owned, 1, "exactly the final delivery owns the payload");
        assert_eq!(borrowed, 2);
    }

    #[test]
    fn broadcast_through_with_inner_wraps_once() {
        // An embedded protocol broadcasting through with_inner keeps the
        // multicast shape (one wrapped Arc payload, n recipients).
        #[derive(Debug, Default)]
        struct Outer {
            inner_got: u32,
        }
        #[derive(Debug, Clone)]
        struct Inner(u32);
        #[derive(Debug, Clone)]
        struct Env(Inner);
        impl Message for Env {
            fn wire_size(&self) -> usize {
                8
            }
        }
        impl Protocol for Outer {
            type Msg = Env;
            fn on_start(&mut self, ctx: &mut Context<'_, Env>) {
                if ctx.node() == NodeId(0) {
                    ctx.with_inner(Env, |inner: &mut Context<'_, Inner>| {
                        inner.broadcast((1..3).map(NodeId), Inner(41));
                    });
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Env>, _: NodeId, msg: Env) {
                assert_eq!(msg.0 .0, 41);
                self.inner_got += 1;
            }
        }
        let topo = crate::topology::Topology::full_mesh(3, SimDuration::from_millis(5));
        let mut sim = Simulator::new(topo, vec![Outer::default(), Outer::default(), Outer::default()], 3);
        sim.start();
        sim.run_to_quiescence(100);
        let total: u32 = sim.nodes().map(|n| n.inner_got).sum();
        assert_eq!(total, 2);
    }

    #[test]
    #[should_panic(expected = "without quiescing")]
    fn runaway_guard_trips() {
        // Protocol that ping-pongs forever.
        #[derive(Debug)]
        struct Pong;
        #[derive(Debug, Clone)]
        struct Ping;
        impl Message for Ping {
            fn wire_size(&self) -> usize {
                1
            }
        }
        impl Protocol for Pong {
            type Msg = Ping;
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                if ctx.node() == NodeId(0) {
                    ctx.send(NodeId(1), Ping);
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, _: Ping) {
                ctx.send(from, Ping);
            }
        }
        let topo = crate::topology::Topology::full_mesh(2, SimDuration::from_millis(1));
        let mut sim = Simulator::new(topo, vec![Pong, Pong], 0);
        sim.start();
        sim.run_to_quiescence(50);
    }

    /// Not a correctness test: times the engine on the perf-report grid
    /// workload shape (timer-heavy, lockstep cohorts) for hot-path tuning.
    /// Run with `cargo test -p oceanstore-sim --release
    /// engine_grid_throughput -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn engine_grid_throughput() {
        const PERIODS_MS: [u64; 4] = [5, 11, 17, 29];
        #[derive(Debug)]
        struct Ticker {
            id: usize,
            fires: u64,
            horizon: SimTime,
        }
        #[derive(Debug, Clone)]
        struct Blob(Vec<u8>);
        impl Message for Blob {
            fn wire_size(&self) -> usize {
                self.0.len()
            }
            fn class(&self) -> &'static str {
                "tick"
            }
        }
        impl Protocol for Ticker {
            type Msg = Blob;
            fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
                for p in PERIODS_MS {
                    ctx.set_timer(SimDuration::from_millis(p), p);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Blob>, _: NodeId, _: Blob) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Blob>, tag: u64) {
                self.fires += 1;
                let to = NodeId((self.id + 1 + (self.fires % 3) as usize) % 256);
                ctx.send(to, Blob(vec![0x5A; 16]));
                if ctx.now() + SimDuration::from_millis(tag) <= self.horizon {
                    ctx.set_timer(SimDuration::from_millis(tag), tag);
                }
            }
        }
        let horizon = SimTime::ZERO + SimDuration::from_millis(400);
        for round in 0..3 {
            let nodes: Vec<Ticker> =
                (0..256).map(|id| Ticker { id, fires: 0, horizon }).collect();
            let topo = crate::topology::Topology::grid(16, 16, SimDuration::from_millis(1));
            let mut sim = Simulator::new(topo, nodes, 7);
            sim.start();
            let t = std::time::Instant::now();
            sim.run_until(horizon);
            let dt = t.elapsed().as_secs_f64();
            println!(
                "round {round}: {} events in {:.1} ms = {:.2} M events/s",
                sim.events_processed(),
                dt * 1e3,
                sim.events_processed() as f64 / dt / 1e6
            );
        }
    }

    /// Gossip workload for the parallel-scheduler tests: timers, unicast,
    /// multicast, per-node RNG draws, and counters, with fan-out that
    /// straddles domain boundaries on a ring.
    #[derive(Debug)]
    struct Gossip {
        id: usize,
        n: usize,
        rounds_left: u32,
        heard: u64,
        rng_sum: u64,
    }

    #[derive(Debug, Clone)]
    struct Rumor(u32);

    impl Message for Rumor {
        fn wire_size(&self) -> usize {
            24
        }
        fn class(&self) -> &'static str {
            "rumor"
        }
    }

    impl Protocol for Gossip {
        type Msg = Rumor;

        fn on_start(&mut self, ctx: &mut Context<'_, Rumor>) {
            ctx.set_timer(SimDuration::from_millis(1 + (self.id % 7) as u64), 0);
        }

        fn on_message(&mut self, ctx: &mut Context<'_, Rumor>, _from: NodeId, msg: Rumor) {
            self.heard += 1;
            self.rng_sum = self.rng_sum.wrapping_add(ctx.rng().gen::<u64>());
            if msg.0 > 0 && self.heard.is_multiple_of(3) {
                ctx.send(NodeId((self.id + 1) % self.n), Rumor(msg.0 - 1));
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, Rumor>, _tag: u64) {
            if self.rounds_left == 0 {
                return;
            }
            self.rounds_left -= 1;
            ctx.count("gossip_round");
            let targets: Vec<NodeId> = (1..=3).map(|k| NodeId((self.id + k) % self.n)).collect();
            ctx.broadcast(targets, Rumor(2));
            ctx.set_timer(SimDuration::from_millis(5 + (self.id % 3) as u64), 0);
        }
    }

    fn gossip_sim(n: usize, seed: u64) -> Simulator<Gossip> {
        let topo = crate::topology::Topology::ring(n, SimDuration::from_millis(10));
        let nodes = (0..n)
            .map(|id| Gossip { id, n, rounds_left: 8, heard: 0, rng_sum: 0 })
            .collect();
        Simulator::new(topo, nodes, seed)
    }

    /// Everything observable: clock, event count, network totals, drops,
    /// classes, counters, per-node traffic, and per-node protocol state.
    fn gossip_fingerprint(sim: &Simulator<Gossip>) -> String {
        use std::fmt::Write as _;
        let s = sim.stats();
        let mut out = format!(
            "now={} ev={} msgs={} bytes={} dropped={}",
            sim.now().as_micros(),
            sim.events_processed(),
            s.total_messages(),
            s.total_bytes(),
            s.dropped_messages(),
        );
        for (cause, n) in s.drops_by_cause() {
            let _ = write!(out, " drop[{cause:?}]={n}");
        }
        for (class, c) in s.classes() {
            let _ = write!(out, " {class}={}/{}", c.messages, c.bytes);
        }
        for (event, n) in s.events() {
            let _ = write!(out, " ev[{event}]={n}");
        }
        for (i, g) in sim.nodes().enumerate() {
            let _ = write!(
                out,
                " n{i}=[{}/{}/{}/{}/{}]",
                g.heard,
                g.rng_sum,
                g.rounds_left,
                s.sent_by(NodeId(i)),
                s.received_by(NodeId(i)),
            );
        }
        out
    }

    #[test]
    fn parallel_gossip_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut sim = gossip_sim(24, 42);
            sim.set_threads(threads);
            sim.start();
            sim.run_for(SimDuration::from_millis(500));
            gossip_fingerprint(&sim)
        };
        let sequential = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), sequential, "threads={threads} diverged");
        }
    }

    #[test]
    fn parallel_ring_token_matches_sequential() {
        let run = |threads: usize| {
            let mut sim = ring_sim(10, 5, 7);
            sim.set_threads(threads);
            sim.start();
            sim.run_for(SimDuration::from_secs(10));
            let seen: Vec<u32> = sim.nodes().map(|n| n.seen).collect();
            (sim.now(), sim.events_processed(), sim.stats().total_messages(), seen)
        };
        assert_eq!(run(8), run(1));
        assert_eq!(run(2), run(1));
    }

    #[test]
    fn parallel_random_drops_stay_parallel_and_match_sequential() {
        // Drop coins are counter-mode hashes of (seed, link, attempt), so
        // a drop phase no longer forces the sequential fallback: the epoch
        // stays sharded straight through it, with the exact same schedule
        // as a purely sequential run.
        let run = |threads: usize| {
            let mut sim = gossip_sim(20, 99);
            sim.set_threads(threads);
            sim.start();
            sim.run_for(SimDuration::from_millis(100));
            sim.set_drop_prob(0.25);
            sim.run_for(SimDuration::from_millis(100));
            sim.set_drop_prob(0.0);
            sim.run_for(SimDuration::from_millis(300));
            (gossip_fingerprint(&sim), sim.par_coverage())
        };
        let (seq_fp, seq_cov) = run(1);
        let (par_fp, par_cov) = run(8);
        assert_eq!(par_fp, seq_fp);
        // Sequential runs never enter the parallel machinery at all.
        assert_eq!(seq_cov, ParCoverage::default());
        // The threaded run stayed parallel through the drop phase: windows
        // were scheduled (parallel or inline) and nothing fell back.
        assert!(par_cov.windows_parallel + par_cov.windows_inline > 0);
        assert_eq!(par_cov.fallback_entries, 0);
        assert_eq!(par_cov.fallback_events, 0);
        assert!(par_cov.epoch_nanos > 0);
        assert!(par_cov.serial_nanos <= par_cov.epoch_nanos);
    }

    #[test]
    fn parallel_coverage_counts_fallback_on_zero_lookahead() {
        // A topology whose minimum cross-domain latency is zero leaves no
        // lookahead window, so every epoch must take the sequential
        // fallback — and say so in the coverage counters.
        let mut b = crate::topology::Topology::builder(4);
        for i in 0..4usize {
            for j in (i + 1)..4 {
                b.edge(NodeId(i), NodeId(j), SimDuration::ZERO);
            }
        }
        let nodes = (0..4)
            .map(|id| Gossip { id, n: 4, rounds_left: 4, heard: 0, rng_sum: 0 })
            .collect();
        let mut sim: Simulator<Gossip> = Simulator::new(b.build(), nodes, 5);
        sim.set_threads(2);
        sim.start();
        sim.run_for(SimDuration::from_millis(50));
        let cov = sim.par_coverage();
        assert!(cov.fallback_entries > 0);
        assert!(cov.fallback_events > 0);
        assert_eq!(cov.windows_parallel + cov.windows_inline, 0);
        assert!(cov.serial_fraction() <= 1.0);
    }

    #[test]
    fn chaos_controls_between_windows_match_sequential() {
        // Crashes, partitions, latency changes, injections, and direct
        // node access interleaved with parallel epochs must all replay the
        // sequential schedule exactly.
        let run = |threads: usize| {
            let mut sim = gossip_sim(20, 123);
            sim.set_threads(threads);
            sim.start();
            sim.run_for(SimDuration::from_millis(60));
            sim.crash_node(NodeId(3));
            sim.set_latency_factor(1.5);
            sim.run_for(SimDuration::from_millis(60));
            sim.inject(NodeId(0), NodeId(11), Rumor(4));
            sim.with_node_ctx(NodeId(5), |g, ctx| {
                g.heard += 100;
                ctx.send(NodeId(6), Rumor(1));
            });
            sim.recover_node(NodeId(3));
            sim.set_partitions(Some(
                (0..20).map(|i| u32::from(i >= 10)).collect::<Vec<_>>(),
            ));
            sim.run_for(SimDuration::from_millis(120));
            sim.set_partitions(None);
            sim.set_latency_factor(1.0);
            // A single sequential step mid-flight forces an unshard and a
            // later re-shard.
            sim.step();
            sim.run_for(SimDuration::from_millis(260));
            gossip_fingerprint(&sim)
        };
        let sequential = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), sequential, "threads={threads} diverged");
        }
    }

    #[test]
    fn contiguous_domains_partitions_evenly() {
        let of_node = contiguous_domains(10, 3);
        assert_eq!(of_node, [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        assert_eq!(contiguous_domains(3, 8), [0, 1, 2]);
        assert_eq!(contiguous_domains(4, 1), [0, 0, 0, 0]);
        assert!(contiguous_domains(0, 4).is_empty());
    }

    #[test]
    fn set_threads_caps_and_reports() {
        let mut sim = gossip_sim(4, 1);
        sim.set_threads(16);
        assert_eq!(sim.threads(), 4);
        assert_eq!(sim.domain_of(NodeId(0)), 0);
        assert_eq!(sim.domain_of(NodeId(3)), 3);
        sim.set_threads(1);
        assert_eq!(sim.threads(), 1);
    }
}
