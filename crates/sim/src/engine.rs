//! The discrete-event simulation engine.
//!
//! Protocols are written sans-io: a [`Protocol`] is a state machine that
//! reacts to message deliveries and timer expirations by emitting new sends
//! and timers through a [`Context`]. The engine owns the event queue, the
//! clock, the [`crate::topology::Topology`], failure injection,
//! and byte accounting. Everything is deterministic for a given seed:
//! events at equal times fire in insertion order, and all randomness flows
//! from per-node ChaCha streams derived from the master seed.
//!
//! # Hot-path structure
//!
//! Four things keep the event loop cheap without changing its observable
//! order (a single global `(at, seq)` sequence, `seq` assigned at emission):
//!
//! * **Arc multicast** — [`Context::broadcast`] queues one allocation for n
//!   recipients; each delivery borrows the shared payload through
//!   [`Protocol::on_message_ref`] (the last one gets it by value for free),
//!   and its byte accounting is folded into one
//!   [`NetStats::record_multicast`] batch instead of n counter updates.
//! * **Timer wheel** — timers live in a hierarchical wheel
//!   ([`crate::wheel`]) instead of the delivery heap; [`Simulator::step`]
//!   pops the global `(at, seq)` minimum across both structures, which is
//!   exactly the order the single-heap engine produced.
//! * **Key-slab delivery queue** — the heap sifts compact 24-byte
//!   `(at, seq, slab)` keys while the fat delivery bodies (sender,
//!   destination, payload) sit still in a slab with a free list, so every
//!   sift-up/sift-down moves three words instead of a whole `Event`.
//! * **Pooled action buffers** — every callback writes into one reusable
//!   scratch `Vec<Action>` owned by the simulator rather than a fresh
//!   allocation per dispatch.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::stats::{DropCause, NetStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use crate::wheel::{TimerEntry, TimerWheel};

/// A protocol message that can travel over the simulated network.
pub trait Message: Clone {
    /// Bytes this message occupies on the wire (used for Figure-6-style
    /// accounting). Include headers/signatures as the real system would.
    fn wire_size(&self) -> usize;

    /// Accounting class (e.g. `"prepare"`, `"gossip"`). Defaults to `"msg"`.
    fn class(&self) -> &'static str {
        "msg"
    }
}

/// A node-local protocol state machine.
pub trait Protocol {
    /// Message type exchanged between nodes.
    type Msg: Message;

    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Called when a message addressed to this node arrives.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Borrowing variant of [`Protocol::on_message`], used when the payload
    /// is shared with other still-pending deliveries of the same
    /// [`Context::broadcast`]. The default clones and delegates; protocols
    /// that never need ownership may override it to skip the clone. An
    /// override must be observably equivalent to `on_message` — the engine
    /// is free to call either.
    fn on_message_ref(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: &Self::Msg) {
        self.on_message(ctx, from, msg.clone());
    }

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Msg>, _tag: u64) {}
}

/// What a protocol may do in reaction to an event.
#[derive(Debug)]
enum Action<M> {
    Send { to: NodeId, msg: M },
    Multicast { to: Vec<NodeId>, msg: Arc<M> },
    Timer { delay: SimDuration, tag: u64 },
    Count { name: &'static str, n: u64 },
}

/// Handle given to protocol callbacks for interacting with the simulated
/// world.
#[derive(Debug)]
pub struct Context<'a, M> {
    now: SimTime,
    node: NodeId,
    actions: &'a mut Vec<Action<M>>,
    rng: &'a mut ChaCha8Rng,
}

impl<M> Context<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this callback runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends `msg` to `to`; it arrives after the topology's shortest-path
    /// latency (or never, if `to` is unreachable, partitioned away, down at
    /// delivery time, or the message is randomly dropped).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Sends one message to every recipient in `to`, in order — observably
    /// identical to calling [`Context::send`] in a loop (same per-link
    /// accounting, drops, and delivery order), but the payload is allocated
    /// once and shared by reference until delivery.
    pub fn broadcast(&mut self, to: impl IntoIterator<Item = NodeId>, msg: M) {
        let to: Vec<NodeId> = to.into_iter().collect();
        match to.len() {
            0 => {}
            1 => self.actions.push(Action::Send { to: to[0], msg }),
            _ => self.actions.push(Action::Multicast { to, msg: Arc::new(msg) }),
        }
    }

    /// Schedules [`Protocol::on_timer`] with `tag` after `delay`.
    ///
    /// Timers cannot be cancelled; protocols should treat stale timers as
    /// no-ops based on their own state.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.actions.push(Action::Timer { delay, tag });
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut impl Rng {
        self.rng
    }

    /// Bumps the named protocol-event counter in [`NetStats`] by one.
    ///
    /// Events are for costs that are invisible in pure message counts —
    /// e.g. how many `Commit` re-pushes were retries vs the retry budget
    /// being exhausted. They appear in [`NetStats::event`] and the chaos
    /// fingerprint, so determinism checks cover them too.
    pub fn count(&mut self, name: &'static str) {
        self.actions.push(Action::Count { name, n: 1 });
    }

    /// Runs an *embedded* protocol that speaks message type `N`, wrapping
    /// every send with `wrap` so it travels as this protocol's `M`. Timers
    /// pass through unchanged — composite protocols must partition the tag
    /// space between layers.
    ///
    /// This is how a composite node (e.g. an OceanStore server) hosts a
    /// self-contained state machine (e.g. a PBFT replica) without the inner
    /// machine knowing about the envelope type.
    pub fn with_inner<N: Clone, R>(
        &mut self,
        wrap: impl Fn(N) -> M,
        f: impl FnOnce(&mut Context<'_, N>) -> R,
    ) -> R {
        self.with_inner_mapped(wrap, |t| t, f)
    }

    /// Like [`Context::with_inner`], additionally rewriting timer tags the
    /// embedded protocol sets through `tag_map`. A composite node hosting
    /// several timer-using subsystems namespaces their tags this way (and
    /// inverts the map in its own `on_timer`).
    pub fn with_inner_mapped<N: Clone, R>(
        &mut self,
        wrap: impl Fn(N) -> M,
        tag_map: impl Fn(u64) -> u64,
        f: impl FnOnce(&mut Context<'_, N>) -> R,
    ) -> R {
        let mut inner_actions: Vec<Action<N>> = Vec::new();
        let r = {
            let mut inner = Context {
                now: self.now,
                node: self.node,
                actions: &mut inner_actions,
                rng: self.rng,
            };
            f(&mut inner)
        };
        for action in inner_actions {
            match action {
                Action::Send { to, msg } => self.actions.push(Action::Send { to, msg: wrap(msg) }),
                Action::Multicast { to, msg } => {
                    let inner_msg = Arc::try_unwrap(msg).unwrap_or_else(|a| (*a).clone());
                    self.actions.push(Action::Multicast { to, msg: Arc::new(wrap(inner_msg)) });
                }
                Action::Timer { delay, tag } => {
                    self.actions.push(Action::Timer { delay, tag: tag_map(tag) })
                }
                Action::Count { name, n } => self.actions.push(Action::Count { name, n }),
            }
        }
        r
    }
}

/// A delivery payload: owned for unicast, `Arc`-shared for multicast so one
/// allocation serves every recipient.
#[derive(Debug)]
enum Payload<M> {
    One(M),
    Shared(Arc<M>),
}

impl<M> Payload<M> {
    fn as_msg(&self) -> &M {
        match self {
            Payload::One(m) => m,
            Payload::Shared(a) => a,
        }
    }
}

/// Heap key of one pending delivery: `(at µs, seq, slab index)`. Wrapped in
/// [`Reverse`] so the `BinaryHeap` max-heap pops the earliest `(at, seq)`
/// first, ties broken by insertion order for determinism. Seqs are unique,
/// so the slab index never participates in an ordering decision.
type DeliveryKey = Reverse<(u64, u64, u32)>;

/// The fat part of a pending delivery, parked in the delivery slab while
/// its compact [`DeliveryKey`] sifts through the heap.
#[derive(Debug)]
struct DeliveryBody<M> {
    from: NodeId,
    to: NodeId,
    msg: Payload<M>,
}

/// The discrete-event simulator driving one [`Protocol`] instance per node.
pub struct Simulator<P: Protocol> {
    nodes: Vec<P>,
    node_rngs: Vec<ChaCha8Rng>,
    topo: Topology,
    clock: SimTime,
    /// Message delivery *keys* only; timers live in `timers`. Both share
    /// the global `seq` counter, so the merged `(at, seq)` order is
    /// identical to the historical single-heap order.
    queue: BinaryHeap<DeliveryKey>,
    /// Delivery bodies indexed by the key's slab slot; `None` marks a free
    /// slot awaiting reuse through `delivery_free`.
    delivery_slab: Vec<Option<DeliveryBody<P::Msg>>>,
    /// Free slots in `delivery_slab`, reused LIFO for cache locality.
    delivery_free: Vec<u32>,
    timers: TimerWheel,
    seq: u64,
    stats: NetStats,
    down: Vec<bool>,
    /// Partition group per node; messages cross groups only if `None`.
    partitions: Option<Vec<u32>>,
    drop_prob: f64,
    /// Per-link drop probabilities (flapping links), keyed by the
    /// direction-normalized endpoint pair.
    link_drops: HashMap<(usize, usize), f64>,
    /// Multiplier applied to every link latency (link degradation).
    latency_factor: f64,
    engine_rng: ChaCha8Rng,
    events_processed: u64,
    /// Reusable per-callback action buffer (dispatch is not reentrant).
    scratch: Vec<Action<P::Msg>>,
}

impl<P: Protocol> std::fmt::Debug for Simulator<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.nodes.len())
            .field("clock", &self.clock)
            .field("pending_events", &(self.queue.len() + self.timers.len()))
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator over `topology` with one protocol instance per
    /// node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != topology.len()`.
    pub fn new(topology: Topology, nodes: Vec<P>, seed: u64) -> Self {
        assert_eq!(nodes.len(), topology.len(), "one protocol instance per topology node");
        let n = nodes.len();
        let node_rngs = (0..n)
            .map(|i| ChaCha8Rng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))))
            .collect();
        Simulator {
            nodes,
            node_rngs,
            topo: topology,
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            delivery_slab: Vec::new(),
            delivery_free: Vec::new(),
            timers: TimerWheel::new(),
            seq: 0,
            stats: NetStats::new(n),
            down: vec![false; n],
            partitions: None,
            drop_prob: 0.0,
            link_drops: HashMap::new(),
            latency_factor: 1.0,
            engine_rng: ChaCha8Rng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03),
            events_processed: 0,
            scratch: Vec::new(),
        }
    }

    /// Calls [`Protocol::on_start`] on every live node.
    pub fn start(&mut self) {
        for i in 0..self.nodes.len() {
            if !self.down[i] {
                self.dispatch_start(NodeId(i));
            }
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Network accounting so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets the byte counters (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The topology the simulation runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Shared access to the protocol instance at `node`.
    pub fn node(&self, node: NodeId) -> &P {
        &self.nodes[node.0]
    }

    /// Exclusive access to the protocol instance at `node` (for test
    /// inspection and external stimulus outside the event loop).
    pub fn node_mut(&mut self, node: NodeId) -> &mut P {
        &mut self.nodes[node.0]
    }

    /// Iterates over all protocol instances.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// Marks a node crashed (true) or recovered (false). A crashed node
    /// receives no messages or timers; pending events addressed to it are
    /// dropped at delivery time.
    ///
    /// Note that flipping a node back up this way does **not** re-run
    /// [`Protocol::on_start`], so periodic timers stay dead — use
    /// [`Simulator::recover_node`] for a crash-recovery that restarts the
    /// protocol's timer wheels.
    pub fn set_down(&mut self, node: NodeId, down: bool) {
        self.down[node.0] = down;
    }

    /// Whether `node` is currently crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.0]
    }

    /// Crashes `node`: from now until recovery it receives no messages and
    /// none of its timers fire (they are silently discarded when they come
    /// due). Protocol state is preserved in place. No-op if already down.
    pub fn crash_node(&mut self, node: NodeId) {
        self.down[node.0] = true;
    }

    /// Recovers a crashed node with its protocol state intact (a process
    /// restart on a machine whose disk survived). [`Protocol::on_start`]
    /// runs again so periodic timers — all lost while down — are re-armed.
    /// No-op if the node is not down.
    pub fn recover_node(&mut self, node: NodeId) {
        if !self.down[node.0] {
            return;
        }
        self.down[node.0] = false;
        self.dispatch_start(node);
    }

    /// Recovers a crashed node with its state wiped: `fresh` replaces the
    /// old protocol instance (a machine rebuilt from nothing) and
    /// [`Protocol::on_start`] runs on it. Works whether or not the node is
    /// currently down.
    pub fn recover_node_wiped(&mut self, node: NodeId, fresh: P) {
        self.nodes[node.0] = fresh;
        self.down[node.0] = false;
        self.dispatch_start(node);
    }

    /// Sets the independent per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_drop_prob(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_prob = p;
    }

    /// The current independent per-message drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Sets the drop probability of the single (bidirectional) link between
    /// `a` and `b`, independent of the global [`Simulator::set_drop_prob`]
    /// coin. `p = 0.0` restores the link. Models a flapping or lossy link
    /// without disturbing the rest of the mesh.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_link_drop(&mut self, a: NodeId, b: NodeId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let key = (a.0.min(b.0), a.0.max(b.0));
        if p == 0.0 {
            self.link_drops.remove(&key);
        } else {
            self.link_drops.insert(key, p);
        }
    }

    /// The drop probability of the link between `a` and `b` (0.0 unless
    /// overridden via [`Simulator::set_link_drop`]).
    pub fn link_drop(&self, a: NodeId, b: NodeId) -> f64 {
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.link_drops.get(&key).copied().unwrap_or(0.0)
    }

    /// Degrades (factor > 1) or restores (factor = 1) every link: message
    /// latencies are multiplied by `factor` at send time.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn set_latency_factor(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "latency factor must be positive");
        self.latency_factor = factor;
    }

    /// The current link-latency multiplier.
    pub fn latency_factor(&self) -> f64 {
        self.latency_factor
    }

    /// Installs a network partition: messages are delivered only within a
    /// group. `None` heals all partitions.
    ///
    /// # Panics
    ///
    /// Panics if the group vector length differs from the node count.
    pub fn set_partitions(&mut self, groups: Option<Vec<u32>>) {
        if let Some(g) = &groups {
            assert_eq!(g.len(), self.nodes.len(), "one group per node");
        }
        self.partitions = groups;
    }

    /// Injects a message from the outside world (e.g. a test driver acting
    /// as a client) for delivery to `to` at the current time, attributed to
    /// `from`.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        let at = self.clock;
        self.push_delivery(at, from, to, Payload::One(msg));
    }

    /// Lets external code act *as* `node`: the closure receives the
    /// protocol and a live [`Context`], so stimulus goes through the same
    /// send/timer path as real events.
    pub fn with_node_ctx<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>) -> R,
    ) -> R {
        self.with_ctx(node, f)
    }

    /// Runs a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.step_bounded(u64::MAX)
    }

    /// Runs the next event unless its timestamp (µs) exceeds `bound`.
    /// Returns `false` when nothing ran. One peek pair decides both "is
    /// there an event" and "is it in range", so `run_until` doesn't pay a
    /// second round of queue peeks per event.
    fn step_bounded(&mut self, bound: u64) -> bool {
        // Global minimum across deliveries and timers by (at, seq); seqs
        // are unique, so the two sources never tie.
        let msg_key = self.queue.peek().map(|&Reverse((at, seq, _))| (at, seq));
        let timer_key = self.timers.peek();
        let take_timer = match (msg_key, timer_key) {
            (None, None) => return false,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(m), Some(t)) => t < m,
        };
        let (next_at, _) = if take_timer {
            timer_key.expect("chosen side is non-empty")
        } else {
            msg_key.expect("chosen side is non-empty")
        };
        if next_at > bound {
            return false;
        }
        if take_timer {
            let entry = self.timers.pop_earliest().expect("peeked");
            let at = SimTime::ZERO + SimDuration::from_micros(entry.at);
            debug_assert!(at >= self.clock, "time must be monotonic");
            self.clock = at;
            self.events_processed += 1;
            if !self.down[entry.node] {
                self.dispatch_timer(NodeId(entry.node), entry.tag);
            }
        } else {
            let Reverse((at_us, _seq, slot)) = self.queue.pop().expect("peeked");
            let body = self.delivery_slab[slot as usize]
                .take()
                .expect("queued key points at a parked body");
            self.delivery_free.push(slot);
            let at = SimTime::ZERO + SimDuration::from_micros(at_us);
            debug_assert!(at >= self.clock, "time must be monotonic");
            self.clock = at;
            // Timers armed by this delivery's handler must be placeable
            // relative to the new clock.
            self.timers.advance(at_us);
            self.events_processed += 1;
            if self.down[body.to.0] {
                self.stats.record_drop(DropCause::NodeDown);
            } else {
                self.dispatch_payload(body.to, body.from, body.msg);
            }
        }
        true
    }

    /// Runs until the event queue drains. Returns the number of events
    /// processed by this call.
    ///
    /// # Panics
    ///
    /// Panics after `max_events` events as a runaway-protocol guard.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let start = self.events_processed;
        while self.step() {
            assert!(
                self.events_processed - start <= max_events,
                "simulation exceeded {max_events} events without quiescing"
            );
        }
        self.events_processed - start
    }

    /// Runs events with timestamps `<= until`, leaving later events queued.
    /// The clock is advanced to `until` even if the queue drains early.
    pub fn run_until(&mut self, until: SimTime) {
        let bound = until.as_micros();
        while self.step_bounded(bound) {}
        if self.clock < until {
            self.clock = until;
            self.timers.advance(bound);
        }
    }

    /// Runs for a span of simulated time from the current clock.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.clock + d;
        self.run_until(until);
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently queued (deliveries and timers).
    pub fn pending_events(&self) -> usize {
        self.queue.len() + self.timers.len()
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn push_delivery(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: Payload<P::Msg>) {
        let seq = self.next_seq();
        let body = DeliveryBody { from, to, msg };
        let slot = match self.delivery_free.pop() {
            Some(slot) => {
                debug_assert!(self.delivery_slab[slot as usize].is_none());
                self.delivery_slab[slot as usize] = Some(body);
                slot
            }
            None => {
                let slot = u32::try_from(self.delivery_slab.len())
                    .expect("more than u32::MAX simultaneous in-flight deliveries");
                self.delivery_slab.push(Some(body));
                slot
            }
        };
        self.queue.push(Reverse((at.as_micros(), seq, slot)));
    }

    /// Runs `f` against `node`'s protocol with a live context backed by the
    /// pooled scratch buffer, then applies the emitted actions.
    fn with_ctx<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>) -> R,
    ) -> R {
        let mut actions = std::mem::take(&mut self.scratch);
        debug_assert!(actions.is_empty());
        let r = {
            let mut ctx = Context {
                now: self.clock,
                node,
                actions: &mut actions,
                rng: &mut self.node_rngs[node.0],
            };
            f(&mut self.nodes[node.0], &mut ctx)
        };
        self.apply_actions(node, &mut actions);
        self.scratch = actions;
        r
    }

    fn dispatch_start(&mut self, node: NodeId) {
        self.with_ctx(node, |p, ctx| p.on_start(ctx));
    }

    fn dispatch_payload(&mut self, node: NodeId, from: NodeId, payload: Payload<P::Msg>) {
        match payload {
            Payload::One(msg) => self.with_ctx(node, |p, ctx| p.on_message(ctx, from, msg)),
            // The last recipient of a multicast owns the payload outright;
            // earlier ones borrow it.
            Payload::Shared(arc) => match Arc::try_unwrap(arc) {
                Ok(msg) => self.with_ctx(node, |p, ctx| p.on_message(ctx, from, msg)),
                Err(arc) => self.with_ctx(node, |p, ctx| p.on_message_ref(ctx, from, &arc)),
            },
        }
    }

    fn dispatch_timer(&mut self, node: NodeId, tag: u64) {
        self.with_ctx(node, |p, ctx| p.on_timer(ctx, tag));
    }

    fn apply_actions(&mut self, node: NodeId, actions: &mut Vec<Action<P::Msg>>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.route(node, to, Payload::One(msg)),
                Action::Multicast { to, msg } => {
                    // One aggregated accounting entry for the whole fan-out;
                    // the per-recipient loop then only decides delivery. The
                    // counter totals are identical to per-recipient
                    // record_send calls, so stats fingerprints don't move.
                    let (wire_size, class) = (msg.wire_size(), msg.class());
                    self.stats.record_multicast(node, &to, wire_size, class);
                    for t in to {
                        self.route_unaccounted(node, t, Payload::Shared(Arc::clone(&msg)));
                    }
                }
                Action::Timer { delay, tag } => {
                    let at = self.clock + delay;
                    let seq = self.next_seq();
                    self.timers.insert(TimerEntry {
                        at: at.as_micros(),
                        seq,
                        node: node.0,
                        tag,
                    });
                }
                Action::Count { name, n } => self.stats.record_event(name, n),
            }
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: Payload<P::Msg>) {
        // Accounting happens at send time: bytes hit the wire even when the
        // destination later proves dead.
        let (wire_size, class) = {
            let m = msg.as_msg();
            (m.wire_size(), m.class())
        };
        self.stats.record_send(from, to, wire_size, class);
        self.route_unaccounted(from, to, msg);
    }

    /// Delivery decision only — byte accounting already happened (either
    /// [`NetStats::record_send`] in [`Simulator::route`] or one batched
    /// [`NetStats::record_multicast`] for a whole fan-out). The order and
    /// count of engine-RNG draws here is part of the determinism contract.
    fn route_unaccounted(&mut self, from: NodeId, to: NodeId, msg: Payload<P::Msg>) {
        if let Some(groups) = &self.partitions {
            if groups[from.0] != groups[to.0] {
                self.stats.record_drop(DropCause::Partition);
                return;
            }
        }
        if self.drop_prob > 0.0 && self.engine_rng.gen::<f64>() < self.drop_prob {
            self.stats.record_drop(DropCause::Random);
            return;
        }
        // Per-link flap coin. Consumes engine randomness only when the link
        // actually has an override, so installing none leaves event streams
        // of unrelated runs byte-identical. The emptiness guard spares the
        // common no-overrides case the per-message hash of the link key.
        if !self.link_drops.is_empty() {
            if let Some(&p) = self.link_drops.get(&(from.0.min(to.0), from.0.max(to.0))) {
                if self.engine_rng.gen::<f64>() < p {
                    self.stats.record_drop(DropCause::LinkFlap);
                    return;
                }
            }
        }
        let Some(latency) = self.topo.dist(from, to) else {
            self.stats.record_drop(DropCause::Unreachable);
            return;
        };
        let latency =
            if self.latency_factor == 1.0 { latency } else { latency.mul_f64(self.latency_factor) };
        let at = self.clock + latency;
        self.push_delivery(at, from, to, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Toy protocol: floods a counter token around the ring `rounds` times.
    #[derive(Debug)]
    struct RingToken {
        id: usize,
        n: usize,
        rounds_left: u32,
        seen: u32,
    }

    #[derive(Debug, Clone)]
    struct Token(u32);

    impl Message for Token {
        fn wire_size(&self) -> usize {
            16
        }
        fn class(&self) -> &'static str {
            "token"
        }
    }

    impl Protocol for RingToken {
        type Msg = Token;

        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            if self.id == 0 {
                ctx.send(NodeId(1 % self.n), Token(self.rounds_left));
            }
        }

        fn on_message(&mut self, ctx: &mut Context<'_, Token>, _from: NodeId, msg: Token) {
            self.seen += 1;
            let next = NodeId((self.id + 1) % self.n);
            if self.id == 0 {
                if msg.0 > 1 {
                    ctx.send(next, Token(msg.0 - 1));
                }
            } else {
                ctx.send(next, msg);
            }
        }
    }

    fn ring_sim(n: usize, rounds: u32, seed: u64) -> Simulator<RingToken> {
        let topo = crate::topology::Topology::ring(n, SimDuration::from_millis(10));
        let nodes = (0..n)
            .map(|id| RingToken { id, n, rounds_left: rounds, seen: 0 })
            .collect();
        Simulator::new(topo, nodes, seed)
    }

    #[test]
    fn token_circulates_and_time_advances() {
        let mut sim = ring_sim(5, 3, 1);
        sim.start();
        sim.run_to_quiescence(10_000);
        // 3 full rounds of 5 hops = 15 deliveries, 10 ms each.
        assert_eq!(sim.now().as_millis(), 150);
        for i in 0..5 {
            assert_eq!(sim.node(NodeId(i)).seen, 3, "node {i}");
        }
        assert_eq!(sim.stats().class("token").messages, 15);
        assert_eq!(sim.stats().total_bytes(), 15 * 16);
    }

    #[test]
    fn determinism_across_runs() {
        let run = |seed| {
            let mut sim = ring_sim(7, 4, seed);
            sim.start();
            sim.run_to_quiescence(10_000);
            (sim.now(), sim.stats().total_messages(), sim.events_processed())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn down_node_breaks_the_ring() {
        let mut sim = ring_sim(5, 3, 1);
        sim.set_down(NodeId(3), true);
        sim.start();
        sim.run_to_quiescence(10_000);
        // Token dies at node 3: nodes 1..=2 saw it once, 4 never.
        assert_eq!(sim.node(NodeId(1)).seen, 1);
        assert_eq!(sim.node(NodeId(2)).seen, 1);
        assert_eq!(sim.node(NodeId(4)).seen, 0);
        assert_eq!(sim.stats().dropped_messages(), 1);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::NodeDown), 1);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::Random), 0);
    }

    #[test]
    fn drops_are_attributed_to_their_cause() {
        let mut sim = ring_sim(4, 1, 1);
        sim.set_partitions(Some(vec![0, 1, 1, 1]));
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::Partition), 1);

        let mut sim = ring_sim(4, 1, 1);
        sim.set_drop_prob(1.0);
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::Random), 1);
    }

    #[test]
    fn crash_preserves_state_and_recover_restarts() {
        let mut sim = ring_sim(5, 3, 1);
        sim.start();
        // Let the token pass node 2 once, then crash it.
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(25));
        assert_eq!(sim.node(NodeId(2)).seen, 1);
        sim.crash_node(NodeId(2));
        assert!(sim.is_down(NodeId(2)));
        sim.run_for(SimDuration::from_millis(50));
        // The ring is severed at node 2; its state survived the crash.
        assert_eq!(sim.node(NodeId(2)).seen, 1);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::NodeDown), 1);
        sim.recover_node(NodeId(2));
        assert!(!sim.is_down(NodeId(2)));
        assert_eq!(sim.node(NodeId(2)).seen, 1, "state preserved across recovery");
    }

    #[test]
    fn recover_node_reruns_on_start() {
        // RingToken's node 0 emits the token from on_start, so recovering
        // node 0 restarts the whole circulation.
        let mut sim = ring_sim(3, 1, 1);
        sim.start();
        sim.run_to_quiescence(10_000);
        let seen_before = sim.node(NodeId(1)).seen;
        sim.crash_node(NodeId(0));
        sim.recover_node(NodeId(0));
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.node(NodeId(1)).seen, seen_before + 1);
    }

    #[test]
    fn recover_node_wiped_replaces_state() {
        let mut sim = ring_sim(5, 3, 1);
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.node(NodeId(2)).seen, 3);
        sim.crash_node(NodeId(2));
        sim.recover_node_wiped(NodeId(2), RingToken { id: 2, n: 5, rounds_left: 0, seen: 0 });
        assert_eq!(sim.node(NodeId(2)).seen, 0, "wiped recovery loses state");
        assert!(!sim.is_down(NodeId(2)));
    }

    #[test]
    fn latency_factor_stretches_links() {
        let mut sim = ring_sim(5, 1, 1);
        sim.set_latency_factor(3.0);
        sim.start();
        sim.run_to_quiescence(10_000);
        // One round of 5 hops at 10 ms × 3.
        assert_eq!(sim.now().as_millis(), 150);
        sim.set_latency_factor(1.0);
        assert!((sim.latency_factor() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn partitions_block_delivery() {
        let mut sim = ring_sim(4, 1, 1);
        // Node 0,1 in group 0; nodes 2,3 in group 1.
        sim.set_partitions(Some(vec![0, 0, 1, 1]));
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.node(NodeId(1)).seen, 1);
        assert_eq!(sim.node(NodeId(2)).seen, 0);
    }

    #[test]
    fn link_drop_kills_one_link_only() {
        // Flap the 1→2 link closed; the token dies there and the drop is
        // attributed to LinkFlap, not Random.
        let mut sim = ring_sim(4, 1, 1);
        sim.set_link_drop(NodeId(1), NodeId(2), 1.0);
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.node(NodeId(1)).seen, 1);
        assert_eq!(sim.node(NodeId(2)).seen, 0);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::LinkFlap), 1);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::Random), 0);
        // Restoring the link clears the override in both directions.
        sim.set_link_drop(NodeId(2), NodeId(1), 0.0);
        assert_eq!(sim.link_drop(NodeId(1), NodeId(2)), 0.0);
    }

    #[test]
    fn full_drop_probability_kills_everything() {
        let mut sim = ring_sim(4, 2, 9);
        sim.set_drop_prob(1.0);
        sim.start();
        sim.run_to_quiescence(10_000);
        for i in 1..4 {
            assert_eq!(sim.node(NodeId(i)).seen, 0);
        }
    }

    #[test]
    fn run_until_respects_bound() {
        let mut sim = ring_sim(5, 3, 1);
        sim.start();
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(35));
        // 10ms per hop: 3 deliveries fit in 35 ms.
        let total: u32 = (0..5).map(|i| sim.node(NodeId(i)).seen).sum();
        assert_eq!(total, 3);
        assert_eq!(sim.now().as_millis(), 35);
        assert!(sim.pending_events() > 0);
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Debug, Default)]
        struct T {
            fired: Vec<u64>,
        }
        #[derive(Debug, Clone)]
        struct Never;
        impl Message for Never {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl Protocol for T {
            type Msg = Never;
            fn on_start(&mut self, ctx: &mut Context<'_, Never>) {
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_message(&mut self, _: &mut Context<'_, Never>, _: NodeId, _: Never) {}
            fn on_timer(&mut self, _: &mut Context<'_, Never>, tag: u64) {
                self.fired.push(tag);
            }
        }
        let topo = crate::topology::Topology::builder(1).build();
        let mut sim = Simulator::new(topo, vec![T::default()], 0);
        sim.start();
        sim.run_to_quiescence(100);
        assert_eq!(sim.node(NodeId(0)).fired, vec![1, 2, 3]);
        assert_eq!(sim.now().as_millis(), 30);
    }

    #[test]
    fn far_future_timers_survive_the_wheel_horizon() {
        // A timer past the wheel's in-range horizon (~16.7 s) lands in the
        // overflow heap and still fires in order with near-term timers.
        #[derive(Debug, Default)]
        struct T {
            fired: Vec<(u64, u64)>,
        }
        #[derive(Debug, Clone)]
        struct Never;
        impl Message for Never {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl Protocol for T {
            type Msg = Never;
            fn on_start(&mut self, ctx: &mut Context<'_, Never>) {
                ctx.set_timer(SimDuration::from_secs(60), 60);
                ctx.set_timer(SimDuration::from_millis(1), 1);
                ctx.set_timer(SimDuration::from_secs(20), 20);
            }
            fn on_message(&mut self, _: &mut Context<'_, Never>, _: NodeId, _: Never) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Never>, tag: u64) {
                self.fired.push((ctx.now().as_micros(), tag));
            }
        }
        let topo = crate::topology::Topology::builder(1).build();
        let mut sim = Simulator::new(topo, vec![T::default()], 0);
        sim.start();
        sim.run_to_quiescence(100);
        assert_eq!(
            sim.node(NodeId(0)).fired,
            vec![(1_000, 1), (20_000_000, 20), (60_000_000, 60)]
        );
    }

    #[test]
    fn with_node_ctx_sends_through_network() {
        let mut sim = ring_sim(3, 1, 5);
        // Drive node 2 externally instead of via on_start.
        sim.with_node_ctx(NodeId(2), |_, ctx| ctx.send(NodeId(0), Token(1)));
        sim.run_to_quiescence(100);
        assert_eq!(sim.node(NodeId(0)).seen, 1);
    }

    #[test]
    fn broadcast_matches_send_loop_exactly() {
        // Two identical sims, one protocol using a send loop, the other
        // ctx.broadcast: stats, drop attribution, engine RNG consumption,
        // and delivery order must be indistinguishable.
        #[derive(Debug)]
        struct Fan {
            id: usize,
            use_broadcast: bool,
            got: Vec<(u64, usize, u32)>,
        }
        #[derive(Debug, Clone)]
        struct Blob(u32, Vec<u8>);
        impl Message for Blob {
            fn wire_size(&self) -> usize {
                32 + self.1.len()
            }
        }
        impl Protocol for Fan {
            type Msg = Blob;
            fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
                if self.id == 0 {
                    let msg = Blob(7, vec![0xAB; 256]);
                    if self.use_broadcast {
                        ctx.broadcast((1..5).map(NodeId), msg);
                    } else {
                        for i in 1..5 {
                            ctx.send(NodeId(i), msg.clone());
                        }
                    }
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Blob>, from: NodeId, msg: Blob) {
                self.got.push((ctx.now().as_micros(), from.0, msg.0));
                if self.id == 2 {
                    // Reply so the broadcast run also exercises unicast after
                    // shared deliveries.
                    ctx.send(NodeId(0), Blob(msg.0 + 1, Vec::new()));
                }
            }
        }
        let run = |use_broadcast: bool| {
            let topo = crate::topology::Topology::full_mesh(5, SimDuration::from_millis(10));
            let nodes =
                (0..5).map(|id| Fan { id, use_broadcast, got: Vec::new() }).collect();
            let mut sim = Simulator::new(topo, nodes, 77);
            sim.set_drop_prob(0.3);
            sim.start();
            sim.run_to_quiescence(1_000);
            let got: Vec<_> = (0..5).map(|i| sim.node(NodeId(i)).got.clone()).collect();
            (
                got,
                sim.stats().total_messages(),
                sim.stats().total_bytes(),
                sim.stats().dropped_by_cause(DropCause::Random),
                sim.events_processed(),
                sim.now(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn shared_payload_dispatches_via_on_message_ref() {
        // A protocol overriding on_message_ref sees borrowed deliveries for
        // all but the last recipient of a broadcast (which owns the Arc).
        #[derive(Debug, Default)]
        struct RefCounter {
            owned: u32,
            borrowed: u32,
        }
        #[derive(Debug, Clone)]
        struct Big(#[allow(dead_code)] Vec<u8>);
        impl Message for Big {
            fn wire_size(&self) -> usize {
                self.0.len()
            }
        }
        impl Protocol for RefCounter {
            type Msg = Big;
            fn on_start(&mut self, ctx: &mut Context<'_, Big>) {
                if ctx.node() == NodeId(0) {
                    ctx.broadcast((1..4).map(NodeId), Big(vec![1; 1024]));
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Big>, _: NodeId, _: Big) {
                self.owned += 1;
            }
            fn on_message_ref(&mut self, _: &mut Context<'_, Big>, _: NodeId, _: &Big) {
                self.borrowed += 1;
            }
        }
        let topo = crate::topology::Topology::full_mesh(4, SimDuration::from_millis(10));
        let mut sim = Simulator::new(topo, (0..4).map(|_| RefCounter::default()).collect(), 0);
        sim.start();
        sim.run_to_quiescence(100);
        let (owned, borrowed) = sim
            .nodes()
            .fold((0, 0), |(o, b), n| (o + n.owned, b + n.borrowed));
        assert_eq!(owned + borrowed, 3);
        assert_eq!(owned, 1, "exactly the final delivery owns the payload");
        assert_eq!(borrowed, 2);
    }

    #[test]
    fn broadcast_through_with_inner_wraps_once() {
        // An embedded protocol broadcasting through with_inner keeps the
        // multicast shape (one wrapped Arc payload, n recipients).
        #[derive(Debug, Default)]
        struct Outer {
            inner_got: u32,
        }
        #[derive(Debug, Clone)]
        struct Inner(u32);
        #[derive(Debug, Clone)]
        struct Env(Inner);
        impl Message for Env {
            fn wire_size(&self) -> usize {
                8
            }
        }
        impl Protocol for Outer {
            type Msg = Env;
            fn on_start(&mut self, ctx: &mut Context<'_, Env>) {
                if ctx.node() == NodeId(0) {
                    ctx.with_inner(Env, |inner: &mut Context<'_, Inner>| {
                        inner.broadcast((1..3).map(NodeId), Inner(41));
                    });
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Env>, _: NodeId, msg: Env) {
                assert_eq!(msg.0 .0, 41);
                self.inner_got += 1;
            }
        }
        let topo = crate::topology::Topology::full_mesh(3, SimDuration::from_millis(5));
        let mut sim = Simulator::new(topo, vec![Outer::default(), Outer::default(), Outer::default()], 3);
        sim.start();
        sim.run_to_quiescence(100);
        let total: u32 = sim.nodes().map(|n| n.inner_got).sum();
        assert_eq!(total, 2);
    }

    #[test]
    #[should_panic(expected = "without quiescing")]
    fn runaway_guard_trips() {
        // Protocol that ping-pongs forever.
        #[derive(Debug)]
        struct Pong;
        #[derive(Debug, Clone)]
        struct Ping;
        impl Message for Ping {
            fn wire_size(&self) -> usize {
                1
            }
        }
        impl Protocol for Pong {
            type Msg = Ping;
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                if ctx.node() == NodeId(0) {
                    ctx.send(NodeId(1), Ping);
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, _: Ping) {
                ctx.send(from, Ping);
            }
        }
        let topo = crate::topology::Topology::full_mesh(2, SimDuration::from_millis(1));
        let mut sim = Simulator::new(topo, vec![Pong, Pong], 0);
        sim.start();
        sim.run_to_quiescence(50);
    }

    /// Not a correctness test: times the engine on the perf-report grid
    /// workload shape (timer-heavy, lockstep cohorts) for hot-path tuning.
    /// Run with `cargo test -p oceanstore-sim --release
    /// engine_grid_throughput -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn engine_grid_throughput() {
        const PERIODS_MS: [u64; 4] = [5, 11, 17, 29];
        #[derive(Debug)]
        struct Ticker {
            id: usize,
            fires: u64,
            horizon: SimTime,
        }
        #[derive(Debug, Clone)]
        struct Blob(Vec<u8>);
        impl Message for Blob {
            fn wire_size(&self) -> usize {
                self.0.len()
            }
            fn class(&self) -> &'static str {
                "tick"
            }
        }
        impl Protocol for Ticker {
            type Msg = Blob;
            fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
                for p in PERIODS_MS {
                    ctx.set_timer(SimDuration::from_millis(p), p);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Blob>, _: NodeId, _: Blob) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Blob>, tag: u64) {
                self.fires += 1;
                let to = NodeId((self.id + 1 + (self.fires % 3) as usize) % 256);
                ctx.send(to, Blob(vec![0x5A; 16]));
                if ctx.now() + SimDuration::from_millis(tag) <= self.horizon {
                    ctx.set_timer(SimDuration::from_millis(tag), tag);
                }
            }
        }
        let horizon = SimTime::ZERO + SimDuration::from_millis(400);
        for round in 0..3 {
            let nodes: Vec<Ticker> =
                (0..256).map(|id| Ticker { id, fires: 0, horizon }).collect();
            let topo = crate::topology::Topology::grid(16, 16, SimDuration::from_millis(1));
            let mut sim = Simulator::new(topo, nodes, 7);
            sim.start();
            let t = std::time::Instant::now();
            sim.run_until(horizon);
            let dt = t.elapsed().as_secs_f64();
            println!(
                "round {round}: {} events in {:.1} ms = {:.2} M events/s",
                sim.events_processed(),
                dt * 1e3,
                sim.events_processed() as f64 / dt / 1e6
            );
        }
    }
}
