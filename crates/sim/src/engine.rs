//! The discrete-event simulation engine.
//!
//! Protocols are written sans-io: a [`Protocol`] is a state machine that
//! reacts to message deliveries and timer expirations by emitting new sends
//! and timers through a [`Context`]. The engine owns the event queue, the
//! clock, the [`crate::topology::Topology`], failure injection,
//! and byte accounting. Everything is deterministic for a given seed:
//! events at equal times fire in insertion order, and all randomness flows
//! from per-node ChaCha streams derived from the master seed.
//!
//! # Hot-path structure
//!
//! Four things keep the event loop cheap without changing its observable
//! order (a single global `(at, seq)` sequence, `seq` assigned at emission):
//!
//! * **Arc multicast** — [`Context::broadcast`] queues one allocation for n
//!   recipients; each delivery borrows the shared payload through
//!   [`Protocol::on_message_ref`] (the last one gets it by value for free),
//!   and its byte accounting is folded into one
//!   [`NetStats::record_multicast`] batch instead of n counter updates.
//! * **Timer wheel** — timers live in a hierarchical wheel
//!   ([`crate::wheel`]) instead of the delivery heap; [`Simulator::step`]
//!   pops the global `(at, seq)` minimum across both structures, which is
//!   exactly the order the single-heap engine produced.
//! * **Key-slab delivery queue** — the heap sifts compact 24-byte
//!   `(at, seq, slab)` keys while the fat delivery bodies (sender,
//!   destination, payload) sit still in a slab with a free list, so every
//!   sift-up/sift-down moves three words instead of a whole `Event`.
//! * **Pooled action buffers** — every callback writes into one reusable
//!   scratch `Vec<Action>` owned by the simulator rather than a fresh
//!   allocation per dispatch.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::stats::{DropCause, NetStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use crate::wheel::{TimerEntry, TimerWheel};

/// A protocol message that can travel over the simulated network.
pub trait Message: Clone {
    /// Bytes this message occupies on the wire (used for Figure-6-style
    /// accounting). Include headers/signatures as the real system would.
    fn wire_size(&self) -> usize;

    /// Accounting class (e.g. `"prepare"`, `"gossip"`). Defaults to `"msg"`.
    fn class(&self) -> &'static str {
        "msg"
    }
}

/// A node-local protocol state machine.
pub trait Protocol {
    /// Message type exchanged between nodes.
    type Msg: Message;

    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Called when a message addressed to this node arrives.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Borrowing variant of [`Protocol::on_message`], used when the payload
    /// is shared with other still-pending deliveries of the same
    /// [`Context::broadcast`]. The default clones and delegates; protocols
    /// that never need ownership may override it to skip the clone. An
    /// override must be observably equivalent to `on_message` — the engine
    /// is free to call either.
    fn on_message_ref(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: &Self::Msg) {
        self.on_message(ctx, from, msg.clone());
    }

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Msg>, _tag: u64) {}
}

/// What a protocol may do in reaction to an event.
#[derive(Debug)]
enum Action<M> {
    Send { to: NodeId, msg: M },
    Multicast { to: Vec<NodeId>, msg: Arc<M> },
    Timer { delay: SimDuration, tag: u64 },
    Count { name: &'static str, n: u64 },
}

/// Handle given to protocol callbacks for interacting with the simulated
/// world.
#[derive(Debug)]
pub struct Context<'a, M> {
    now: SimTime,
    node: NodeId,
    actions: &'a mut Vec<Action<M>>,
    rng: &'a mut ChaCha8Rng,
}

impl<M> Context<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this callback runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends `msg` to `to`; it arrives after the topology's shortest-path
    /// latency (or never, if `to` is unreachable, partitioned away, down at
    /// delivery time, or the message is randomly dropped).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Sends one message to every recipient in `to`, in order — observably
    /// identical to calling [`Context::send`] in a loop (same per-link
    /// accounting, drops, and delivery order), but the payload is allocated
    /// once and shared by reference until delivery.
    pub fn broadcast(&mut self, to: impl IntoIterator<Item = NodeId>, msg: M) {
        let to: Vec<NodeId> = to.into_iter().collect();
        match to.len() {
            0 => {}
            1 => self.actions.push(Action::Send { to: to[0], msg }),
            _ => self.actions.push(Action::Multicast { to, msg: Arc::new(msg) }),
        }
    }

    /// Schedules [`Protocol::on_timer`] with `tag` after `delay`.
    ///
    /// Timers cannot be cancelled; protocols should treat stale timers as
    /// no-ops based on their own state.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.actions.push(Action::Timer { delay, tag });
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut impl Rng {
        self.rng
    }

    /// Bumps the named protocol-event counter in [`NetStats`] by one.
    ///
    /// Events are for costs that are invisible in pure message counts —
    /// e.g. how many `Commit` re-pushes were retries vs the retry budget
    /// being exhausted. They appear in [`NetStats::event`] and the chaos
    /// fingerprint, so determinism checks cover them too.
    pub fn count(&mut self, name: &'static str) {
        self.actions.push(Action::Count { name, n: 1 });
    }

    /// Runs an *embedded* protocol that speaks message type `N`, wrapping
    /// every send with `wrap` so it travels as this protocol's `M`. Timers
    /// pass through unchanged — composite protocols must partition the tag
    /// space between layers.
    ///
    /// This is how a composite node (e.g. an OceanStore server) hosts a
    /// self-contained state machine (e.g. a PBFT replica) without the inner
    /// machine knowing about the envelope type.
    pub fn with_inner<N: Clone, R>(
        &mut self,
        wrap: impl Fn(N) -> M,
        f: impl FnOnce(&mut Context<'_, N>) -> R,
    ) -> R {
        self.with_inner_mapped(wrap, |t| t, f)
    }

    /// Like [`Context::with_inner`], additionally rewriting timer tags the
    /// embedded protocol sets through `tag_map`. A composite node hosting
    /// several timer-using subsystems namespaces their tags this way (and
    /// inverts the map in its own `on_timer`).
    pub fn with_inner_mapped<N: Clone, R>(
        &mut self,
        wrap: impl Fn(N) -> M,
        tag_map: impl Fn(u64) -> u64,
        f: impl FnOnce(&mut Context<'_, N>) -> R,
    ) -> R {
        let mut inner_actions: Vec<Action<N>> = Vec::new();
        let r = {
            let mut inner = Context {
                now: self.now,
                node: self.node,
                actions: &mut inner_actions,
                rng: self.rng,
            };
            f(&mut inner)
        };
        for action in inner_actions {
            match action {
                Action::Send { to, msg } => self.actions.push(Action::Send { to, msg: wrap(msg) }),
                Action::Multicast { to, msg } => {
                    let inner_msg = Arc::try_unwrap(msg).unwrap_or_else(|a| (*a).clone());
                    self.actions.push(Action::Multicast { to, msg: Arc::new(wrap(inner_msg)) });
                }
                Action::Timer { delay, tag } => {
                    self.actions.push(Action::Timer { delay, tag: tag_map(tag) })
                }
                Action::Count { name, n } => self.actions.push(Action::Count { name, n }),
            }
        }
        r
    }
}

/// A delivery payload: owned for unicast, `Arc`-shared for multicast so one
/// allocation serves every recipient.
#[derive(Debug)]
enum Payload<M> {
    One(M),
    Shared(Arc<M>),
}

impl<M> Payload<M> {
    fn as_msg(&self) -> &M {
        match self {
            Payload::One(m) => m,
            Payload::Shared(a) => a,
        }
    }
}

/// Heap key of one pending delivery: `(at µs, seq, slab index)`. Wrapped in
/// [`Reverse`] so the `BinaryHeap` max-heap pops the earliest `(at, seq)`
/// first, ties broken by insertion order for determinism. Seqs are unique,
/// so the slab index never participates in an ordering decision.
type DeliveryKey = Reverse<(u64, u64, u32)>;

/// The fat part of a pending delivery, parked in the delivery slab while
/// its compact [`DeliveryKey`] sifts through the heap.
#[derive(Debug)]
struct DeliveryBody<M> {
    from: NodeId,
    to: NodeId,
    msg: Payload<M>,
}

/// The one next-event decision, shared by the sequential step loop and each
/// parallel domain's window loop: the global `(at, seq)` minimum across a
/// delivery queue and a timer wheel. Seqs are unique across both sources,
/// so the two never tie. Returns `(at, seq, take_timer)`.
fn peek_next(queue: &BinaryHeap<DeliveryKey>, timers: &mut TimerWheel) -> Option<(u64, u64, bool)> {
    let msg_key = queue.peek().map(|&Reverse((at, seq, _))| (at, seq));
    match (msg_key, timers.peek()) {
        (None, None) => None,
        (Some((at, seq)), None) => Some((at, seq, false)),
        (None, Some((at, seq))) => Some((at, seq, true)),
        (Some(m), Some(t)) => {
            if t < m {
                Some((t.0, t.1, true))
            } else {
                Some((m.0, m.1, false))
            }
        }
    }
}

/// Parks `body` in `slab` (reusing a free slot LIFO) and returns the slot
/// for the compact heap key. Shared by the global queue and the per-domain
/// queues so both sides keep identical slab semantics.
fn park_delivery<M>(
    slab: &mut Vec<Option<DeliveryBody<M>>>,
    free: &mut Vec<u32>,
    body: DeliveryBody<M>,
) -> u32 {
    match free.pop() {
        Some(slot) => {
            debug_assert!(slab[slot as usize].is_none());
            slab[slot as usize] = Some(body);
            slot
        }
        None => {
            let slot = u32::try_from(slab.len())
                .expect("more than u32::MAX simultaneous in-flight deliveries");
            slab.push(Some(body));
            slot
        }
    }
}

/// Deterministic contiguous block partition of `n` nodes into `count`
/// domains: node `i`'s domain depends only on `(n, count)`, never on thread
/// scheduling. Contiguity matters twice over — it matches the positional
/// rack/ring layout [`crate::cluster::ClusterSpec`] assigns (so domains
/// align with cluster structure), and it lets the window runner hand each
/// worker a disjoint `&mut` slice of the node and RNG vectors.
pub(crate) fn contiguous_domains(n: usize, count: usize) -> Vec<u32> {
    let count = count.clamp(1, n.max(1));
    let base = n / count;
    let rem = n % count;
    let mut of_node = Vec::with_capacity(n);
    for d in 0..count {
        let size = base + usize::from(d < rem);
        of_node.extend(std::iter::repeat_n(d as u32, size));
    }
    of_node
}

/// Outcome of routing one recipient during a window, resolved again at the
/// barrier in exact sequential order.
#[derive(Debug)]
enum Disp<M> {
    /// Dropped at send time (partition / unreachable). Consumes no seq.
    Dropped(DropCause),
    /// Delivered *inside* this window to this domain: it already executed
    /// under a provisional key and consumes one real seq at commit.
    Executed,
    /// Survives the window (cross-domain, or lands past the window end):
    /// enqueued into the target domain at commit with its real seq. The
    /// body rides in an `Option` so the commit loop can take it by value.
    Parked { at: u64, body: Option<Payload<M>> },
}

/// One action a window dispatch emitted, logged in action order so the
/// barrier can replay seq assignment and byte accounting exactly as the
/// sequential engine would have.
#[derive(Debug)]
enum Emission<M> {
    Send { to: NodeId, wire: usize, class: &'static str, disp: Disp<M> },
    Multicast { to: Vec<NodeId>, wire: usize, class: &'static str, disps: Vec<Disp<M>> },
    Timer { at: u64, tag: u64, executed: bool },
}

/// One window dispatch that emitted something: the dispatched event's key
/// (provisional iff `seq >= seq_base`) plus its slice of the domain's
/// emission log. Zero-emission dispatches need no record — they consume no
/// seqs and nothing downstream orders against them.
#[derive(Debug, Clone, Copy)]
struct DispatchRecord {
    at: u64,
    seq: u64,
    node: u32,
    emi: u32,
    emi_len: u32,
}

/// One spatial domain of the conservative PDES scheduler: a contiguous
/// node block with its own delivery queue, slab, and timer-wheel shard,
/// plus the per-window logs the barrier commit consumes.
struct Domain<M> {
    /// First node id in this domain's contiguous block.
    base: usize,
    /// One-past-last node id.
    end: usize,
    queue: BinaryHeap<DeliveryKey>,
    slab: Vec<Option<DeliveryBody<M>>>,
    free: Vec<u32>,
    wheel: TimerWheel,
    /// Dispatches with emissions, in domain execution order.
    records: Vec<DispatchRecord>,
    /// Flat emission log; records hold ranges into it.
    emissions: Vec<Emission<M>>,
    /// Per-domain accumulator for counters recorded mid-window off the
    /// emission path (delivery-time `NodeDown` drops, `Context::count`
    /// events); folded into the global [`NetStats`] at the barrier.
    stats: NetStats,
    events_processed: u64,
    /// Count of intra-window seq-consuming emissions so far: the k-th one
    /// runs under provisional key `seq_base + k`.
    provisional: u64,
    /// Reusable action buffer for this domain's dispatches.
    actions: Vec<Action<M>>,
}

impl<M> Domain<M> {
    fn new(base: usize, end: usize) -> Self {
        Domain {
            base,
            end,
            queue: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            wheel: TimerWheel::new(),
            records: Vec::new(),
            emissions: Vec::new(),
            stats: NetStats::accumulator(0),
            events_processed: 0,
            provisional: 0,
            actions: Vec::new(),
        }
    }

    fn push_with_seq(&mut self, at: u64, seq: u64, body: DeliveryBody<M>) {
        let slot = park_delivery(&mut self.slab, &mut self.free, body);
        self.queue.push(Reverse((at, seq, slot)));
    }

    fn pending(&self) -> usize {
        self.queue.len() + self.wheel.len()
    }
}

/// Live sharded state of a parallel epoch.
struct ParState<M> {
    domains: Vec<Domain<M>>,
    /// Domain index per node (contiguous blocks).
    of_node: Vec<u32>,
    /// Unscaled PDES lookahead in µs: the minimum cross-domain link
    /// latency. `u64::MAX` when domains are network-isolated.
    base_lookahead: u64,
}

/// Read-only world state shared by every domain worker during one window,
/// plus the window constants.
struct WindowEnv<'a> {
    topo: &'a Topology,
    down: &'a [bool],
    partitions: Option<&'a [u32]>,
    latency_factor: f64,
    /// Exclusive end of the window: events with `at < window_end` execute.
    window_end: u64,
    /// Global seq counter at window start; provisional keys start here.
    seq_base: u64,
}

/// Below this many pending events across all domains, a window runs inline
/// on the driver thread: results are identical either way (domains are
/// independent within a window), so threads are only worth their spawn cost
/// when the window carries real work.
const PARALLEL_SPAWN_THRESHOLD: usize = 64;

/// The discrete-event simulator driving one [`Protocol`] instance per node.
pub struct Simulator<P: Protocol> {
    nodes: Vec<P>,
    node_rngs: Vec<ChaCha8Rng>,
    topo: Topology,
    clock: SimTime,
    /// Message delivery *keys* only; timers live in `timers`. Both share
    /// the global `seq` counter, so the merged `(at, seq)` order is
    /// identical to the historical single-heap order.
    queue: BinaryHeap<DeliveryKey>,
    /// Delivery bodies indexed by the key's slab slot; `None` marks a free
    /// slot awaiting reuse through `delivery_free`.
    delivery_slab: Vec<Option<DeliveryBody<P::Msg>>>,
    /// Free slots in `delivery_slab`, reused LIFO for cache locality.
    delivery_free: Vec<u32>,
    timers: TimerWheel,
    seq: u64,
    stats: NetStats,
    down: Vec<bool>,
    /// Partition group per node; messages cross groups only if `None`.
    partitions: Option<Vec<u32>>,
    drop_prob: f64,
    /// Per-link drop probabilities (flapping links), keyed by the
    /// direction-normalized endpoint pair.
    link_drops: HashMap<(usize, usize), f64>,
    /// Multiplier applied to every link latency (link degradation).
    latency_factor: f64,
    engine_rng: ChaCha8Rng,
    events_processed: u64,
    /// Reusable per-callback action buffer (dispatch is not reentrant).
    scratch: Vec<Action<P::Msg>>,
    /// Configured worker count for the conservative PDES scheduler; 1 =
    /// the classic sequential loop.
    threads: usize,
    /// Sharded per-domain event structures, present while a parallel epoch
    /// is live. `None` means the global `queue`/`timers` are authoritative.
    par: Option<ParState<P::Msg>>,
    /// Monomorphized parallel driver, installed by [`Simulator::set_threads`]
    /// (which carries the `Send` bounds the thread scope needs); `None`
    /// keeps every run on the sequential path.
    par_exec: Option<fn(&mut Simulator<P>, u64)>,
}

impl<P: Protocol> std::fmt::Debug for Simulator<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.nodes.len())
            .field("clock", &self.clock)
            .field("pending_events", &(self.queue.len() + self.timers.len()))
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator over `topology` with one protocol instance per
    /// node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != topology.len()`.
    pub fn new(topology: Topology, nodes: Vec<P>, seed: u64) -> Self {
        assert_eq!(nodes.len(), topology.len(), "one protocol instance per topology node");
        let n = nodes.len();
        let node_rngs = (0..n)
            .map(|i| ChaCha8Rng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))))
            .collect();
        Simulator {
            nodes,
            node_rngs,
            topo: topology,
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            delivery_slab: Vec::new(),
            delivery_free: Vec::new(),
            timers: TimerWheel::new(),
            seq: 0,
            stats: NetStats::new(n),
            down: vec![false; n],
            partitions: None,
            drop_prob: 0.0,
            link_drops: HashMap::new(),
            latency_factor: 1.0,
            engine_rng: ChaCha8Rng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03),
            events_processed: 0,
            scratch: Vec::new(),
            threads: 1,
            par: None,
            par_exec: None,
        }
    }

    /// Calls [`Protocol::on_start`] on every live node.
    pub fn start(&mut self) {
        for i in 0..self.nodes.len() {
            if !self.down[i] {
                self.dispatch_start(NodeId(i));
            }
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Network accounting so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets the byte counters (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        if let Some(par) = &mut self.par {
            // Domain accumulators are drained at every window barrier, so
            // they are empty between runs; clear defensively anyway.
            for dom in &mut par.domains {
                dom.stats = NetStats::accumulator(0);
            }
        }
    }

    /// The topology the simulation runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Shared access to the protocol instance at `node`.
    pub fn node(&self, node: NodeId) -> &P {
        &self.nodes[node.0]
    }

    /// Exclusive access to the protocol instance at `node` (for test
    /// inspection and external stimulus outside the event loop).
    pub fn node_mut(&mut self, node: NodeId) -> &mut P {
        &mut self.nodes[node.0]
    }

    /// Iterates over all protocol instances.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// Marks a node crashed (true) or recovered (false). A crashed node
    /// receives no messages or timers; pending events addressed to it are
    /// dropped at delivery time.
    ///
    /// Note that flipping a node back up this way does **not** re-run
    /// [`Protocol::on_start`], so periodic timers stay dead — use
    /// [`Simulator::recover_node`] for a crash-recovery that restarts the
    /// protocol's timer wheels.
    pub fn set_down(&mut self, node: NodeId, down: bool) {
        self.down[node.0] = down;
    }

    /// Whether `node` is currently crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.0]
    }

    /// Crashes `node`: from now until recovery it receives no messages and
    /// none of its timers fire (they are silently discarded when they come
    /// due). Protocol state is preserved in place. No-op if already down.
    pub fn crash_node(&mut self, node: NodeId) {
        self.down[node.0] = true;
    }

    /// Recovers a crashed node with its protocol state intact (a process
    /// restart on a machine whose disk survived). [`Protocol::on_start`]
    /// runs again so periodic timers — all lost while down — are re-armed.
    /// No-op if the node is not down.
    pub fn recover_node(&mut self, node: NodeId) {
        if !self.down[node.0] {
            return;
        }
        self.down[node.0] = false;
        self.dispatch_start(node);
    }

    /// Recovers a crashed node with its state wiped: `fresh` replaces the
    /// old protocol instance (a machine rebuilt from nothing) and
    /// [`Protocol::on_start`] runs on it. Works whether or not the node is
    /// currently down.
    pub fn recover_node_wiped(&mut self, node: NodeId, fresh: P) {
        self.nodes[node.0] = fresh;
        self.down[node.0] = false;
        self.dispatch_start(node);
    }

    /// Sets the independent per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_drop_prob(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_prob = p;
    }

    /// The current independent per-message drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Sets the drop probability of the single (bidirectional) link between
    /// `a` and `b`, independent of the global [`Simulator::set_drop_prob`]
    /// coin. `p = 0.0` restores the link. Models a flapping or lossy link
    /// without disturbing the rest of the mesh.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_link_drop(&mut self, a: NodeId, b: NodeId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let key = (a.0.min(b.0), a.0.max(b.0));
        if p == 0.0 {
            self.link_drops.remove(&key);
        } else {
            self.link_drops.insert(key, p);
        }
    }

    /// The drop probability of the link between `a` and `b` (0.0 unless
    /// overridden via [`Simulator::set_link_drop`]).
    pub fn link_drop(&self, a: NodeId, b: NodeId) -> f64 {
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.link_drops.get(&key).copied().unwrap_or(0.0)
    }

    /// Degrades (factor > 1) or restores (factor = 1) every link: message
    /// latencies are multiplied by `factor` at send time.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn set_latency_factor(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "latency factor must be positive");
        self.latency_factor = factor;
    }

    /// The current link-latency multiplier.
    pub fn latency_factor(&self) -> f64 {
        self.latency_factor
    }

    /// Installs a network partition: messages are delivered only within a
    /// group. `None` heals all partitions.
    ///
    /// # Panics
    ///
    /// Panics if the group vector length differs from the node count.
    pub fn set_partitions(&mut self, groups: Option<Vec<u32>>) {
        if let Some(g) = &groups {
            assert_eq!(g.len(), self.nodes.len(), "one group per node");
        }
        self.partitions = groups;
    }

    /// Injects a message from the outside world (e.g. a test driver acting
    /// as a client) for delivery to `to` at the current time, attributed to
    /// `from`.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        let at = self.clock;
        self.push_delivery(at, from, to, Payload::One(msg));
    }

    /// Lets external code act *as* `node`: the closure receives the
    /// protocol and a live [`Context`], so stimulus goes through the same
    /// send/timer path as real events.
    pub fn with_node_ctx<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>) -> R,
    ) -> R {
        self.with_ctx(node, f)
    }

    /// Runs a single event. Returns `false` when the queue is empty.
    ///
    /// Single-stepping is inherently sequential: if a parallel epoch is
    /// live, its sharded queues are merged back into the global structures
    /// first (a no-op otherwise).
    pub fn step(&mut self) -> bool {
        self.unshard();
        self.step_bounded(u64::MAX)
    }

    /// Runs the next event unless its timestamp (µs) exceeds `bound`.
    /// Returns `false` when nothing ran. One peek pair decides both "is
    /// there an event" and "is it in range", so `run_until` doesn't pay a
    /// second round of queue peeks per event.
    fn step_bounded(&mut self, bound: u64) -> bool {
        let Some((next_at, _seq, take_timer)) = peek_next(&self.queue, &mut self.timers) else {
            return false;
        };
        if next_at > bound {
            return false;
        }
        if take_timer {
            let entry = self.timers.pop_earliest().expect("peeked");
            let at = SimTime::ZERO + SimDuration::from_micros(entry.at);
            debug_assert!(at >= self.clock, "time must be monotonic");
            self.clock = at;
            self.events_processed += 1;
            if !self.down[entry.node] {
                self.dispatch_timer(NodeId(entry.node), entry.tag);
            }
        } else {
            let Reverse((at_us, _seq, slot)) = self.queue.pop().expect("peeked");
            let body = self.delivery_slab[slot as usize]
                .take()
                .expect("queued key points at a parked body");
            self.delivery_free.push(slot);
            let at = SimTime::ZERO + SimDuration::from_micros(at_us);
            debug_assert!(at >= self.clock, "time must be monotonic");
            self.clock = at;
            // Timers armed by this delivery's handler must be placeable
            // relative to the new clock.
            self.timers.advance(at_us);
            self.events_processed += 1;
            if self.down[body.to.0] {
                self.stats.record_drop(DropCause::NodeDown);
            } else {
                self.dispatch_payload(body.to, body.from, body.msg);
            }
        }
        true
    }

    /// Runs until the event queue drains. Returns the number of events
    /// processed by this call.
    ///
    /// # Panics
    ///
    /// Panics after `max_events` events as a runaway-protocol guard.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let start = self.events_processed;
        while self.step() {
            assert!(
                self.events_processed - start <= max_events,
                "simulation exceeded {max_events} events without quiescing"
            );
        }
        self.events_processed - start
    }

    /// Runs events with timestamps `<= until`, leaving later events queued.
    /// The clock is advanced to `until` even if the queue drains early.
    ///
    /// With [`Simulator::set_threads`] above 1 this drives the conservative
    /// PDES scheduler; the observable schedule is bit-identical to the
    /// sequential loop at any thread count.
    pub fn run_until(&mut self, until: SimTime) {
        let bound = until.as_micros();
        match self.par_exec {
            Some(f) => f(self, bound),
            None => while self.step_bounded(bound) {},
        }
        if self.clock < until {
            self.clock = until;
            self.timers.advance(bound);
            if let Some(par) = &mut self.par {
                for dom in &mut par.domains {
                    dom.wheel.advance(bound);
                }
            }
        }
    }

    /// Runs for a span of simulated time from the current clock.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.clock + d;
        self.run_until(until);
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently queued (deliveries and timers), across
    /// the global structures and any live domain shards.
    pub fn pending_events(&self) -> usize {
        let sharded: usize =
            self.par.iter().flat_map(|p| p.domains.iter()).map(Domain::pending).sum();
        self.queue.len() + self.timers.len() + sharded
    }

    /// The configured worker count (1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The domain a node is assigned to under the current thread
    /// configuration (contiguous blocks; see `contiguous_domains`).
    /// Exposed for tests and diagnostics.
    pub fn domain_of(&self, node: NodeId) -> u32 {
        contiguous_domains(self.nodes.len(), self.threads)[node.0]
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn push_delivery(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: Payload<P::Msg>) {
        let seq = self.next_seq();
        let body = DeliveryBody { from, to, msg };
        // Between windows of a parallel epoch the sharded queues are
        // authoritative: route straight into the destination's domain.
        // (Seqs are global and real here, so ordering is unaffected.)
        if let Some(par) = &mut self.par {
            let d = par.of_node[to.0] as usize;
            par.domains[d].push_with_seq(at.as_micros(), seq, body);
            return;
        }
        let slot = park_delivery(&mut self.delivery_slab, &mut self.delivery_free, body);
        self.queue.push(Reverse((at.as_micros(), seq, slot)));
    }

    /// Runs `f` against `node`'s protocol with a live context backed by the
    /// pooled scratch buffer, then applies the emitted actions.
    fn with_ctx<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>) -> R,
    ) -> R {
        let mut actions = std::mem::take(&mut self.scratch);
        debug_assert!(actions.is_empty());
        let r = {
            let mut ctx = Context {
                now: self.clock,
                node,
                actions: &mut actions,
                rng: &mut self.node_rngs[node.0],
            };
            f(&mut self.nodes[node.0], &mut ctx)
        };
        self.apply_actions(node, &mut actions);
        self.scratch = actions;
        r
    }

    fn dispatch_start(&mut self, node: NodeId) {
        self.with_ctx(node, |p, ctx| p.on_start(ctx));
    }

    fn dispatch_payload(&mut self, node: NodeId, from: NodeId, payload: Payload<P::Msg>) {
        match payload {
            Payload::One(msg) => self.with_ctx(node, |p, ctx| p.on_message(ctx, from, msg)),
            // The last recipient of a multicast owns the payload outright;
            // earlier ones borrow it.
            Payload::Shared(arc) => match Arc::try_unwrap(arc) {
                Ok(msg) => self.with_ctx(node, |p, ctx| p.on_message(ctx, from, msg)),
                Err(arc) => self.with_ctx(node, |p, ctx| p.on_message_ref(ctx, from, &arc)),
            },
        }
    }

    fn dispatch_timer(&mut self, node: NodeId, tag: u64) {
        self.with_ctx(node, |p, ctx| p.on_timer(ctx, tag));
    }

    fn apply_actions(&mut self, node: NodeId, actions: &mut Vec<Action<P::Msg>>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.route(node, to, Payload::One(msg)),
                Action::Multicast { to, msg } => {
                    // One aggregated accounting entry for the whole fan-out;
                    // the per-recipient loop then only decides delivery. The
                    // counter totals are identical to per-recipient
                    // record_send calls, so stats fingerprints don't move.
                    let (wire_size, class) = (msg.wire_size(), msg.class());
                    self.stats.record_multicast(node, &to, wire_size, class);
                    for t in to {
                        self.route_unaccounted(node, t, Payload::Shared(Arc::clone(&msg)));
                    }
                }
                Action::Timer { delay, tag } => {
                    let at = self.clock + delay;
                    let seq = self.next_seq();
                    let entry = TimerEntry { at: at.as_micros(), seq, node: node.0, tag };
                    match &mut self.par {
                        Some(par) => {
                            let d = par.of_node[node.0] as usize;
                            par.domains[d].wheel.insert(entry);
                        }
                        None => self.timers.insert(entry),
                    }
                }
                Action::Count { name, n } => self.stats.record_event(name, n),
            }
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: Payload<P::Msg>) {
        // Accounting happens at send time: bytes hit the wire even when the
        // destination later proves dead.
        let (wire_size, class) = {
            let m = msg.as_msg();
            (m.wire_size(), m.class())
        };
        self.stats.record_send(from, to, wire_size, class);
        self.route_unaccounted(from, to, msg);
    }

    /// Delivery decision only — byte accounting already happened (either
    /// [`NetStats::record_send`] in [`Simulator::route`] or one batched
    /// [`NetStats::record_multicast`] for a whole fan-out). The order and
    /// count of engine-RNG draws here is part of the determinism contract.
    fn route_unaccounted(&mut self, from: NodeId, to: NodeId, msg: Payload<P::Msg>) {
        if let Some(groups) = &self.partitions {
            if groups[from.0] != groups[to.0] {
                self.stats.record_drop(DropCause::Partition);
                return;
            }
        }
        if self.drop_prob > 0.0 && self.engine_rng.gen::<f64>() < self.drop_prob {
            self.stats.record_drop(DropCause::Random);
            return;
        }
        // Per-link flap coin. Consumes engine randomness only when the link
        // actually has an override, so installing none leaves event streams
        // of unrelated runs byte-identical. The emptiness guard spares the
        // common no-overrides case the per-message hash of the link key.
        if !self.link_drops.is_empty() {
            if let Some(&p) = self.link_drops.get(&(from.0.min(to.0), from.0.max(to.0))) {
                if self.engine_rng.gen::<f64>() < p {
                    self.stats.record_drop(DropCause::LinkFlap);
                    return;
                }
            }
        }
        let Some(latency) = self.topo.dist(from, to) else {
            self.stats.record_drop(DropCause::Unreachable);
            return;
        };
        let latency =
            if self.latency_factor == 1.0 { latency } else { latency.mul_f64(self.latency_factor) };
        let at = self.clock + latency;
        self.push_delivery(at, from, to, msg);
    }

    /// Splits the global queue and timer wheel into per-domain shards for a
    /// parallel epoch. No-op if already sharded. Seqs travel with their
    /// keys, so the merged `(at, seq)` order is untouched.
    fn ensure_sharded(&mut self) {
        if self.par.is_some() {
            return;
        }
        let n = self.nodes.len();
        let of_node = contiguous_domains(n, self.threads);
        let count = of_node.last().map_or(1, |&d| d as usize + 1);
        let mut domains: Vec<Domain<P::Msg>> = Vec::with_capacity(count);
        let mut base = 0;
        for d in 0..count {
            let end = of_node.iter().filter(|&&x| x == d as u32).count() + base;
            let mut dom = Domain::new(base, end);
            dom.wheel.advance(self.clock.as_micros());
            domains.push(dom);
            base = end;
        }
        let base_lookahead = self
            .topo
            .min_cross_group_latency(&of_node)
            .map_or(u64::MAX, |l| l.as_micros());
        while let Some(Reverse((at, seq, slot))) = self.queue.pop() {
            let body = self.delivery_slab[slot as usize]
                .take()
                .expect("queued key points at a parked body");
            let d = of_node[body.to.0] as usize;
            domains[d].push_with_seq(at, seq, body);
        }
        self.delivery_slab.clear();
        self.delivery_free.clear();
        for e in self.timers.drain_sorted() {
            domains[of_node[e.node] as usize].wheel.insert(e);
        }
        self.timers = TimerWheel::new();
        self.timers.advance(self.clock.as_micros());
        self.par = Some(ParState { domains, of_node, base_lookahead });
    }

    /// Merges any live domain shards back into the global structures (the
    /// inverse of `ensure_sharded`). Called whenever sequential stepping
    /// needs the single-queue view: `step`, thread-count changes, and the
    /// random-drop fallback.
    fn unshard(&mut self) {
        let Some(mut par) = self.par.take() else { return };
        for dom in &mut par.domains {
            while let Some(Reverse((at, seq, slot))) = dom.queue.pop() {
                let body = dom.slab[slot as usize]
                    .take()
                    .expect("queued key points at a parked body");
                let slot =
                    park_delivery(&mut self.delivery_slab, &mut self.delivery_free, body);
                self.queue.push(Reverse((at, seq, slot)));
            }
            for e in dom.wheel.drain_sorted() {
                self.timers.insert(e);
            }
            // Empty between windows; defensive so no counter is ever lost.
            self.stats.merge(&dom.stats);
            self.events_processed += dom.events_processed;
        }
    }

    /// The window barrier: replays every domain's emission log in exact
    /// sequential dispatch order, assigning real seqs, folding byte
    /// accounting into the global [`NetStats`], and enqueueing surviving
    /// (cross-domain or post-window) events into their target domains.
    ///
    /// Dispatch records merge by the dispatched event's real `(at, seq)`
    /// key. A record whose key is provisional (`seq >= seq_base`) was
    /// emitted *this* window by its own domain, and its emitter's record
    /// sits earlier in the same domain's list — so by the time it reaches
    /// the merge head, its real seq is already known. This reconstructs
    /// the exact global emission order of the sequential engine, which is
    /// what makes every thread count bit-identical.
    fn commit_window(&mut self, seq_base: u64) {
        let mut par = self.par.take().expect("commit only inside a parallel epoch");
        let count = par.domains.len();
        let mut heads = vec![0usize; count];
        let mut cursors = vec![0usize; count];
        // real_of[d][k] = real seq of domain d's k-th executed emission.
        let mut real_of: Vec<Vec<u64>> = par
            .domains
            .iter()
            .map(|d| Vec::with_capacity(d.provisional as usize))
            .collect();
        loop {
            let mut best: Option<(u64, u64, usize)> = None;
            for d in 0..count {
                let recs = &par.domains[d].records;
                if heads[d] >= recs.len() {
                    continue;
                }
                let r = &recs[heads[d]];
                let seq = if r.seq >= seq_base {
                    real_of[d][(r.seq - seq_base) as usize]
                } else {
                    r.seq
                };
                if best.is_none_or(|b| (r.at, seq) < (b.0, b.1)) {
                    best = Some((r.at, seq, d));
                }
            }
            let Some((_, _, d)) = best else { break };
            let r = par.domains[d].records[heads[d]];
            heads[d] += 1;
            debug_assert_eq!(cursors[d], r.emi as usize, "emission ranges are consecutive");
            let from = NodeId(r.node as usize);
            for i in r.emi as usize..(r.emi + r.emi_len) as usize {
                cursors[d] = i + 1;
                // Pull the per-emission values out first so the borrow of
                // this domain's log ends before any cross-domain park.
                enum Todo<M> {
                    Done,
                    Exec,
                    Park { to: NodeId, at: u64, body: Payload<M> },
                    ArmTimer { at: u64, tag: u64 },
                }
                let mut plan: Vec<Todo<P::Msg>> = Vec::new();
                match &mut par.domains[d].emissions[i] {
                    Emission::Send { to, wire, class, disp } => {
                        self.stats.record_send(from, *to, *wire, class);
                        plan.push(match disp {
                            Disp::Dropped(c) => {
                                self.stats.record_drop(*c);
                                Todo::Done
                            }
                            Disp::Executed => Todo::Exec,
                            Disp::Parked { at, body } => Todo::Park {
                                to: *to,
                                at: *at,
                                body: body.take().expect("parked body consumed once"),
                            },
                        });
                    }
                    Emission::Multicast { to, wire, class, disps } => {
                        self.stats.record_multicast(from, to, *wire, class);
                        for (t, disp) in to.iter().zip(disps.iter_mut()) {
                            plan.push(match disp {
                                Disp::Dropped(c) => {
                                    self.stats.record_drop(*c);
                                    Todo::Done
                                }
                                Disp::Executed => Todo::Exec,
                                Disp::Parked { at, body } => Todo::Park {
                                    to: *t,
                                    at: *at,
                                    body: body.take().expect("parked body consumed once"),
                                },
                            });
                        }
                    }
                    Emission::Timer { at, tag, executed } => {
                        plan.push(if *executed {
                            Todo::Exec
                        } else {
                            Todo::ArmTimer { at: *at, tag: *tag }
                        });
                    }
                }
                for todo in plan {
                    match todo {
                        Todo::Done => {}
                        Todo::Exec => {
                            let s = self.next_seq();
                            real_of[d].push(s);
                        }
                        Todo::Park { to, at, body } => {
                            let s = self.next_seq();
                            let td = par.of_node[to.0] as usize;
                            par.domains[td].push_with_seq(at, s, DeliveryBody {
                                from,
                                to,
                                msg: body,
                            });
                        }
                        Todo::ArmTimer { at, tag } => {
                            let s = self.next_seq();
                            par.domains[d].wheel.insert(TimerEntry {
                                at,
                                seq: s,
                                node: r.node as usize,
                                tag,
                            });
                        }
                    }
                }
            }
        }
        for (d, dom) in par.domains.iter_mut().enumerate() {
            debug_assert_eq!(heads[d], dom.records.len(), "every record merged");
            debug_assert_eq!(cursors[d], dom.emissions.len(), "every emission replayed");
            dom.records.clear();
            dom.emissions.clear();
            self.stats.merge(&dom.stats);
            dom.stats = NetStats::accumulator(0);
            self.events_processed += dom.events_processed;
            dom.events_processed = 0;
            dom.provisional = 0;
        }
        self.par = Some(par);
    }
}

/// Parallel execution requires moving protocol state and messages across
/// worker threads, hence the bounds. A `Simulator` whose protocol is not
/// `Send` simply never gains `set_threads` and stays sequential.
impl<P> Simulator<P>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
{
    /// Sets the worker-thread count for [`Simulator::run_until`] /
    /// [`Simulator::run_for`]. `1` restores the plain sequential loop.
    ///
    /// The observable schedule — traces, stats, fingerprints, RNG streams —
    /// is bit-identical at every thread count; threads only change
    /// wall-clock time. Counts above the node count are capped.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "thread count must be at least 1");
        let threads = threads.min(self.nodes.len().max(1));
        if threads == self.threads {
            return;
        }
        // Repartitioning invalidates the current shards; fold them back
        // first (cheap, and only on reconfiguration).
        self.unshard();
        self.threads = threads;
        // Stored as a fn pointer so the unbounded `run_until` can invoke
        // the parallel path without carrying these bounds itself.
        self.par_exec = if threads > 1 { Some(Self::parallel_epoch) } else { None };
    }

    /// The conservative-PDES driver behind `run_until` when `threads > 1`:
    /// repeatedly picks the global minimum next-event time `t`, lets every
    /// domain run independently inside `[t, t + lookahead)`, then commits
    /// the window barrier. Falls back to the sequential loop whenever
    /// random drops are active (they consume shared engine RNG in global
    /// event order, which cannot be windowed) or no lookahead exists.
    fn parallel_epoch(sim: &mut Self, bound: u64) {
        loop {
            let eligible = sim.threads > 1
                && sim.drop_prob == 0.0
                && sim.link_drops.is_empty()
                && sim.nodes.len() >= 2;
            if !eligible {
                sim.unshard();
                while sim.step_bounded(bound) {}
                return;
            }
            sim.ensure_sharded();
            let par = sim.par.as_mut().expect("just sharded");
            // Scale the lookahead exactly like message routing scales
            // latency: rounding is monotone, so the scaled bound is still a
            // valid lower bound on cross-domain delivery delay.
            let w = match par.base_lookahead {
                u64::MAX => u64::MAX,
                base if sim.latency_factor == 1.0 => base,
                base => SimDuration::from_micros(base).mul_f64(sim.latency_factor).as_micros(),
            };
            if w == 0 {
                // A zero-latency cross-domain link means no safe window.
                sim.unshard();
                while sim.step_bounded(bound) {}
                return;
            }
            let mut t_min: Option<u64> = None;
            for dom in &mut par.domains {
                if let Some((at, _, _)) = peek_next(&dom.queue, &mut dom.wheel) {
                    t_min = Some(t_min.map_or(at, |t| t.min(at)));
                }
            }
            let Some(t) = t_min else { break };
            if t > bound {
                break;
            }
            // `bound + 1` because the window is half-open while `bound` is
            // inclusive (run events with `at <= bound`).
            let window_end = t.saturating_add(w).min(bound.saturating_add(1));
            let seq_base = sim.seq;
            sim.run_window(window_end, seq_base);
            sim.commit_window(seq_base);
        }
    }

    /// Executes one window `[t, window_end)` across all domains, in
    /// parallel when enough work is pending. Domains are contiguous node
    /// blocks, so `split_at_mut` hands each worker disjoint `&mut` slices
    /// of protocol state and per-node RNGs without any locking.
    fn run_window(&mut self, window_end: u64, seq_base: u64) {
        let mut par = self.par.take().expect("window requires live shards");
        let env = WindowEnv {
            topo: &self.topo,
            down: &self.down,
            partitions: self.partitions.as_deref(),
            latency_factor: self.latency_factor,
            window_end,
            seq_base,
        };
        let pending: usize = par.domains.iter().map(Domain::pending).sum();
        // One window job per domain: its shard plus disjoint `&mut`
        // slices of protocol state and per-node RNGs.
        type Job<'a, P> =
            (&'a mut Domain<<P as Protocol>::Msg>, &'a mut [P], &'a mut [ChaCha8Rng]);
        let mut jobs: Vec<Job<'_, P>> = Vec::with_capacity(par.domains.len());
        let mut nodes_rest: &mut [P] = &mut self.nodes;
        let mut rngs_rest: &mut [ChaCha8Rng] = &mut self.node_rngs;
        for dom in &mut par.domains {
            let take = dom.end - dom.base;
            let (n, nr) = nodes_rest.split_at_mut(take);
            let (r, rr) = rngs_rest.split_at_mut(take);
            nodes_rest = nr;
            rngs_rest = rr;
            jobs.push((dom, n, r));
        }
        if pending < PARALLEL_SPAWN_THRESHOLD {
            // Tiny windows aren't worth thread wake-ups. Domains are
            // independent within a window, so inline execution produces
            // byte-identical results.
            for (dom, nodes, rngs) in jobs {
                run_domain_window(dom, nodes, rngs, &env);
            }
        } else {
            std::thread::scope(|s| {
                let mut jobs = jobs.into_iter();
                let first = jobs.next();
                for (dom, nodes, rngs) in jobs {
                    let env = &env;
                    s.spawn(move || run_domain_window(dom, nodes, rngs, env));
                }
                // The driver thread works the first domain instead of
                // idling at the join.
                if let Some((dom, nodes, rngs)) = first {
                    run_domain_window(dom, nodes, rngs, &env);
                }
            });
        }
        self.par = Some(par);
    }
}

/// One domain's event loop for one window: run every local event with
/// `at < window_end` in `(at, seq)` order, recording emissions for the
/// barrier replay instead of touching global state.
fn run_domain_window<P: Protocol>(
    dom: &mut Domain<P::Msg>,
    nodes: &mut [P],
    rngs: &mut [ChaCha8Rng],
    env: &WindowEnv<'_>,
) {
    loop {
        let Some((at, _seq, take_timer)) = peek_next(&dom.queue, &mut dom.wheel) else {
            return;
        };
        if at >= env.window_end {
            return;
        }
        if take_timer {
            let entry = dom.wheel.pop_earliest().expect("peeked");
            dom.events_processed += 1;
            if !env.down[entry.node] {
                dispatch_window(dom, nodes, rngs, env, (entry.at, entry.seq), NodeId(entry.node), |p, ctx| {
                    p.on_timer(ctx, entry.tag)
                });
            }
        } else {
            let Reverse((at_us, seq, slot)) = dom.queue.pop().expect("peeked");
            let body = dom.slab[slot as usize]
                .take()
                .expect("queued key points at a parked body");
            dom.free.push(slot);
            // Mirrors the sequential loop: timers armed by this handler
            // must be placeable relative to the new local time.
            dom.wheel.advance(at_us);
            dom.events_processed += 1;
            if env.down[body.to.0] {
                // Delivery-time drops are pure counters, so they can live
                // in the domain accumulator and merge at the barrier.
                dom.stats.record_drop(DropCause::NodeDown);
            } else {
                let (to, from) = (body.to, body.from);
                match body.msg {
                    Payload::One(msg) => {
                        dispatch_window(dom, nodes, rngs, env, (at_us, seq), to, |p, ctx| {
                            p.on_message(ctx, from, msg)
                        });
                    }
                    Payload::Shared(arc) => match Arc::try_unwrap(arc) {
                        Ok(msg) => {
                            dispatch_window(dom, nodes, rngs, env, (at_us, seq), to, |p, ctx| {
                                p.on_message(ctx, from, msg)
                            });
                        }
                        Err(arc) => {
                            dispatch_window(dom, nodes, rngs, env, (at_us, seq), to, |p, ctx| {
                                p.on_message_ref(ctx, from, &arc)
                            });
                        }
                    },
                }
            }
        }
    }
}

/// Runs one handler inside a window and logs its emissions. Intra-window
/// intra-domain effects execute immediately under provisional seqs
/// (`seq_base + k`, `k` counting only executed emissions in this domain);
/// everything else parks for the barrier. The provisional numbering
/// preserves the domain-local relative order the sequential engine would
/// produce, and the barrier replay rewrites it into the real global order.
fn dispatch_window<P: Protocol>(
    dom: &mut Domain<P::Msg>,
    nodes: &mut [P],
    rngs: &mut [ChaCha8Rng],
    env: &WindowEnv<'_>,
    key: (u64, u64),
    node: NodeId,
    f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
) {
    let mut actions = std::mem::take(&mut dom.actions);
    debug_assert!(actions.is_empty());
    {
        let mut ctx = Context {
            now: SimTime::ZERO + SimDuration::from_micros(key.0),
            node,
            actions: &mut actions,
            rng: &mut rngs[node.0 - dom.base],
        };
        f(&mut nodes[node.0 - dom.base], &mut ctx);
    }
    let emi = dom.emissions.len() as u32;
    for action in actions.drain(..) {
        match action {
            Action::Send { to, msg } => {
                let (wire, class) = (msg.wire_size(), msg.class());
                let disp = window_disp(dom, env, node, to, key.0, Payload::One(msg));
                dom.emissions.push(Emission::Send { to, wire, class, disp });
            }
            Action::Multicast { to, msg } => {
                let (wire, class) = (msg.wire_size(), msg.class());
                let mut disps = Vec::with_capacity(to.len());
                for &t in &to {
                    disps.push(window_disp(
                        dom,
                        env,
                        node,
                        t,
                        key.0,
                        Payload::Shared(Arc::clone(&msg)),
                    ));
                }
                dom.emissions.push(Emission::Multicast { to, wire, class, disps });
            }
            Action::Timer { delay, tag } => {
                let at = (SimTime::ZERO + SimDuration::from_micros(key.0) + delay).as_micros();
                let executed = at < env.window_end;
                if executed {
                    let seq = env.seq_base + dom.provisional;
                    dom.provisional += 1;
                    dom.wheel.insert(TimerEntry { at, seq, node: node.0, tag });
                }
                dom.emissions.push(Emission::Timer { at, tag, executed });
            }
            Action::Count { name, n } => dom.stats.record_event(name, n),
        }
    }
    dom.actions = actions;
    let emi_len = dom.emissions.len() as u32 - emi;
    if emi_len > 0 {
        dom.records.push(DispatchRecord {
            at: key.0,
            seq: key.1,
            node: node.0 as u32,
            emi,
            emi_len,
        });
    }
}

/// The window-local delivery decision, mirroring `route_unaccounted` minus
/// the random-drop coins (a parallel epoch is only entered when those are
/// inactive, so no engine RNG is consumed here — exactly as the sequential
/// engine would behave).
fn window_disp<M>(
    dom: &mut Domain<M>,
    env: &WindowEnv<'_>,
    from: NodeId,
    to: NodeId,
    now_us: u64,
    msg: Payload<M>,
) -> Disp<M> {
    if let Some(groups) = env.partitions {
        if groups[from.0] != groups[to.0] {
            return Disp::Dropped(DropCause::Partition);
        }
    }
    let Some(latency) = env.topo.dist(from, to) else {
        return Disp::Dropped(DropCause::Unreachable);
    };
    let latency =
        if env.latency_factor == 1.0 { latency } else { latency.mul_f64(env.latency_factor) };
    let at = (SimTime::ZERO + SimDuration::from_micros(now_us) + latency).as_micros();
    let intra = dom.base <= to.0 && to.0 < dom.end;
    if intra && at < env.window_end {
        let seq = env.seq_base + dom.provisional;
        dom.provisional += 1;
        dom.push_with_seq(at, seq, DeliveryBody { from, to, msg });
        Disp::Executed
    } else {
        // The lookahead guarantee: a cross-domain delivery can never land
        // inside the window that produced it.
        debug_assert!(
            intra || at >= env.window_end,
            "cross-domain send inside its own window violates lookahead"
        );
        Disp::Parked { at, body: Some(msg) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Toy protocol: floods a counter token around the ring `rounds` times.
    #[derive(Debug)]
    struct RingToken {
        id: usize,
        n: usize,
        rounds_left: u32,
        seen: u32,
    }

    #[derive(Debug, Clone)]
    struct Token(u32);

    impl Message for Token {
        fn wire_size(&self) -> usize {
            16
        }
        fn class(&self) -> &'static str {
            "token"
        }
    }

    impl Protocol for RingToken {
        type Msg = Token;

        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            if self.id == 0 {
                ctx.send(NodeId(1 % self.n), Token(self.rounds_left));
            }
        }

        fn on_message(&mut self, ctx: &mut Context<'_, Token>, _from: NodeId, msg: Token) {
            self.seen += 1;
            let next = NodeId((self.id + 1) % self.n);
            if self.id == 0 {
                if msg.0 > 1 {
                    ctx.send(next, Token(msg.0 - 1));
                }
            } else {
                ctx.send(next, msg);
            }
        }
    }

    fn ring_sim(n: usize, rounds: u32, seed: u64) -> Simulator<RingToken> {
        let topo = crate::topology::Topology::ring(n, SimDuration::from_millis(10));
        let nodes = (0..n)
            .map(|id| RingToken { id, n, rounds_left: rounds, seen: 0 })
            .collect();
        Simulator::new(topo, nodes, seed)
    }

    #[test]
    fn token_circulates_and_time_advances() {
        let mut sim = ring_sim(5, 3, 1);
        sim.start();
        sim.run_to_quiescence(10_000);
        // 3 full rounds of 5 hops = 15 deliveries, 10 ms each.
        assert_eq!(sim.now().as_millis(), 150);
        for i in 0..5 {
            assert_eq!(sim.node(NodeId(i)).seen, 3, "node {i}");
        }
        assert_eq!(sim.stats().class("token").messages, 15);
        assert_eq!(sim.stats().total_bytes(), 15 * 16);
    }

    #[test]
    fn determinism_across_runs() {
        let run = |seed| {
            let mut sim = ring_sim(7, 4, seed);
            sim.start();
            sim.run_to_quiescence(10_000);
            (sim.now(), sim.stats().total_messages(), sim.events_processed())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn down_node_breaks_the_ring() {
        let mut sim = ring_sim(5, 3, 1);
        sim.set_down(NodeId(3), true);
        sim.start();
        sim.run_to_quiescence(10_000);
        // Token dies at node 3: nodes 1..=2 saw it once, 4 never.
        assert_eq!(sim.node(NodeId(1)).seen, 1);
        assert_eq!(sim.node(NodeId(2)).seen, 1);
        assert_eq!(sim.node(NodeId(4)).seen, 0);
        assert_eq!(sim.stats().dropped_messages(), 1);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::NodeDown), 1);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::Random), 0);
    }

    #[test]
    fn drops_are_attributed_to_their_cause() {
        let mut sim = ring_sim(4, 1, 1);
        sim.set_partitions(Some(vec![0, 1, 1, 1]));
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::Partition), 1);

        let mut sim = ring_sim(4, 1, 1);
        sim.set_drop_prob(1.0);
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::Random), 1);
    }

    #[test]
    fn crash_preserves_state_and_recover_restarts() {
        let mut sim = ring_sim(5, 3, 1);
        sim.start();
        // Let the token pass node 2 once, then crash it.
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(25));
        assert_eq!(sim.node(NodeId(2)).seen, 1);
        sim.crash_node(NodeId(2));
        assert!(sim.is_down(NodeId(2)));
        sim.run_for(SimDuration::from_millis(50));
        // The ring is severed at node 2; its state survived the crash.
        assert_eq!(sim.node(NodeId(2)).seen, 1);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::NodeDown), 1);
        sim.recover_node(NodeId(2));
        assert!(!sim.is_down(NodeId(2)));
        assert_eq!(sim.node(NodeId(2)).seen, 1, "state preserved across recovery");
    }

    #[test]
    fn recover_node_reruns_on_start() {
        // RingToken's node 0 emits the token from on_start, so recovering
        // node 0 restarts the whole circulation.
        let mut sim = ring_sim(3, 1, 1);
        sim.start();
        sim.run_to_quiescence(10_000);
        let seen_before = sim.node(NodeId(1)).seen;
        sim.crash_node(NodeId(0));
        sim.recover_node(NodeId(0));
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.node(NodeId(1)).seen, seen_before + 1);
    }

    #[test]
    fn recover_node_wiped_replaces_state() {
        let mut sim = ring_sim(5, 3, 1);
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.node(NodeId(2)).seen, 3);
        sim.crash_node(NodeId(2));
        sim.recover_node_wiped(NodeId(2), RingToken { id: 2, n: 5, rounds_left: 0, seen: 0 });
        assert_eq!(sim.node(NodeId(2)).seen, 0, "wiped recovery loses state");
        assert!(!sim.is_down(NodeId(2)));
    }

    #[test]
    fn latency_factor_stretches_links() {
        let mut sim = ring_sim(5, 1, 1);
        sim.set_latency_factor(3.0);
        sim.start();
        sim.run_to_quiescence(10_000);
        // One round of 5 hops at 10 ms × 3.
        assert_eq!(sim.now().as_millis(), 150);
        sim.set_latency_factor(1.0);
        assert!((sim.latency_factor() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn partitions_block_delivery() {
        let mut sim = ring_sim(4, 1, 1);
        // Node 0,1 in group 0; nodes 2,3 in group 1.
        sim.set_partitions(Some(vec![0, 0, 1, 1]));
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.node(NodeId(1)).seen, 1);
        assert_eq!(sim.node(NodeId(2)).seen, 0);
    }

    #[test]
    fn link_drop_kills_one_link_only() {
        // Flap the 1→2 link closed; the token dies there and the drop is
        // attributed to LinkFlap, not Random.
        let mut sim = ring_sim(4, 1, 1);
        sim.set_link_drop(NodeId(1), NodeId(2), 1.0);
        sim.start();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.node(NodeId(1)).seen, 1);
        assert_eq!(sim.node(NodeId(2)).seen, 0);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::LinkFlap), 1);
        assert_eq!(sim.stats().dropped_by_cause(DropCause::Random), 0);
        // Restoring the link clears the override in both directions.
        sim.set_link_drop(NodeId(2), NodeId(1), 0.0);
        assert_eq!(sim.link_drop(NodeId(1), NodeId(2)), 0.0);
    }

    #[test]
    fn full_drop_probability_kills_everything() {
        let mut sim = ring_sim(4, 2, 9);
        sim.set_drop_prob(1.0);
        sim.start();
        sim.run_to_quiescence(10_000);
        for i in 1..4 {
            assert_eq!(sim.node(NodeId(i)).seen, 0);
        }
    }

    #[test]
    fn run_until_respects_bound() {
        let mut sim = ring_sim(5, 3, 1);
        sim.start();
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(35));
        // 10ms per hop: 3 deliveries fit in 35 ms.
        let total: u32 = (0..5).map(|i| sim.node(NodeId(i)).seen).sum();
        assert_eq!(total, 3);
        assert_eq!(sim.now().as_millis(), 35);
        assert!(sim.pending_events() > 0);
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Debug, Default)]
        struct T {
            fired: Vec<u64>,
        }
        #[derive(Debug, Clone)]
        struct Never;
        impl Message for Never {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl Protocol for T {
            type Msg = Never;
            fn on_start(&mut self, ctx: &mut Context<'_, Never>) {
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_message(&mut self, _: &mut Context<'_, Never>, _: NodeId, _: Never) {}
            fn on_timer(&mut self, _: &mut Context<'_, Never>, tag: u64) {
                self.fired.push(tag);
            }
        }
        let topo = crate::topology::Topology::builder(1).build();
        let mut sim = Simulator::new(topo, vec![T::default()], 0);
        sim.start();
        sim.run_to_quiescence(100);
        assert_eq!(sim.node(NodeId(0)).fired, vec![1, 2, 3]);
        assert_eq!(sim.now().as_millis(), 30);
    }

    #[test]
    fn far_future_timers_survive_the_wheel_horizon() {
        // A timer past the wheel's in-range horizon (~16.7 s) lands in the
        // overflow heap and still fires in order with near-term timers.
        #[derive(Debug, Default)]
        struct T {
            fired: Vec<(u64, u64)>,
        }
        #[derive(Debug, Clone)]
        struct Never;
        impl Message for Never {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl Protocol for T {
            type Msg = Never;
            fn on_start(&mut self, ctx: &mut Context<'_, Never>) {
                ctx.set_timer(SimDuration::from_secs(60), 60);
                ctx.set_timer(SimDuration::from_millis(1), 1);
                ctx.set_timer(SimDuration::from_secs(20), 20);
            }
            fn on_message(&mut self, _: &mut Context<'_, Never>, _: NodeId, _: Never) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Never>, tag: u64) {
                self.fired.push((ctx.now().as_micros(), tag));
            }
        }
        let topo = crate::topology::Topology::builder(1).build();
        let mut sim = Simulator::new(topo, vec![T::default()], 0);
        sim.start();
        sim.run_to_quiescence(100);
        assert_eq!(
            sim.node(NodeId(0)).fired,
            vec![(1_000, 1), (20_000_000, 20), (60_000_000, 60)]
        );
    }

    #[test]
    fn with_node_ctx_sends_through_network() {
        let mut sim = ring_sim(3, 1, 5);
        // Drive node 2 externally instead of via on_start.
        sim.with_node_ctx(NodeId(2), |_, ctx| ctx.send(NodeId(0), Token(1)));
        sim.run_to_quiescence(100);
        assert_eq!(sim.node(NodeId(0)).seen, 1);
    }

    #[test]
    fn broadcast_matches_send_loop_exactly() {
        // Two identical sims, one protocol using a send loop, the other
        // ctx.broadcast: stats, drop attribution, engine RNG consumption,
        // and delivery order must be indistinguishable.
        #[derive(Debug)]
        struct Fan {
            id: usize,
            use_broadcast: bool,
            got: Vec<(u64, usize, u32)>,
        }
        #[derive(Debug, Clone)]
        struct Blob(u32, Vec<u8>);
        impl Message for Blob {
            fn wire_size(&self) -> usize {
                32 + self.1.len()
            }
        }
        impl Protocol for Fan {
            type Msg = Blob;
            fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
                if self.id == 0 {
                    let msg = Blob(7, vec![0xAB; 256]);
                    if self.use_broadcast {
                        ctx.broadcast((1..5).map(NodeId), msg);
                    } else {
                        for i in 1..5 {
                            ctx.send(NodeId(i), msg.clone());
                        }
                    }
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Blob>, from: NodeId, msg: Blob) {
                self.got.push((ctx.now().as_micros(), from.0, msg.0));
                if self.id == 2 {
                    // Reply so the broadcast run also exercises unicast after
                    // shared deliveries.
                    ctx.send(NodeId(0), Blob(msg.0 + 1, Vec::new()));
                }
            }
        }
        let run = |use_broadcast: bool| {
            let topo = crate::topology::Topology::full_mesh(5, SimDuration::from_millis(10));
            let nodes =
                (0..5).map(|id| Fan { id, use_broadcast, got: Vec::new() }).collect();
            let mut sim = Simulator::new(topo, nodes, 77);
            sim.set_drop_prob(0.3);
            sim.start();
            sim.run_to_quiescence(1_000);
            let got: Vec<_> = (0..5).map(|i| sim.node(NodeId(i)).got.clone()).collect();
            (
                got,
                sim.stats().total_messages(),
                sim.stats().total_bytes(),
                sim.stats().dropped_by_cause(DropCause::Random),
                sim.events_processed(),
                sim.now(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn shared_payload_dispatches_via_on_message_ref() {
        // A protocol overriding on_message_ref sees borrowed deliveries for
        // all but the last recipient of a broadcast (which owns the Arc).
        #[derive(Debug, Default)]
        struct RefCounter {
            owned: u32,
            borrowed: u32,
        }
        #[derive(Debug, Clone)]
        struct Big(#[allow(dead_code)] Vec<u8>);
        impl Message for Big {
            fn wire_size(&self) -> usize {
                self.0.len()
            }
        }
        impl Protocol for RefCounter {
            type Msg = Big;
            fn on_start(&mut self, ctx: &mut Context<'_, Big>) {
                if ctx.node() == NodeId(0) {
                    ctx.broadcast((1..4).map(NodeId), Big(vec![1; 1024]));
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Big>, _: NodeId, _: Big) {
                self.owned += 1;
            }
            fn on_message_ref(&mut self, _: &mut Context<'_, Big>, _: NodeId, _: &Big) {
                self.borrowed += 1;
            }
        }
        let topo = crate::topology::Topology::full_mesh(4, SimDuration::from_millis(10));
        let mut sim = Simulator::new(topo, (0..4).map(|_| RefCounter::default()).collect(), 0);
        sim.start();
        sim.run_to_quiescence(100);
        let (owned, borrowed) = sim
            .nodes()
            .fold((0, 0), |(o, b), n| (o + n.owned, b + n.borrowed));
        assert_eq!(owned + borrowed, 3);
        assert_eq!(owned, 1, "exactly the final delivery owns the payload");
        assert_eq!(borrowed, 2);
    }

    #[test]
    fn broadcast_through_with_inner_wraps_once() {
        // An embedded protocol broadcasting through with_inner keeps the
        // multicast shape (one wrapped Arc payload, n recipients).
        #[derive(Debug, Default)]
        struct Outer {
            inner_got: u32,
        }
        #[derive(Debug, Clone)]
        struct Inner(u32);
        #[derive(Debug, Clone)]
        struct Env(Inner);
        impl Message for Env {
            fn wire_size(&self) -> usize {
                8
            }
        }
        impl Protocol for Outer {
            type Msg = Env;
            fn on_start(&mut self, ctx: &mut Context<'_, Env>) {
                if ctx.node() == NodeId(0) {
                    ctx.with_inner(Env, |inner: &mut Context<'_, Inner>| {
                        inner.broadcast((1..3).map(NodeId), Inner(41));
                    });
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Env>, _: NodeId, msg: Env) {
                assert_eq!(msg.0 .0, 41);
                self.inner_got += 1;
            }
        }
        let topo = crate::topology::Topology::full_mesh(3, SimDuration::from_millis(5));
        let mut sim = Simulator::new(topo, vec![Outer::default(), Outer::default(), Outer::default()], 3);
        sim.start();
        sim.run_to_quiescence(100);
        let total: u32 = sim.nodes().map(|n| n.inner_got).sum();
        assert_eq!(total, 2);
    }

    #[test]
    #[should_panic(expected = "without quiescing")]
    fn runaway_guard_trips() {
        // Protocol that ping-pongs forever.
        #[derive(Debug)]
        struct Pong;
        #[derive(Debug, Clone)]
        struct Ping;
        impl Message for Ping {
            fn wire_size(&self) -> usize {
                1
            }
        }
        impl Protocol for Pong {
            type Msg = Ping;
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                if ctx.node() == NodeId(0) {
                    ctx.send(NodeId(1), Ping);
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, _: Ping) {
                ctx.send(from, Ping);
            }
        }
        let topo = crate::topology::Topology::full_mesh(2, SimDuration::from_millis(1));
        let mut sim = Simulator::new(topo, vec![Pong, Pong], 0);
        sim.start();
        sim.run_to_quiescence(50);
    }

    /// Not a correctness test: times the engine on the perf-report grid
    /// workload shape (timer-heavy, lockstep cohorts) for hot-path tuning.
    /// Run with `cargo test -p oceanstore-sim --release
    /// engine_grid_throughput -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn engine_grid_throughput() {
        const PERIODS_MS: [u64; 4] = [5, 11, 17, 29];
        #[derive(Debug)]
        struct Ticker {
            id: usize,
            fires: u64,
            horizon: SimTime,
        }
        #[derive(Debug, Clone)]
        struct Blob(Vec<u8>);
        impl Message for Blob {
            fn wire_size(&self) -> usize {
                self.0.len()
            }
            fn class(&self) -> &'static str {
                "tick"
            }
        }
        impl Protocol for Ticker {
            type Msg = Blob;
            fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
                for p in PERIODS_MS {
                    ctx.set_timer(SimDuration::from_millis(p), p);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Blob>, _: NodeId, _: Blob) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Blob>, tag: u64) {
                self.fires += 1;
                let to = NodeId((self.id + 1 + (self.fires % 3) as usize) % 256);
                ctx.send(to, Blob(vec![0x5A; 16]));
                if ctx.now() + SimDuration::from_millis(tag) <= self.horizon {
                    ctx.set_timer(SimDuration::from_millis(tag), tag);
                }
            }
        }
        let horizon = SimTime::ZERO + SimDuration::from_millis(400);
        for round in 0..3 {
            let nodes: Vec<Ticker> =
                (0..256).map(|id| Ticker { id, fires: 0, horizon }).collect();
            let topo = crate::topology::Topology::grid(16, 16, SimDuration::from_millis(1));
            let mut sim = Simulator::new(topo, nodes, 7);
            sim.start();
            let t = std::time::Instant::now();
            sim.run_until(horizon);
            let dt = t.elapsed().as_secs_f64();
            println!(
                "round {round}: {} events in {:.1} ms = {:.2} M events/s",
                sim.events_processed(),
                dt * 1e3,
                sim.events_processed() as f64 / dt / 1e6
            );
        }
    }

    /// Gossip workload for the parallel-scheduler tests: timers, unicast,
    /// multicast, per-node RNG draws, and counters, with fan-out that
    /// straddles domain boundaries on a ring.
    #[derive(Debug)]
    struct Gossip {
        id: usize,
        n: usize,
        rounds_left: u32,
        heard: u64,
        rng_sum: u64,
    }

    #[derive(Debug, Clone)]
    struct Rumor(u32);

    impl Message for Rumor {
        fn wire_size(&self) -> usize {
            24
        }
        fn class(&self) -> &'static str {
            "rumor"
        }
    }

    impl Protocol for Gossip {
        type Msg = Rumor;

        fn on_start(&mut self, ctx: &mut Context<'_, Rumor>) {
            ctx.set_timer(SimDuration::from_millis(1 + (self.id % 7) as u64), 0);
        }

        fn on_message(&mut self, ctx: &mut Context<'_, Rumor>, _from: NodeId, msg: Rumor) {
            self.heard += 1;
            self.rng_sum = self.rng_sum.wrapping_add(ctx.rng().gen::<u64>());
            if msg.0 > 0 && self.heard.is_multiple_of(3) {
                ctx.send(NodeId((self.id + 1) % self.n), Rumor(msg.0 - 1));
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, Rumor>, _tag: u64) {
            if self.rounds_left == 0 {
                return;
            }
            self.rounds_left -= 1;
            ctx.count("gossip_round");
            let targets: Vec<NodeId> = (1..=3).map(|k| NodeId((self.id + k) % self.n)).collect();
            ctx.broadcast(targets, Rumor(2));
            ctx.set_timer(SimDuration::from_millis(5 + (self.id % 3) as u64), 0);
        }
    }

    fn gossip_sim(n: usize, seed: u64) -> Simulator<Gossip> {
        let topo = crate::topology::Topology::ring(n, SimDuration::from_millis(10));
        let nodes = (0..n)
            .map(|id| Gossip { id, n, rounds_left: 8, heard: 0, rng_sum: 0 })
            .collect();
        Simulator::new(topo, nodes, seed)
    }

    /// Everything observable: clock, event count, network totals, drops,
    /// classes, counters, per-node traffic, and per-node protocol state.
    fn gossip_fingerprint(sim: &Simulator<Gossip>) -> String {
        use std::fmt::Write as _;
        let s = sim.stats();
        let mut out = format!(
            "now={} ev={} msgs={} bytes={} dropped={}",
            sim.now().as_micros(),
            sim.events_processed(),
            s.total_messages(),
            s.total_bytes(),
            s.dropped_messages(),
        );
        for (cause, n) in s.drops_by_cause() {
            let _ = write!(out, " drop[{cause:?}]={n}");
        }
        for (class, c) in s.classes() {
            let _ = write!(out, " {class}={}/{}", c.messages, c.bytes);
        }
        for (event, n) in s.events() {
            let _ = write!(out, " ev[{event}]={n}");
        }
        for (i, g) in sim.nodes().enumerate() {
            let _ = write!(
                out,
                " n{i}=[{}/{}/{}/{}/{}]",
                g.heard,
                g.rng_sum,
                g.rounds_left,
                s.sent_by(NodeId(i)),
                s.received_by(NodeId(i)),
            );
        }
        out
    }

    #[test]
    fn parallel_gossip_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut sim = gossip_sim(24, 42);
            sim.set_threads(threads);
            sim.start();
            sim.run_for(SimDuration::from_millis(500));
            gossip_fingerprint(&sim)
        };
        let sequential = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), sequential, "threads={threads} diverged");
        }
    }

    #[test]
    fn parallel_ring_token_matches_sequential() {
        let run = |threads: usize| {
            let mut sim = ring_sim(10, 5, 7);
            sim.set_threads(threads);
            sim.start();
            sim.run_for(SimDuration::from_secs(10));
            let seen: Vec<u32> = sim.nodes().map(|n| n.seen).collect();
            (sim.now(), sim.events_processed(), sim.stats().total_messages(), seen)
        };
        assert_eq!(run(8), run(1));
        assert_eq!(run(2), run(1));
    }

    #[test]
    fn random_drops_fall_back_to_sequential_and_resume() {
        // Random drops consume shared engine RNG, so the parallel epoch
        // must fall back mid-run and re-shard when drops end — with the
        // exact same schedule as a purely sequential run.
        let run = |threads: usize| {
            let mut sim = gossip_sim(20, 99);
            sim.set_threads(threads);
            sim.start();
            sim.run_for(SimDuration::from_millis(100));
            sim.set_drop_prob(0.25);
            sim.run_for(SimDuration::from_millis(100));
            sim.set_drop_prob(0.0);
            sim.run_for(SimDuration::from_millis(300));
            gossip_fingerprint(&sim)
        };
        assert_eq!(run(8), run(1));
    }

    #[test]
    fn chaos_controls_between_windows_match_sequential() {
        // Crashes, partitions, latency changes, injections, and direct
        // node access interleaved with parallel epochs must all replay the
        // sequential schedule exactly.
        let run = |threads: usize| {
            let mut sim = gossip_sim(20, 123);
            sim.set_threads(threads);
            sim.start();
            sim.run_for(SimDuration::from_millis(60));
            sim.crash_node(NodeId(3));
            sim.set_latency_factor(1.5);
            sim.run_for(SimDuration::from_millis(60));
            sim.inject(NodeId(0), NodeId(11), Rumor(4));
            sim.with_node_ctx(NodeId(5), |g, ctx| {
                g.heard += 100;
                ctx.send(NodeId(6), Rumor(1));
            });
            sim.recover_node(NodeId(3));
            sim.set_partitions(Some(
                (0..20).map(|i| u32::from(i >= 10)).collect::<Vec<_>>(),
            ));
            sim.run_for(SimDuration::from_millis(120));
            sim.set_partitions(None);
            sim.set_latency_factor(1.0);
            // A single sequential step mid-flight forces an unshard and a
            // later re-shard.
            sim.step();
            sim.run_for(SimDuration::from_millis(260));
            gossip_fingerprint(&sim)
        };
        let sequential = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), sequential, "threads={threads} diverged");
        }
    }

    #[test]
    fn contiguous_domains_partitions_evenly() {
        let of_node = contiguous_domains(10, 3);
        assert_eq!(of_node, [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        assert_eq!(contiguous_domains(3, 8), [0, 1, 2]);
        assert_eq!(contiguous_domains(4, 1), [0, 0, 0, 0]);
        assert!(contiguous_domains(0, 4).is_empty());
    }

    #[test]
    fn set_threads_caps_and_reports() {
        let mut sim = gossip_sim(4, 1);
        sim.set_threads(16);
        assert_eq!(sim.threads(), 4);
        assert_eq!(sim.domain_of(NodeId(0)), 0);
        assert_eq!(sim.domain_of(NodeId(3)), 3);
        sim.set_threads(1);
        assert_eq!(sim.threads(), 1);
    }
}
