//! Deterministic discrete-event network simulator — the substrate on which
//! every OceanStore protocol in this reproduction runs.
//!
//! The original paper assumed a planetary deployment of "millions of
//! servers" it did not yet have; its quantitative claims are all
//! protocol-level (bytes per update, hops per query, message phases per
//! commit). This crate substitutes a simulated wide area with:
//!
//! * [`topology`] — latency-weighted graphs (full WAN meshes, rings, grids,
//!   random geometric graphs) with shortest-path "IP routing" underneath
//!   overlay protocols;
//! * [`engine`] — an event queue driving sans-io [`Protocol`] state
//!   machines, with deterministic per-node randomness;
//! * [`stats`] — per-message byte accounting (Figure 6 of the paper is a
//!   byte-count experiment);
//! * failure injection — crashes, partitions, and random message drops.
//!
//! # Examples
//!
//! A two-node ping-pong:
//!
//! ```
//! use oceanstore_sim::{Context, Message, NodeId, Protocol, SimDuration, Simulator, Topology};
//!
//! #[derive(Clone)]
//! struct Ping;
//! impl Message for Ping {
//!     fn wire_size(&self) -> usize { 8 }
//! }
//!
//! struct Node { got: bool }
//! impl Protocol for Node {
//!     type Msg = Ping;
//!     fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
//!         if ctx.node() == NodeId(0) { ctx.send(NodeId(1), Ping); }
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_, Ping>, _from: NodeId, _msg: Ping) {
//!         self.got = true;
//!     }
//! }
//!
//! let topo = Topology::full_mesh(2, SimDuration::from_millis(100));
//! let mut sim = Simulator::new(topo, vec![Node { got: false }, Node { got: false }], 42);
//! sim.start();
//! sim.run_to_quiescence(100);
//! assert!(sim.node(NodeId(1)).got);
//! assert_eq!(sim.now().as_millis(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod engine;
pub mod stats;
pub mod time;
pub mod topology;
mod wheel;

pub use cluster::ClusterSpec;
pub use engine::{Context, Message, ParCoverage, Protocol, Simulator};
pub use stats::{ClassStats, DropCause, NetStats};
pub use time::{SimDuration, SimTime};
pub use topology::{NodeId, Topology, TopologyBuilder};
