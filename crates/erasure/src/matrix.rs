//! Dense matrices over GF(2^8) for Reed-Solomon encode/decode.

use std::fmt;

use crate::gf256;

/// A row-major matrix over GF(256).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:02x?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// All-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0; rows * cols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Vandermonde matrix: entry `(r, c) = r^c` in GF(256) where row
    /// indices enumerate distinct field elements. Any `cols` rows of it are
    /// linearly independent (for `rows <= 256`), which is the Reed-Solomon
    /// recoverability property.
    ///
    /// # Panics
    ///
    /// Panics if `rows > 256` (GF(256) has only 256 distinct elements).
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(rows <= 256, "at most 256 distinct evaluation points in GF(256)");
        let mut m = Self::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, gf256::pow(r as u8, c));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    let v = gf256::add(out.get(r, c), gf256::mul(a, rhs.get(k, c)));
                    out.set(r, c, v);
                }
            }
        }
        out
    }

    /// Builds a new matrix from a subset of this one's rows.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            for c in 0..self.cols {
                out.set(i, c, self.get(r, c));
            }
        }
        out
    }

    /// Inverse via Gauss-Jordan elimination, or `None` if singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse needs a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Scale pivot row to 1.
            let p = a.get(col, col);
            if p != 1 {
                let pinv = gf256::inv(p);
                a.scale_row(col, pinv);
                inv.scale_row(col, pinv);
            }
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r != col {
                    let f = a.get(r, col);
                    if f != 0 {
                        a.add_scaled_row(r, col, f);
                        inv.add_scaled_row(r, col, f);
                    }
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let (x, y) = (self.get(a, c), self.get(b, c));
            self.set(a, c, y);
            self.set(b, c, x);
        }
    }

    fn scale_row(&mut self, r: usize, f: u8) {
        for c in 0..self.cols {
            let v = gf256::mul(self.get(r, c), f);
            self.set(r, c, v);
        }
    }

    /// `row[dst] ^= f * row[src]`.
    fn add_scaled_row(&mut self, dst: usize, src: usize, f: u8) {
        for c in 0..self.cols {
            let v = gf256::add(self.get(dst, c), gf256::mul(f, self.get(src, c)));
            self.set(dst, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything() {
        let v = Matrix::vandermonde(4, 4);
        assert_eq!(Matrix::identity(4).mul(&v), v);
        assert_eq!(v.mul(&Matrix::identity(4)), v);
    }

    #[test]
    fn inverse_roundtrip() {
        let v = Matrix::vandermonde(5, 5);
        let inv = v.inverse().expect("Vandermonde is invertible");
        assert_eq!(v.mul(&inv), Matrix::identity(5));
        assert_eq!(inv.mul(&v), Matrix::identity(5));
    }

    #[test]
    fn singular_detected() {
        let mut m = Matrix::zero(3, 3);
        // Row 2 = row 0 + row 1 (XOR), hence singular.
        m.set(0, 0, 1);
        m.set(0, 1, 2);
        m.set(0, 2, 3);
        m.set(1, 0, 4);
        m.set(1, 1, 5);
        m.set(1, 2, 6);
        for c in 0..3 {
            m.set(2, c, m.get(0, c) ^ m.get(1, c));
        }
        assert!(m.inverse().is_none());
    }

    #[test]
    fn any_k_rows_of_vandermonde_invertible() {
        // The Reed-Solomon property: every k-subset of rows is invertible.
        let v = Matrix::vandermonde(8, 4);
        // Exhaustively test all C(8,4)=70 subsets.
        let rows: Vec<usize> = (0..8).collect();
        let mut count = 0;
        for a in 0..8 {
            for b in (a + 1)..8 {
                for c in (b + 1)..8 {
                    for d in (c + 1)..8 {
                        let sub = v.select_rows(&[rows[a], rows[b], rows[c], rows[d]]);
                        assert!(sub.inverse().is_some(), "rows {a},{b},{c},{d}");
                        count += 1;
                    }
                }
            }
        }
        assert_eq!(count, 70);
    }

    #[test]
    fn select_rows_picks_rows() {
        let v = Matrix::vandermonde(4, 3);
        let s = v.select_rows(&[2, 0]);
        assert_eq!(s.row(0), v.row(2));
        assert_eq!(s.row(1), v.row(0));
    }
}
