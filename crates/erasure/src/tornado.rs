//! Tornado-style erasure code (§4.5, "Tornado codes \[32\]").
//!
//! The paper's footnote 12 captures the trade-off that matters: "Tornado
//! codes, which are faster to encode and decode, require slightly more than
//! n fragments to reconstruct the information." We reproduce that trade-off
//! with an irregular-degree XOR code decoded by *peeling*, in the style of
//! the Luby-et-al. constructions the paper cites: each check fragment is
//! the XOR of a pseudo-random subset of data fragments, with degrees drawn
//! from a robust-soliton distribution; decoding repeatedly resolves any
//! check with exactly one unknown neighbour.
//!
//! Compared to [`crate::rs::ReedSolomon`]:
//!
//! * encode/decode cost is XOR-only — no field multiplications;
//! * decoding needs `(1 + ε)k` fragments rather than exactly `k`, and can
//!   stall on unlucky subsets (reported as [`CodeError::DecodingStalled`]).

use crate::rs::CodeError;

/// Deterministic 64-bit mixer (splitmix64) used to derive check-fragment
/// neighbourhoods; keeping it local avoids an RNG dependency and guarantees
/// the code layout is a pure function of `(k, n, seed)`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A `(k, n)` Tornado-style codec: `k` data fragments, `n - k` XOR check
/// fragments.
#[derive(Debug, Clone)]
pub struct Tornado {
    k: usize,
    n: usize,
    /// Data-fragment neighbours of each check fragment.
    checks: Vec<Vec<usize>>,
}

impl Tornado {
    /// Creates a codec whose check-fragment graph is derived from `seed`.
    ///
    /// # Errors
    ///
    /// Rejects `k == 0` and `n <= k`.
    pub fn new(k: usize, n: usize, seed: u64) -> Result<Self, CodeError> {
        if k == 0 {
            return Err(CodeError::InvalidParams { k, n, reason: "k must be positive" });
        }
        if n <= k {
            return Err(CodeError::InvalidParams { k, n, reason: "n must exceed k" });
        }
        // Degree structure: a mix of soliton-style sparse checks (cheap,
        // peelable) and denser checks that keep the residual GF(2) system
        // close to full rank so decoding needs only slightly more than k
        // fragments. Every fourth check is sparse; the rest include each
        // data fragment independently with probability ~2·ln(k)/k.
        let cdf = robust_soliton_cdf(k);
        let p_dense = (2.0 * (k as f64).ln() / k as f64).clamp(1.0 / k as f64, 0.5);
        let p_bits = (p_dense * (1u64 << 32) as f64) as u64;
        let mut checks = Vec::with_capacity(n - k);
        for c in 0..(n - k) {
            let mut st = seed ^ (c as u64).wrapping_mul(0xA24B_AED4_963E_E407);
            let mut chosen: Vec<usize>;
            if c % 4 == 0 {
                // Sparse soliton check.
                let u = (splitmix64(&mut st) >> 11) as f64 / (1u64 << 53) as f64;
                let degree = (cdf.partition_point(|&p| p < u) + 1).clamp(1, k);
                // Sample `degree` distinct data indices (Floyd's algorithm).
                chosen = Vec::with_capacity(degree);
                for j in (k - degree)..k {
                    let t = (splitmix64(&mut st) % (j as u64 + 1)) as usize;
                    if chosen.contains(&t) {
                        chosen.push(j);
                    } else {
                        chosen.push(t);
                    }
                }
                chosen.sort_unstable();
            } else {
                // Dense Bernoulli check.
                chosen = (0..k)
                    .filter(|_| splitmix64(&mut st) & 0xFFFF_FFFF < p_bits)
                    .collect();
                if chosen.is_empty() {
                    chosen.push((splitmix64(&mut st) % k as u64) as usize);
                }
            }
            checks.push(chosen);
        }
        Ok(Tornado { k, n, checks })
    }

    /// Data fragment count.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Total fragment count.
    pub fn total_shards(&self) -> usize {
        self.n
    }

    /// Encodes `k` equal-length data fragments into `n` fragments (first
    /// `k` are the data verbatim).
    ///
    /// # Errors
    ///
    /// [`CodeError::ShardSizeMismatch`] on inconsistent input.
    pub fn encode<T: AsRef<[u8]>>(&self, data: &[T]) -> Result<Vec<Vec<u8>>, CodeError> {
        if data.len() != self.k {
            return Err(CodeError::ShardSizeMismatch);
        }
        let len = data[0].as_ref().len();
        if data.iter().any(|s| s.as_ref().len() != len) {
            return Err(CodeError::ShardSizeMismatch);
        }
        let mut out: Vec<Vec<u8>> =
            data.iter().map(|s| s.as_ref().to_vec()).collect();
        for nbrs in &self.checks {
            let mut shard = vec![0u8; len];
            for &j in nbrs {
                crate::gf256::xor_slice(&mut shard, data[j].as_ref());
            }
            out.push(shard);
        }
        Ok(out)
    }

    /// Reconstructs missing fragments in place by peeling.
    ///
    /// # Errors
    ///
    /// * [`CodeError::NotEnoughShards`] — fewer than `k` fragments survive
    ///   (information-theoretically hopeless);
    /// * [`CodeError::DecodingStalled`] — enough fragments survive but the
    ///   peeling process stalled; callers should fetch more fragments and
    ///   retry (the paper's "slightly more than n" caveat).
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), CodeError> {
        if shards.len() != self.n {
            return Err(CodeError::ShardSizeMismatch);
        }
        let have = shards.iter().filter(|s| s.is_some()).count();
        if have < self.k {
            return Err(CodeError::NotEnoughShards { have, need: self.k });
        }
        let len = shards
            .iter()
            .flatten()
            .map(Vec::len)
            .next()
            .expect("at least k fragments present");
        if shards.iter().flatten().any(|s| s.len() != len) {
            return Err(CodeError::ShardSizeMismatch);
        }
        // Working copy of check equations that survive: value = check XOR
        // already-known data neighbours; unknowns = the rest.
        let mut known: Vec<Option<Vec<u8>>> =
            shards[..self.k].to_vec();
        struct Eq {
            value: Vec<u8>,
            unknowns: Vec<usize>,
        }
        let mut eqs: Vec<Eq> = Vec::new();
        for (c, nbrs) in self.checks.iter().enumerate() {
            let Some(val) = &shards[self.k + c] else { continue };
            let mut value = val.clone();
            let mut unknowns = Vec::new();
            for &j in nbrs {
                match &known[j] {
                    Some(d) => crate::gf256::xor_slice(&mut value, d),
                    None => unknowns.push(j),
                }
            }
            eqs.push(Eq { value, unknowns });
        }
        // Peel: resolve any equation with exactly one unknown.
        while let Some(pos) = eqs.iter().position(|e| e.unknowns.len() == 1) {
            let eq = eqs.swap_remove(pos);
            let j = eq.unknowns[0];
            if known[j].is_none() {
                known[j] = Some(eq.value.clone());
                for other in &mut eqs {
                    if let Some(idx) = other.unknowns.iter().position(|&u| u == j) {
                        other.unknowns.swap_remove(idx);
                        crate::gf256::xor_slice(&mut other.value, &eq.value);
                    }
                }
            }
            // Drop satisfied equations.
            eqs.retain(|e| !e.unknowns.is_empty());
        }
        // Inactivation fallback: if peeling stalled, solve the residual
        // system by Gaussian elimination over GF(2). This is what practical
        // Tornado/LT decoders do, and it recovers whenever the surviving
        // equations span the missing fragments.
        if known.iter().any(Option::is_none) && !eqs.is_empty() {
            let unknown_ids: Vec<usize> =
                (0..self.k).filter(|&j| known[j].is_none()).collect();
            let col_of: std::collections::HashMap<usize, usize> =
                unknown_ids.iter().enumerate().map(|(c, &j)| (j, c)).collect();
            let width = unknown_ids.len();
            let words = width.div_ceil(64);
            // Each row: bitmask over unknowns + RHS value.
            let mut rows: Vec<(Vec<u64>, Vec<u8>)> = eqs
                .iter()
                .map(|e| {
                    let mut mask = vec![0u64; words];
                    for &u in &e.unknowns {
                        let c = col_of[&u];
                        mask[c / 64] |= 1 << (c % 64);
                    }
                    (mask, e.value.clone())
                })
                .collect();
            let mut pivot_row_of_col: Vec<Option<usize>> = vec![None; width];
            let mut next_row = 0usize;
            for (col, pivot_slot) in pivot_row_of_col.iter_mut().enumerate() {
                let Some(r) = (next_row..rows.len()).find(|&r| {
                    rows[r].0[col / 64] >> (col % 64) & 1 == 1
                }) else {
                    continue;
                };
                rows.swap(next_row, r);
                for other in 0..rows.len() {
                    if other != next_row && rows[other].0[col / 64] >> (col % 64) & 1 == 1 {
                        let (pivot_mask, pivot_val) = rows[next_row].clone();
                        let (m, v) = &mut rows[other];
                        for (a, b) in m.iter_mut().zip(&pivot_mask) {
                            *a ^= b;
                        }
                        crate::gf256::xor_slice(v, &pivot_val);
                    }
                }
                *pivot_slot = Some(next_row);
                next_row += 1;
            }
            if pivot_row_of_col.iter().all(Option::is_some) {
                for (col, &j) in unknown_ids.iter().enumerate() {
                    let r = pivot_row_of_col[col].expect("all pivots found");
                    known[j] = Some(rows[r].1.clone());
                }
            }
        }
        if known.iter().any(Option::is_none) {
            return Err(CodeError::DecodingStalled);
        }
        // All data recovered: rebuild every missing fragment.
        for (j, d) in known.iter().enumerate() {
            if shards[j].is_none() {
                shards[j] = d.clone();
            }
        }
        for (c, nbrs) in self.checks.iter().enumerate() {
            if shards[self.k + c].is_none() {
                let mut v = vec![0u8; len];
                for &j in nbrs {
                    let d = known[j].as_ref().expect("all data known");
                    crate::gf256::xor_slice(&mut v, d);
                }
                shards[self.k + c] = Some(v);
            }
        }
        Ok(())
    }
}

/// Cumulative robust-soliton distribution over degrees `1..=k`
/// (c = 0.1, δ = 0.5), returned as a CDF vector where entry `d-1` is
/// `P(degree <= d)`.
fn robust_soliton_cdf(k: usize) -> Vec<f64> {
    let kf = k as f64;
    let c = 0.1f64;
    let delta = 0.5f64;
    let r = (c * (kf / delta).ln() * kf.sqrt()).max(1.0);
    let spike = (kf / r).round().max(1.0) as usize;
    let mut rho = vec![0.0; k];
    rho[0] = 1.0 / kf;
    for d in 2..=k {
        rho[d - 1] = 1.0 / (d as f64 * (d as f64 - 1.0));
    }
    let mut tau = vec![0.0; k];
    for d in 1..=k {
        if d < spike {
            tau[d - 1] = r / (d as f64 * kf);
        } else if d == spike {
            tau[d - 1] = r * (r / delta).ln() / kf;
        }
    }
    let total: f64 = rho.iter().sum::<f64>() + tau.iter().sum::<f64>();
    let mut cdf = Vec::with_capacity(k);
    let mut acc = 0.0;
    for d in 0..k {
        acc += (rho[d] + tau[d]) / total;
        cdf.push(acc);
    }
    cdf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| ((i * 37 + j * 11 + 3) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn encode_is_systematic_and_xor_only() {
        let t = Tornado::new(8, 16, 1).unwrap();
        let d = data(8, 32);
        let coded = t.encode(&d).unwrap();
        assert_eq!(coded.len(), 16);
        assert_eq!(&coded[..8], &d[..]);
        // Each check equals the XOR of its neighbours.
        for (c, nbrs) in t.checks.iter().enumerate() {
            let mut expect = vec![0u8; 32];
            for &j in nbrs {
                for (e, x) in expect.iter_mut().zip(&d[j]) {
                    *e ^= x;
                }
            }
            assert_eq!(coded[8 + c], expect, "check {c}");
        }
    }

    #[test]
    fn full_set_reconstructs_trivially() {
        let t = Tornado::new(4, 8, 2).unwrap();
        let d = data(4, 16);
        let coded = t.encode(&d).unwrap();
        let mut have: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        t.reconstruct(&mut have).unwrap();
        for (h, c) in have.iter().zip(&coded) {
            assert_eq!(h.as_ref().unwrap(), c);
        }
    }

    #[test]
    fn recovers_lost_data_fragments_with_overhead() {
        // Lose 4 of 16 data fragments; 28 of 32 total remain — well above
        // the (1+ε)k threshold, peeling should succeed.
        let t = Tornado::new(16, 32, 3).unwrap();
        let d = data(16, 64);
        let coded = t.encode(&d).unwrap();
        let mut have: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        for i in [0usize, 5, 9, 15] {
            have[i] = None;
        }
        t.reconstruct(&mut have).unwrap();
        for i in 0..16 {
            assert_eq!(have[i].as_ref().unwrap(), &d[i], "data fragment {i}");
        }
    }

    #[test]
    fn below_k_is_hopeless() {
        let t = Tornado::new(8, 16, 4).unwrap();
        let coded = t.encode(&data(8, 8)).unwrap();
        let mut have: Vec<Option<Vec<u8>>> = coded.into_iter().map(Some).collect();
        for slot in have.iter_mut().take(9) {
            *slot = None;
        }
        assert_eq!(
            t.reconstruct(&mut have),
            Err(CodeError::NotEnoughShards { have: 7, need: 8 })
        );
    }

    #[test]
    fn needs_slightly_more_than_k() {
        // The paper's footnote-12 property, measured: decoding from exactly
        // k random fragments usually fails, while k + 50% succeeds almost
        // always. Deterministic over 40 trials.
        let k = 16;
        let n = 48;
        let t = Tornado::new(k, n, 7).unwrap();
        let d = data(k, 16);
        let coded = t.encode(&d).unwrap();
        let mut exact_successes = 0;
        let mut padded_successes = 0;
        let mut st = 99u64;
        for _ in 0..40 {
            // Random survivor sets via splitmix-driven shuffle.
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = (splitmix64(&mut st) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            for (budget, counter) in
                [(k, &mut exact_successes), (k + k / 2, &mut padded_successes)]
            {
                let mut have: Vec<Option<Vec<u8>>> = vec![None; n];
                for &i in order.iter().take(budget) {
                    have[i] = Some(coded[i].clone());
                }
                if t.reconstruct(&mut have).is_ok() {
                    *counter += 1;
                }
            }
        }
        assert!(
            padded_successes > exact_successes,
            "overhead should help: exact={exact_successes}, padded={padded_successes}"
        );
        assert!(padded_successes >= 32, "padded={padded_successes}");
    }

    #[test]
    fn correct_whenever_decode_succeeds() {
        // Whatever the survivor subset, a successful decode must return the
        // true data — never fabricated bytes.
        let k = 8;
        let n = 24;
        let t = Tornado::new(k, n, 13).unwrap();
        let d = data(k, 12);
        let coded = t.encode(&d).unwrap();
        let mut st = 5u64;
        for _ in 0..200 {
            let mut have: Vec<Option<Vec<u8>>> = vec![None; n];
            let mut cnt = 0;
            for (i, slot) in have.iter_mut().enumerate() {
                if splitmix64(&mut st).is_multiple_of(2) {
                    *slot = Some(coded[i].clone());
                    cnt += 1;
                }
            }
            if cnt < k {
                continue;
            }
            if t.reconstruct(&mut have).is_ok() {
                for i in 0..n {
                    assert_eq!(have[i].as_ref().unwrap(), &coded[i], "fragment {i}");
                }
            }
        }
    }

    #[test]
    fn stall_is_reported_not_wrong() {
        // With only check fragments of degree >= 2 surviving, decode must
        // stall — and must say so rather than fabricate data.
        let k = 4;
        let t = Tornado::new(k, 12, 5).unwrap();
        let d = data(k, 8);
        let coded = t.encode(&d).unwrap();
        // Keep only check fragments with degree >= 2 (no data fragments).
        let mut have: Vec<Option<Vec<u8>>> = vec![None; 12];
        let mut kept = 0;
        for (c, nbrs) in t.checks.iter().enumerate() {
            if nbrs.len() >= 2 && kept < k {
                have[k + c] = Some(coded[k + c].clone());
                kept += 1;
            }
        }
        if kept == k {
            match t.reconstruct(&mut have) {
                Ok(()) => {
                    for i in 0..k {
                        assert_eq!(have[i].as_ref().unwrap(), &d[i]);
                    }
                }
                Err(e) => assert_eq!(e, CodeError::DecodingStalled),
            }
        }
    }

    #[test]
    fn layout_is_deterministic_in_seed() {
        let a = Tornado::new(8, 20, 42).unwrap();
        let b = Tornado::new(8, 20, 42).unwrap();
        let c = Tornado::new(8, 20, 43).unwrap();
        assert_eq!(a.checks, b.checks);
        assert_ne!(a.checks, c.checks);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Tornado::new(0, 4, 0).is_err());
        assert!(Tornado::new(4, 4, 0).is_err());
    }

    #[test]
    fn degrees_are_valid() {
        let t = Tornado::new(32, 96, 11).unwrap();
        for nbrs in &t.checks {
            assert!(!nbrs.is_empty() && nbrs.len() <= 32);
            // Distinct and sorted.
            for w in nbrs.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
