//! Object-level fragmentation: bytes ⇄ equal-sized shards.
//!
//! "Erasure coding is a process that treats input data as a series of
//! fragments (say n) and transforms these fragments into a greater number
//! of fragments (say 2n or 4n)" (§4.5). This module handles the framing —
//! length prefix and padding — so the codecs in [`crate::rs`] and
//! [`crate::tornado`] can work on equal-length shards, and exposes a
//! unified [`ObjectCodec`] for the archival layer.

use crate::rs::{CodeError, ReedSolomon};
use crate::tornado::Tornado;

/// Splits `data` into exactly `k` equal-length shards, prefixed with the
/// original length (8 bytes little-endian) and zero-padded.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn split_into_shards(data: &[u8], k: usize) -> Vec<Vec<u8>> {
    assert!(k > 0, "need at least one shard");
    let mut framed = Vec::with_capacity(8 + data.len());
    framed.extend_from_slice(&(data.len() as u64).to_le_bytes());
    framed.extend_from_slice(data);
    let shard_len = framed.len().div_ceil(k).max(1);
    framed.resize(shard_len * k, 0);
    framed.chunks(shard_len).map(<[u8]>::to_vec).collect()
}

/// Reassembles the original bytes from the `k` data shards produced by
/// [`split_into_shards`].
///
/// # Errors
///
/// [`CodeError::CorruptObject`] if the length prefix is inconsistent with
/// the shard sizes.
pub fn join_shards<T: AsRef<[u8]>>(shards: &[T]) -> Result<Vec<u8>, CodeError> {
    let mut framed = Vec::new();
    for s in shards {
        framed.extend_from_slice(s.as_ref());
    }
    if framed.len() < 8 {
        return Err(CodeError::CorruptObject);
    }
    let len = u64::from_le_bytes(framed[..8].try_into().expect("8 bytes")) as usize;
    if framed.len() < 8 + len {
        return Err(CodeError::CorruptObject);
    }
    framed.drain(..8);
    framed.truncate(len);
    Ok(framed)
}

/// Which erasure code an archival object uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeKind {
    /// Systematic Reed-Solomon: any `k` of `n` fragments suffice.
    ReedSolomon,
    /// Tornado-style peeling code: fast XOR, needs slightly more than `k`.
    Tornado,
}

/// A whole-object erasure codec: `encode` bytes to `n` fragments,
/// `decode` any sufficient subset back to bytes.
#[derive(Debug, Clone)]
pub enum ObjectCodec {
    /// Reed-Solomon-backed codec.
    Rs(ReedSolomon),
    /// Tornado-backed codec.
    Tornado(Tornado),
}

impl ObjectCodec {
    /// Creates a codec of the requested kind. The `seed` only matters for
    /// [`CodeKind::Tornado`] (it fixes the check graph).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation from the underlying codec.
    pub fn new(kind: CodeKind, k: usize, n: usize, seed: u64) -> Result<Self, CodeError> {
        Ok(match kind {
            CodeKind::ReedSolomon => ObjectCodec::Rs(ReedSolomon::new(k, n)?),
            CodeKind::Tornado => ObjectCodec::Tornado(Tornado::new(k, n, seed)?),
        })
    }

    /// Data fragment count `k`.
    pub fn data_shards(&self) -> usize {
        match self {
            ObjectCodec::Rs(c) => c.data_shards(),
            ObjectCodec::Tornado(c) => c.data_shards(),
        }
    }

    /// Total fragment count `n`.
    pub fn total_shards(&self) -> usize {
        match self {
            ObjectCodec::Rs(c) => c.total_shards(),
            ObjectCodec::Tornado(c) => c.total_shards(),
        }
    }

    /// Encodes an object into `n` fragments.
    ///
    /// # Errors
    ///
    /// Propagates shard-shape errors from the underlying codec (cannot
    /// occur for input produced by this function's own framing).
    pub fn encode_object(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, CodeError> {
        let shards = split_into_shards(data, self.data_shards());
        match self {
            ObjectCodec::Rs(c) => c.encode(&shards),
            ObjectCodec::Tornado(c) => c.encode(&shards),
        }
    }

    /// Decodes an object from surviving fragments (`None` = lost).
    ///
    /// # Errors
    ///
    /// * [`CodeError::NotEnoughShards`] / [`CodeError::DecodingStalled`]
    ///   when the survivors don't suffice;
    /// * [`CodeError::CorruptObject`] if framing fails after reconstruction.
    pub fn decode_object(&self, fragments: &mut [Option<Vec<u8>>]) -> Result<Vec<u8>, CodeError> {
        match self {
            ObjectCodec::Rs(c) => c.reconstruct(fragments)?,
            ObjectCodec::Tornado(c) => c.reconstruct(fragments)?,
        }
        let data: Vec<&Vec<u8>> = fragments[..self.data_shards()]
            .iter()
            .map(|f| f.as_ref().expect("reconstruct fills all fragments"))
            .collect();
        join_shards(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_join_roundtrip() {
        for len in [0usize, 1, 7, 8, 9, 100, 1000] {
            for k in [1usize, 2, 3, 16] {
                let data: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
                let shards = split_into_shards(&data, k);
                assert_eq!(shards.len(), k);
                let l0 = shards[0].len();
                assert!(shards.iter().all(|s| s.len() == l0));
                assert_eq!(join_shards(&shards).unwrap(), data, "len={len} k={k}");
            }
        }
    }

    #[test]
    fn join_rejects_truncation() {
        let shards = split_into_shards(b"hello world, this is an object", 4);
        assert_eq!(join_shards(&shards[..1]), Err(CodeError::CorruptObject));
    }

    #[test]
    fn join_rejects_bad_length_prefix() {
        let mut shards = split_into_shards(b"abc", 1);
        shards[0][0] = 0xff; // claim a huge length
        assert_eq!(join_shards(&shards), Err(CodeError::CorruptObject));
    }

    #[test]
    fn rs_object_roundtrip_with_losses() {
        let codec = ObjectCodec::new(CodeKind::ReedSolomon, 8, 16, 0).unwrap();
        let data: Vec<u8> = (0..5000u32).map(|i| (i * 13 % 256) as u8).collect();
        let frags = codec.encode_object(&data).unwrap();
        assert_eq!(frags.len(), 16);
        let mut have: Vec<Option<Vec<u8>>> = frags.into_iter().map(Some).collect();
        // Lose any 8 (here: every even index).
        for i in (0..16).step_by(2) {
            have[i] = None;
        }
        assert_eq!(codec.decode_object(&mut have).unwrap(), data);
    }

    #[test]
    fn tornado_object_roundtrip() {
        let codec = ObjectCodec::new(CodeKind::Tornado, 8, 24, 9).unwrap();
        let data = vec![0xabu8; 3000];
        let frags = codec.encode_object(&data).unwrap();
        let mut have: Vec<Option<Vec<u8>>> = frags.into_iter().map(Some).collect();
        have[1] = None;
        have[6] = None;
        assert_eq!(codec.decode_object(&mut have).unwrap(), data);
    }

    #[test]
    fn empty_object_roundtrip() {
        let codec = ObjectCodec::new(CodeKind::ReedSolomon, 4, 8, 0).unwrap();
        let frags = codec.encode_object(b"").unwrap();
        let mut have: Vec<Option<Vec<u8>>> = frags.into_iter().map(Some).collect();
        have[0] = None;
        assert_eq!(codec.decode_object(&mut have).unwrap(), Vec::<u8>::new());
    }
}
