//! Erasure codes for OceanStore's deep archival storage (§4.5).
//!
//! Two codecs, matching the paper:
//!
//! * [`rs::ReedSolomon`] — systematic Reed-Solomon over GF(2^8): any `k` of
//!   `n` fragments reconstruct the object exactly.
//! * [`tornado::Tornado`] — a Tornado-style XOR peeling code: much cheaper
//!   arithmetic, needs slightly more than `k` fragments (footnote 12).
//!
//! [`object`] frames arbitrary byte objects into equal-length shards and
//! offers the [`object::ObjectCodec`] the archival layer consumes.
//!
//! # Examples
//!
//! ```
//! use oceanstore_erasure::object::{CodeKind, ObjectCodec};
//!
//! # fn main() -> Result<(), oceanstore_erasure::rs::CodeError> {
//! let codec = ObjectCodec::new(CodeKind::ReedSolomon, 4, 8, 0)?;
//! let fragments = codec.encode_object(b"archival me")?;
//! let mut have: Vec<_> = fragments.into_iter().map(Some).collect();
//! // Any 4 of the 8 fragments suffice:
//! have[0] = None; have[2] = None; have[5] = None; have[7] = None;
//! assert_eq!(codec.decode_object(&mut have)?, b"archival me");
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// runtime-dispatched AVX2 kernel module in `gf256` (split-nibble `PSHUFB`
// multiply), which carries its own `#[allow(unsafe_code)]` plus SAFETY
// comments. Everything else in the crate stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod gf256;
pub mod matrix;
pub mod object;
pub mod rs;
pub mod tornado;

pub use object::{CodeKind, ObjectCodec};
pub use rs::{CodeError, ReedSolomon};
pub use tornado::Tornado;
