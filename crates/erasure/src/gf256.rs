//! Arithmetic in GF(2^8), the field underlying the Reed-Solomon code.
//!
//! Uses the AES polynomial `x^8 + x^4 + x^3 + x + 1` (0x11d with the
//! generator convention below) and exp/log tables built once at startup.
//! Addition is XOR; multiplication/division go through the tables.

use std::sync::OnceLock;

/// The reduction polynomial (0x11d) with generator 2.
const POLY: u16 = 0x11d;

struct Tables {
    exp: [u8; 512], // doubled so mul can skip a modulo
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Field addition (== subtraction): XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Field division.
///
/// # Panics
///
/// Panics on division by zero.
pub fn div(a: u8, b: u8) -> u8 {
    assert_ne!(b, 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] as usize + 255 - t.log[b as usize] as usize) % 255]
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on zero.
pub fn inv(a: u8) -> u8 {
    div(1, a)
}

/// `a` raised to the `e`-th power.
pub fn pow(a: u8, e: usize) -> u8 {
    if a == 0 {
        return if e == 0 { 1 } else { 0 };
    }
    let t = tables();
    let l = t.log[a as usize] as usize * (e % 255);
    t.exp[l % 255]
}

/// The field generator raised to `e` (i.e. `2^e`), handy for Vandermonde
/// rows.
pub fn exp(e: usize) -> u8 {
    tables().exp[e % 255]
}

// ---------------------------------------------------------------------------
// Bulk kernels.
//
// The encoder's hot loop is `dst[i] ^= c * src[i]` over shard-sized slices.
// The fast path works on 8-byte words: each of the 8 bit-planes of the
// constant `c` contributes `x^b · src` (computed lane-wise with the SWAR
// `xtimes8` step), selected by an all-ones/all-zeros mask. That is ~25
// bitwise ops per 8 bytes with no branches and no table lookups, which the
// compiler autovectorizes to full-width SIMD. The ≤7-byte tail goes through
// two 16-entry split-nibble tables (`c·x` for the low and high nibble).
// ---------------------------------------------------------------------------

/// Multiplies every byte lane of `w` by `x` (the generator, 2) in GF(2^8):
/// shift left, then reduce lanes that overflowed with the polynomial 0x1d.
/// The reduction mask is built from shifts of the overflow bits rather than
/// a 64-bit multiply: `0x1d` has bits 0/2/3/4, so shifting the lane-top
/// overflow bit (0x80) right by 7/5/4/3 lands exactly on them. Shift/XOR
/// keeps the whole kernel inside the SSE2 baseline instruction set, so LLVM
/// autovectorizes it; a `wrapping_mul` here would force scalar code (there
/// is no packed 64-bit multiply before AVX-512DQ).
#[inline(always)]
fn xtimes8(w: u64) -> u64 {
    let hi = w & 0x8080_8080_8080_8080;
    ((w ^ hi) << 1) ^ (hi >> 7) ^ (hi >> 5) ^ (hi >> 4) ^ (hi >> 3)
}

/// Per-bit-plane masks for `c`: all-ones where bit `b` of `c` is set.
#[inline(always)]
fn bit_masks(c: u8) -> [u64; 8] {
    let mut m = [0u64; 8];
    for (b, mask) in m.iter_mut().enumerate() {
        *mask = (((c >> b) & 1) as u64).wrapping_neg();
    }
    m
}

/// `c * w` lane-wise, with the bit-plane masks of `c` precomputed.
#[inline(always)]
fn mul_word(w: u64, masks: &[u64; 8]) -> u64 {
    let mut acc = 0u64;
    let mut cur = w;
    acc ^= cur & masks[0];
    for &mask in &masks[1..] {
        cur = xtimes8(cur);
        acc ^= cur & mask;
    }
    acc
}

/// Split-nibble tables for `c`: `lo[x] = c·x`, `hi[x] = c·(x << 4)`, so
/// `c·s = lo[s & 15] ^ hi[s >> 4]`. Used for sub-word tails.
#[inline]
fn nibble_tables(c: u8) -> ([u8; 16], [u8; 16]) {
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for i in 0..16u8 {
        lo[i as usize] = mul(c, i);
        hi[i as usize] = mul(c, i << 4);
    }
    (lo, hi)
}

/// The SIMD fast path: split-nibble table lookups via `PSHUFB`
/// (`_mm256_shuffle_epi8`), the standard technique for GF(2^8) bulk
/// multiply. `c·s = lo[s & 15] ^ hi[s >> 4]`, so one 32-byte block costs two
/// shuffles, two ANDs, a shift, and two XORs. This is the only unsafe code
/// in the crate (see `lib.rs`); everything is runtime-gated on AVX2 and
/// falls back to the SWAR word kernel, with bit-identical results either
/// way (the tables come from the same field arithmetic).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use std::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_loadu_si256, _mm256_set1_epi8, _mm256_shuffle_epi8,
        _mm256_srli_epi16, _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// Both 16-entry nibble tables for `c`, doubled across the two 128-bit
    /// lanes (`PSHUFB` indexes within each lane independently).
    #[inline]
    fn tables_2x16(c: u8) -> ([u8; 32], [u8; 32]) {
        let (lo, hi) = super::nibble_tables(c);
        let mut l = [0u8; 32];
        let mut h = [0u8; 32];
        l[..16].copy_from_slice(&lo);
        l[16..].copy_from_slice(&lo);
        h[..16].copy_from_slice(&hi);
        h[16..].copy_from_slice(&hi);
        (l, h)
    }

    /// Tries the AVX2 path; `false` means the caller must run the portable
    /// kernel (feature missing or slice too short to be worth it).
    pub(super) fn try_mul_acc_slice(dst: &mut [u8], src: &[u8], c: u8) -> bool {
        if dst.len() < 32 || !is_x86_feature_detected!("avx2") {
            return false;
        }
        // SAFETY: AVX2 support was just confirmed at runtime, and the
        // kernel only ever loads/stores through unaligned intrinsics inside
        // the slices' bounds.
        unsafe { mul_acc_slice_avx2(dst, src, c) };
        true
    }

    /// Like [`try_mul_acc_slice`] for the fused multi-row accumulate.
    pub(super) fn try_mul_acc_multi(dsts: &mut [(&mut [u8], u8)], src: &[u8]) -> bool {
        if src.len() < 32 || !is_x86_feature_detected!("avx2") {
            return false;
        }
        // SAFETY: as in `try_mul_acc_slice`; row lengths equal `src.len()`
        // (asserted by the caller).
        unsafe { mul_acc_multi_avx2(dsts, src) };
        true
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mul_acc_slice_avx2(dst: &mut [u8], src: &[u8], c: u8) {
        let (lo, hi) = tables_2x16(c);
        let tlo = _mm256_loadu_si256(lo.as_ptr().cast::<__m256i>());
        let thi = _mm256_loadu_si256(hi.as_ptr().cast::<__m256i>());
        let mask = _mm256_set1_epi8(0x0f);
        let blocks = dst.len() / 32;
        for i in 0..blocks {
            let o = i * 32;
            let s = _mm256_loadu_si256(src.as_ptr().add(o).cast::<__m256i>());
            let d = _mm256_loadu_si256(dst.as_ptr().add(o).cast::<__m256i>());
            let nl = _mm256_and_si256(s, mask);
            let nh = _mm256_and_si256(_mm256_srli_epi16(s, 4), mask);
            let prod =
                _mm256_xor_si256(_mm256_shuffle_epi8(tlo, nl), _mm256_shuffle_epi8(thi, nh));
            _mm256_storeu_si256(dst.as_mut_ptr().add(o).cast::<__m256i>(), _mm256_xor_si256(d, prod));
        }
        let tail = blocks * 32;
        let (tlo, thi) = super::nibble_tables(c);
        for (db, sb) in dst[tail..].iter_mut().zip(&src[tail..]) {
            *db ^= tlo[(sb & 0x0f) as usize] ^ thi[(sb >> 4) as usize];
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mul_acc_multi_avx2(dsts: &mut [(&mut [u8], u8)], src: &[u8]) {
        let tabs: Vec<(__m256i, __m256i)> = dsts
            .iter()
            .map(|&(_, c)| {
                let (lo, hi) = tables_2x16(c);
                (
                    _mm256_loadu_si256(lo.as_ptr().cast::<__m256i>()),
                    _mm256_loadu_si256(hi.as_ptr().cast::<__m256i>()),
                )
            })
            .collect();
        let mask = _mm256_set1_epi8(0x0f);
        let blocks = src.len() / 32;
        for i in 0..blocks {
            let o = i * 32;
            // The source block and its nibble split are computed once and
            // shared by every destination row.
            let s = _mm256_loadu_si256(src.as_ptr().add(o).cast::<__m256i>());
            let nl = _mm256_and_si256(s, mask);
            let nh = _mm256_and_si256(_mm256_srli_epi16(s, 4), mask);
            for ((d, c), &(tlo, thi)) in dsts.iter_mut().zip(&tabs) {
                if *c == 0 {
                    continue;
                }
                let dv = _mm256_loadu_si256(d.as_ptr().add(o).cast::<__m256i>());
                let prod =
                    _mm256_xor_si256(_mm256_shuffle_epi8(tlo, nl), _mm256_shuffle_epi8(thi, nh));
                _mm256_storeu_si256(d.as_mut_ptr().add(o).cast::<__m256i>(), _mm256_xor_si256(dv, prod));
            }
        }
        let tail = blocks * 32;
        for (d, c) in dsts.iter_mut() {
            if *c == 0 {
                continue;
            }
            let (lo, hi) = super::nibble_tables(*c);
            for (db, sb) in d[tail..].iter_mut().zip(&src[tail..]) {
                *db ^= lo[(sb & 0x0f) as usize] ^ hi[(sb >> 4) as usize];
            }
        }
    }
}

/// Portable stand-in on non-x86_64 targets: never handles the call, so the
/// SWAR kernels run everywhere else.
#[cfg(not(target_arch = "x86_64"))]
mod x86 {
    pub(super) fn try_mul_acc_slice(_dst: &mut [u8], _src: &[u8], _c: u8) -> bool {
        false
    }
    pub(super) fn try_mul_acc_multi(_dsts: &mut [(&mut [u8], u8)], _src: &[u8]) -> bool {
        false
    }
}

/// XORs `src` into `dst` word-at-a-time: `dst[i] ^= src[i]`.
///
/// # Panics
///
/// Panics if slices have different lengths.
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dw, sw) in (&mut d).zip(&mut s) {
        let w = u64::from_le_bytes(dw.try_into().expect("8-byte chunk"))
            ^ u64::from_le_bytes(sw.try_into().expect("8-byte chunk"));
        dw.copy_from_slice(&w.to_le_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= sb;
    }
}

/// Multiply-accumulate a slice: `dst[i] ^= c * src[i]`.
///
/// This is the encoder's hot loop; see the module comment on the kernel.
///
/// # Panics
///
/// Panics if slices have different lengths.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(dst, src);
        return;
    }
    if x86::try_mul_acc_slice(dst, src, c) {
        return;
    }
    let masks = bit_masks(c);
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dw, sw) in (&mut d).zip(&mut s) {
        let w = u64::from_le_bytes(sw.try_into().expect("8-byte chunk"));
        let acc = u64::from_le_bytes(dw.try_into().expect("8-byte chunk")) ^ mul_word(w, &masks);
        dw.copy_from_slice(&acc.to_le_bytes());
    }
    let (lo, hi) = nibble_tables(c);
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= lo[(sb & 0x0f) as usize] ^ hi[(sb >> 4) as usize];
    }
}

/// Multiplies a slice in place by `c`: `dst[i] = c * dst[i]`.
///
/// With `c = 0` this zeroes the slice (as field arithmetic demands).
pub fn mul_slice_in_place(dst: &mut [u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => {
            let masks = bit_masks(c);
            let mut d = dst.chunks_exact_mut(8);
            for dw in &mut d {
                let w = u64::from_le_bytes(dw.try_into().expect("8-byte chunk"));
                dw.copy_from_slice(&mul_word(w, &masks).to_le_bytes());
            }
            let (lo, hi) = nibble_tables(c);
            for db in d.into_remainder() {
                *db = lo[(*db & 0x0f) as usize] ^ hi[(*db >> 4) as usize];
            }
        }
    }
}

/// Applies one source slice to several destination rows in a single pass:
/// `dsts[r].0[i] ^= dsts[r].1 * src[i]` for every row `r`.
///
/// Matrix encodes accumulate the same data shard into every parity row;
/// fusing the rows amortizes both the source loads and the eight SWAR
/// `xtimes` steps (the `x^b · src` bit-planes are shared — each row only
/// pays mask-and-XOR), roughly halving memory traffic versus repeated
/// [`mul_acc_slice`] calls.
///
/// # Panics
///
/// Panics if any destination length differs from `src`.
pub fn mul_acc_multi(dsts: &mut [(&mut [u8], u8)], src: &[u8]) {
    for (d, _) in dsts.iter() {
        assert_eq!(d.len(), src.len(), "slice length mismatch");
    }
    if x86::try_mul_acc_multi(dsts, src) {
        return;
    }
    let masks: Vec<[u64; 8]> = dsts.iter().map(|&(_, c)| bit_masks(c)).collect();
    let words = src.len() / 8;
    for i in 0..words {
        let o = i * 8;
        let w = u64::from_le_bytes(src[o..o + 8].try_into().expect("8-byte chunk"));
        let mut planes = [0u64; 8];
        planes[0] = w;
        for b in 1..8 {
            planes[b] = xtimes8(planes[b - 1]);
        }
        for ((d, c), m) in dsts.iter_mut().zip(&masks) {
            if *c == 0 {
                continue;
            }
            let mut acc = 0u64;
            for b in 0..8 {
                acc ^= planes[b] & m[b];
            }
            let cur = u64::from_le_bytes(d[o..o + 8].try_into().expect("8-byte chunk"));
            d[o..o + 8].copy_from_slice(&(cur ^ acc).to_le_bytes());
        }
    }
    let tail = words * 8;
    for (d, c) in dsts.iter_mut() {
        if *c == 0 {
            continue;
        }
        let (lo, hi) = nibble_tables(*c);
        for (db, sb) in d[tail..].iter_mut().zip(&src[tail..]) {
            *db ^= lo[(sb & 0x0f) as usize] ^ hi[(sb >> 4) as usize];
        }
    }
}

/// The original byte-at-a-time log/exp `mul_acc_slice`. Kept as the
/// correctness reference for tests and as the "before" measurement in
/// `BENCH_*.json`; not part of the public contract.
///
/// # Panics
///
/// Panics if slices have different lengths.
#[doc(hidden)]
pub fn mul_acc_slice_ref(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let lc = t.log[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[lc + t.log[*s as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(add(a, a), 0);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn mul_is_commutative_and_associative() {
        // Spot-check over a deterministic subset (full triple loop is 16M).
        for a in (1..=255u8).step_by(7) {
            for b in (1..=255u8).step_by(11) {
                assert_eq!(mul(a, b), mul(b, a));
                for c in (1..=255u8).step_by(31) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributive() {
        for a in (0..=255u8).step_by(5) {
            for b in (0..=255u8).step_by(9) {
                for c in (0..=255u8).step_by(13) {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let mut acc = 1u8;
        for e in 0..520usize {
            assert_eq!(pow(3, e), acc, "e={e}");
            acc = mul(acc, 3);
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn exp_is_generator_powers() {
        assert_eq!(exp(0), 1);
        assert_eq!(exp(1), 2);
        assert_eq!(exp(255), 1); // order of the multiplicative group
    }

    #[test]
    fn div_matches_mul_inv() {
        for a in (0..=255u8).step_by(3) {
            for b in (1..=255u8).step_by(5) {
                assert_eq!(div(a, b), mul(a, inv(b)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        div(3, 0);
    }

    #[test]
    fn mul_acc_slice_matches_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x53, 0xff] {
            let mut dst = vec![0x5au8; 256];
            let mut expect = dst.clone();
            mul_acc_slice(&mut dst, &src, c);
            for (e, s) in expect.iter_mut().zip(&src) {
                *e ^= mul(c, *s);
            }
            assert_eq!(dst, expect, "c={c}");
        }
    }

    #[test]
    fn xtimes8_matches_lanewise_mul_by_two() {
        for s in 0..=255u8 {
            let w = u64::from_le_bytes([s, s ^ 0x11, 0, 1, 0x80, 0x7f, 0xfe, s.wrapping_add(3)]);
            let out = xtimes8(w).to_le_bytes();
            for (lane, &b) in w.to_le_bytes().iter().enumerate() {
                assert_eq!(out[lane], mul(b, 2), "s={s} lane={lane}");
            }
        }
    }

    /// Every c × every unaligned length: the word kernel, the nibble tail,
    /// and the reference loop must agree bit for bit.
    #[test]
    fn fast_kernel_matches_reference_all_coefficients() {
        let src: Vec<u8> = (0..611u32).map(|i| (i.wrapping_mul(167) >> 3) as u8).collect();
        let init: Vec<u8> = (0..611u32).map(|i| (i.wrapping_mul(89) >> 2) as u8).collect();
        for c in 0..=255u8 {
            for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 611] {
                let mut fast = init[..len].to_vec();
                let mut reference = init[..len].to_vec();
                mul_acc_slice(&mut fast, &src[..len], c);
                mul_acc_slice_ref(&mut reference, &src[..len], c);
                assert_eq!(fast, reference, "c={c} len={len}");
            }
        }
    }

    #[test]
    fn mul_slice_in_place_matches_scalar() {
        let init: Vec<u8> = (0..131u32).map(|i| (i * 3 + 1) as u8).collect();
        for c in [0u8, 1, 2, 0x1c, 0x80, 0xff] {
            let mut fast = init.clone();
            mul_slice_in_place(&mut fast, c);
            let expect: Vec<u8> = init.iter().map(|&b| mul(c, b)).collect();
            assert_eq!(fast, expect, "c={c}");
        }
    }

    #[test]
    fn xor_slice_matches_bytewise() {
        let a: Vec<u8> = (0..77u32).map(|i| (i * 11) as u8).collect();
        let b: Vec<u8> = (0..77u32).map(|i| (i * 29 + 5) as u8).collect();
        let mut fast = a.clone();
        xor_slice(&mut fast, &b);
        let expect: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        assert_eq!(fast, expect);
    }

    #[test]
    fn mul_acc_multi_matches_row_by_row() {
        let src: Vec<u8> = (0..203u32).map(|i| (i.wrapping_mul(251)) as u8).collect();
        let coeffs = [0u8, 1, 2, 0x35, 0xd4, 0xff];
        let init: Vec<Vec<u8>> = (0..coeffs.len())
            .map(|r| (0..203u32).map(|i| ((i + r as u32) * 17) as u8).collect())
            .collect();

        let mut fused = init.clone();
        {
            let mut rows: Vec<(&mut [u8], u8)> = fused
                .iter_mut()
                .zip(coeffs)
                .map(|(d, c)| (d.as_mut_slice(), c))
                .collect();
            mul_acc_multi(&mut rows, &src);
        }

        let mut separate = init;
        for (d, c) in separate.iter_mut().zip(coeffs) {
            mul_acc_slice_ref(d, &src, c);
        }
        assert_eq!(fused, separate);
    }
}
