//! Arithmetic in GF(2^8), the field underlying the Reed-Solomon code.
//!
//! Uses the AES polynomial `x^8 + x^4 + x^3 + x + 1` (0x11d with the
//! generator convention below) and exp/log tables built once at startup.
//! Addition is XOR; multiplication/division go through the tables.

use std::sync::OnceLock;

/// The reduction polynomial (0x11d) with generator 2.
const POLY: u16 = 0x11d;

struct Tables {
    exp: [u8; 512], // doubled so mul can skip a modulo
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Field addition (== subtraction): XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Field division.
///
/// # Panics
///
/// Panics on division by zero.
pub fn div(a: u8, b: u8) -> u8 {
    assert_ne!(b, 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] as usize + 255 - t.log[b as usize] as usize) % 255]
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on zero.
pub fn inv(a: u8) -> u8 {
    div(1, a)
}

/// `a` raised to the `e`-th power.
pub fn pow(a: u8, e: usize) -> u8 {
    if a == 0 {
        return if e == 0 { 1 } else { 0 };
    }
    let t = tables();
    let l = t.log[a as usize] as usize * (e % 255);
    t.exp[l % 255]
}

/// The field generator raised to `e` (i.e. `2^e`), handy for Vandermonde
/// rows.
pub fn exp(e: usize) -> u8 {
    tables().exp[e % 255]
}

/// Multiply-accumulate a slice: `dst[i] ^= c * src[i]`.
///
/// This is the encoder's hot loop.
///
/// # Panics
///
/// Panics if slices have different lengths.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let lc = t.log[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[lc + t.log[*s as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(add(a, a), 0);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn mul_is_commutative_and_associative() {
        // Spot-check over a deterministic subset (full triple loop is 16M).
        for a in (1..=255u8).step_by(7) {
            for b in (1..=255u8).step_by(11) {
                assert_eq!(mul(a, b), mul(b, a));
                for c in (1..=255u8).step_by(31) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributive() {
        for a in (0..=255u8).step_by(5) {
            for b in (0..=255u8).step_by(9) {
                for c in (0..=255u8).step_by(13) {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let mut acc = 1u8;
        for e in 0..520usize {
            assert_eq!(pow(3, e), acc, "e={e}");
            acc = mul(acc, 3);
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn exp_is_generator_powers() {
        assert_eq!(exp(0), 1);
        assert_eq!(exp(1), 2);
        assert_eq!(exp(255), 1); // order of the multiplicative group
    }

    #[test]
    fn div_matches_mul_inv() {
        for a in (0..=255u8).step_by(3) {
            for b in (1..=255u8).step_by(5) {
                assert_eq!(div(a, b), mul(a, inv(b)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        div(3, 0);
    }

    #[test]
    fn mul_acc_slice_matches_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x53, 0xff] {
            let mut dst = vec![0x5au8; 256];
            let mut expect = dst.clone();
            mul_acc_slice(&mut dst, &src, c);
            for (e, s) in expect.iter_mut().zip(&src) {
                *e ^= mul(c, *s);
            }
            assert_eq!(dst, expect, "c={c}");
        }
    }
}
