//! Systematic Reed-Solomon erasure code (§4.5, "interleaved Read-Solomon
//! codes \[39\]").
//!
//! Encoding treats an object as `k` data shards and produces `n - k` parity
//! shards; *any* `k` of the `n` shards reconstruct the original — the
//! "essential property" the paper's deep-archival argument rests on.
//!
//! The encoding matrix is a Vandermonde matrix normalized so its top `k`
//! rows are the identity (systematic: data shards appear verbatim among the
//! fragments, which makes the common no-loss read path a straight copy).

use std::fmt;

use crate::matrix::Matrix;

/// Errors from erasure encode/decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The `(k, n)` parameters are unusable.
    InvalidParams {
        /// Data shard count requested.
        k: usize,
        /// Total shard count requested.
        n: usize,
        /// Why the combination is rejected.
        reason: &'static str,
    },
    /// Shards passed to encode/decode had inconsistent lengths.
    ShardSizeMismatch,
    /// Fewer than `k` shards survive.
    NotEnoughShards {
        /// Shards available.
        have: usize,
        /// Shards required (`k`).
        need: usize,
    },
    /// A peeling decoder (Tornado) had enough fragments in principle but
    /// stalled on this particular subset; fetch more fragments and retry.
    DecodingStalled,
    /// Object-level framing was corrupt (bad length prefix).
    CorruptObject,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParams { k, n, reason } => {
                write!(f, "invalid erasure parameters k={k}, n={n}: {reason}")
            }
            CodeError::ShardSizeMismatch => write!(f, "shards have inconsistent lengths"),
            CodeError::NotEnoughShards { have, need } => {
                write!(f, "only {have} shards available, need {need}")
            }
            CodeError::DecodingStalled => {
                write!(f, "peeling decoder stalled; more fragments are needed")
            }
            CodeError::CorruptObject => write!(f, "object framing is corrupt"),
        }
    }
}

impl std::error::Error for CodeError {}

/// A `(k, n)` systematic Reed-Solomon codec: `k` data shards, `n` total.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    k: usize,
    n: usize,
    /// `n × k` encoding matrix; top `k` rows are the identity.
    enc: Matrix,
}

impl ReedSolomon {
    /// Creates a codec.
    ///
    /// # Errors
    ///
    /// Rejects `k == 0`, `n <= k`, and `n > 256` (GF(256) limit).
    pub fn new(k: usize, n: usize) -> Result<Self, CodeError> {
        if k == 0 {
            return Err(CodeError::InvalidParams { k, n, reason: "k must be positive" });
        }
        if n <= k {
            return Err(CodeError::InvalidParams { k, n, reason: "n must exceed k" });
        }
        if n > 256 {
            return Err(CodeError::InvalidParams { k, n, reason: "n must be at most 256" });
        }
        let v = Matrix::vandermonde(n, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top.inverse().expect("Vandermonde top block is invertible");
        let enc = v.mul(&top_inv);
        Ok(ReedSolomon { k, n, enc })
    }

    /// Data shard count.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Total shard count.
    pub fn total_shards(&self) -> usize {
        self.n
    }

    /// Encodes `k` equal-length data shards into `n` shards (the first `k`
    /// are the data shards themselves).
    ///
    /// # Errors
    ///
    /// [`CodeError::ShardSizeMismatch`] if the input shard count or lengths
    /// are inconsistent.
    pub fn encode<T: AsRef<[u8]>>(&self, data: &[T]) -> Result<Vec<Vec<u8>>, CodeError> {
        if data.len() != self.k {
            return Err(CodeError::ShardSizeMismatch);
        }
        let cols: Vec<&[u8]> = data.iter().map(|s| s.as_ref()).collect();
        let len = cols[0].len();
        if cols.iter().any(|s| s.len() != len) {
            return Err(CodeError::ShardSizeMismatch);
        }
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(self.n);
        for col in &cols {
            out.push(col.to_vec());
        }
        let parity_coeffs: Vec<Vec<u8>> = (self.k..self.n)
            .map(|r| (0..self.k).map(|c| self.enc.get(r, c)).collect())
            .collect();
        out.extend(Self::parity_rows(&cols, &parity_coeffs, len));
        Ok(out)
    }

    /// Computes parity rows: `row[r][i] = Σ_c coeffs[r][c] · cols[c][i]`.
    ///
    /// Each row starts as a *copy* of the first data column multiplied in
    /// place — no zero-fill that the first accumulation immediately
    /// overwrites — and the remaining columns accumulate into all rows per
    /// pass through [`crate::gf256::mul_acc_multi`].
    fn parity_rows(cols: &[&[u8]], coeffs: &[Vec<u8>], len: usize) -> Vec<Vec<u8>> {
        #[cfg(feature = "parallel")]
        {
            // Rows are independent, so splitting them across threads cannot
            // change the bytes produced — the feature only exists because
            // encode throughput is the archival path's bottleneck (off by
            // default; the simulator stays single-threaded).
            let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
            if workers > 1 && coeffs.len() > 1 && len >= 4096 {
                let chunk = coeffs.len().div_ceil(workers);
                let mut rows: Vec<Vec<Vec<u8>>> = Vec::new();
                std::thread::scope(|s| {
                    let handles: Vec<_> = coeffs
                        .chunks(chunk)
                        .map(|group| s.spawn(move || Self::parity_rows_serial(cols, group)))
                        .collect();
                    rows = handles.into_iter().map(|h| h.join().expect("worker")).collect();
                });
                return rows.into_iter().flatten().collect();
            }
        }
        #[cfg(not(feature = "parallel"))]
        let _ = len;
        Self::parity_rows_serial(cols, coeffs)
    }

    fn parity_rows_serial(cols: &[&[u8]], coeffs: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let mut rows: Vec<Vec<u8>> = coeffs
            .iter()
            .map(|cs| {
                let mut row = cols[0].to_vec();
                crate::gf256::mul_slice_in_place(&mut row, cs[0]);
                row
            })
            .collect();
        for (c, col) in cols.iter().enumerate().skip(1) {
            let mut fused: Vec<(&mut [u8], u8)> = rows
                .iter_mut()
                .zip(coeffs)
                .map(|(row, cs)| (row.as_mut_slice(), cs[c]))
                .collect();
            crate::gf256::mul_acc_multi(&mut fused, col);
        }
        rows
    }

    /// The pre-optimization encode: zero-filled parity rows accumulated one
    /// `mul_acc_slice_ref` column at a time. Kept so tests can pin the fast
    /// path's output against it and the perf report can measure the delta;
    /// not part of the public contract.
    #[doc(hidden)]
    pub fn encode_ref<T: AsRef<[u8]>>(&self, data: &[T]) -> Result<Vec<Vec<u8>>, CodeError> {
        if data.len() != self.k {
            return Err(CodeError::ShardSizeMismatch);
        }
        let len = data[0].as_ref().len();
        if data.iter().any(|s| s.as_ref().len() != len) {
            return Err(CodeError::ShardSizeMismatch);
        }
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(self.n);
        for r in 0..self.n {
            if r < self.k {
                out.push(data[r].as_ref().to_vec());
                continue;
            }
            let mut shard = vec![0u8; len];
            for (c, d) in data.iter().enumerate() {
                crate::gf256::mul_acc_slice_ref(&mut shard, d.as_ref(), self.enc.get(r, c));
            }
            out.push(shard);
        }
        Ok(out)
    }

    /// Reconstructs every missing shard in place. `shards[i]` is `Some` if
    /// shard `i` survives. On success all `n` entries are `Some`.
    ///
    /// # Errors
    ///
    /// [`CodeError::NotEnoughShards`] with fewer than `k` survivors;
    /// [`CodeError::ShardSizeMismatch`] for inconsistent lengths or a wrong
    /// slice length.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), CodeError> {
        if shards.len() != self.n {
            return Err(CodeError::ShardSizeMismatch);
        }
        let present: Vec<usize> =
            (0..self.n).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(CodeError::NotEnoughShards { have: present.len(), need: self.k });
        }
        let len = shards[present[0]].as_ref().expect("present").len();
        if present.iter().any(|&i| shards[i].as_ref().expect("present").len() != len) {
            return Err(CodeError::ShardSizeMismatch);
        }
        if present.len() == self.n {
            return Ok(()); // nothing missing
        }
        // Use the first k surviving shards to recover the data shards.
        let use_rows = &present[..self.k];
        let sub = self.enc.select_rows(use_rows);
        let dec = sub.inverse().expect("any k rows of the RS matrix are invertible");
        // data[c] = sum_j dec[c][j] * shards[use_rows[j]], computed source-major:
        // each surviving shard streams through all k output rows in one pass.
        let survivors: Vec<&[u8]> = use_rows
            .iter()
            .map(|&row| shards[row].as_ref().expect("present").as_slice())
            .collect();
        let dec_coeffs: Vec<Vec<u8>> = (0..self.k)
            .map(|c| (0..self.k).map(|j| dec.get(c, j)).collect())
            .collect();
        let data = Self::parity_rows(&survivors, &dec_coeffs, len);
        // Re-derive every missing shard from the recovered data.
        let missing: Vec<usize> = (self.k..self.n).filter(|&i| shards[i].is_none()).collect();
        if !missing.is_empty() {
            let cols: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let coeffs: Vec<Vec<u8>> = missing
                .iter()
                .map(|&i| (0..self.k).map(|c| self.enc.get(i, c)).collect())
                .collect();
            let rebuilt = Self::parity_rows(&cols, &coeffs, len);
            for (&i, s) in missing.iter().zip(rebuilt) {
                shards[i] = Some(s);
            }
        }
        for (i, d) in data.into_iter().enumerate() {
            if shards[i].is_none() {
                shards[i] = Some(d);
            }
        }
        Ok(())
    }

    /// The pre-optimization reconstruct (zero-filled destination rows,
    /// one `mul_acc_slice_ref` source at a time). Kept as the perf report's
    /// "before" measurement and as a test oracle; not part of the public
    /// contract.
    #[doc(hidden)]
    pub fn reconstruct_ref(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), CodeError> {
        if shards.len() != self.n {
            return Err(CodeError::ShardSizeMismatch);
        }
        let present: Vec<usize> = (0..self.n).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(CodeError::NotEnoughShards { have: present.len(), need: self.k });
        }
        let len = shards[present[0]].as_ref().expect("present").len();
        if present.iter().any(|&i| shards[i].as_ref().expect("present").len() != len) {
            return Err(CodeError::ShardSizeMismatch);
        }
        if present.len() == self.n {
            return Ok(());
        }
        let use_rows = &present[..self.k];
        let sub = self.enc.select_rows(use_rows);
        let dec = sub.inverse().expect("any k rows of the RS matrix are invertible");
        let mut data: Vec<Vec<u8>> = Vec::with_capacity(self.k);
        for c in 0..self.k {
            let mut d = vec![0u8; len];
            for (j, &row) in use_rows.iter().enumerate() {
                let shard = shards[row].as_ref().expect("present");
                crate::gf256::mul_acc_slice_ref(&mut d, shard, dec.get(c, j));
            }
            data.push(d);
        }
        for i in 0..self.n {
            if shards[i].is_none() {
                if i < self.k {
                    shards[i] = Some(data[i].clone());
                } else {
                    let mut s = vec![0u8; len];
                    for (c, d) in data.iter().enumerate() {
                        crate::gf256::mul_acc_slice_ref(&mut s, d, self.enc.get(i, c));
                    }
                    shards[i] = Some(s);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| ((i * 131 + j * 7) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(4, 8).unwrap();
        let data = shards(4, 64);
        let coded = rs.encode(&data).unwrap();
        assert_eq!(coded.len(), 8);
        assert_eq!(&coded[..4], &data[..]);
    }

    #[test]
    fn any_k_of_n_reconstructs() {
        // The paper's essential property, exhaustively for (3, 6):
        // all C(6,3)=20 erasure patterns of 3 losses.
        let rs = ReedSolomon::new(3, 6).unwrap();
        let data = shards(3, 40);
        let coded = rs.encode(&data).unwrap();
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    let mut have: Vec<Option<Vec<u8>>> =
                        coded.iter().cloned().map(Some).collect();
                    have[a] = None;
                    have[b] = None;
                    have[c] = None;
                    rs.reconstruct(&mut have).unwrap();
                    for (i, s) in have.iter().enumerate() {
                        assert_eq!(s.as_ref().unwrap(), &coded[i], "lost {a},{b},{c} shard {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn fast_encode_matches_reference_path() {
        // The fused-kernel encode (copy + mul_slice_in_place seed, then
        // mul_acc_multi per column) must be bit-identical to the original
        // zero-fill + column-at-a-time path, including on word-unaligned
        // shard lengths that exercise the nibble-table tails.
        for (k, n) in [(1, 2), (2, 4), (3, 6), (8, 16), (16, 32)] {
            for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 611] {
                let rs = ReedSolomon::new(k, n).unwrap();
                let data = shards(k, len);
                assert_eq!(
                    rs.encode(&data).unwrap(),
                    rs.encode_ref(&data).unwrap(),
                    "k={k} n={n} len={len}"
                );
            }
        }
    }

    #[test]
    fn fast_reconstruct_matches_reference_path() {
        // Mixed data + parity losses, word-unaligned length.
        let rs = ReedSolomon::new(4, 8).unwrap();
        let coded = rs.encode(&shards(4, 611)).unwrap();
        let mut fast: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        for i in [0, 2, 5, 7] {
            fast[i] = None;
        }
        let mut slow = fast.clone();
        rs.reconstruct(&mut fast).unwrap();
        rs.reconstruct_ref(&mut slow).unwrap();
        assert_eq!(fast, slow);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_encode_is_byte_identical() {
        // Shards above the 4 KiB threshold take the threaded path; the
        // output must not depend on how rows were split across workers.
        let rs = ReedSolomon::new(8, 16).unwrap();
        let data = shards(8, 8192 + 13);
        assert_eq!(rs.encode(&data).unwrap(), rs.encode_ref(&data).unwrap());
    }

    #[test]
    fn too_few_shards_fails() {
        let rs = ReedSolomon::new(4, 8).unwrap();
        let coded = rs.encode(&shards(4, 16)).unwrap();
        let mut have: Vec<Option<Vec<u8>>> = coded.into_iter().map(Some).collect();
        for h in have.iter_mut().take(5) {
            *h = None;
        }
        assert_eq!(
            rs.reconstruct(&mut have),
            Err(CodeError::NotEnoughShards { have: 3, need: 4 })
        );
    }

    #[test]
    fn rate_half_paper_configs() {
        // The paper's example encodings: rate-1/2 into 16 and 32 fragments.
        for (k, n) in [(8, 16), (16, 32)] {
            let rs = ReedSolomon::new(k, n).unwrap();
            let data = shards(k, 128);
            let coded = rs.encode(&data).unwrap();
            // Lose the entire first half (all data shards).
            let mut have: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
            for slot in have.iter_mut().take(k) {
                *slot = None;
            }
            rs.reconstruct(&mut have).unwrap();
            for i in 0..k {
                assert_eq!(have[i].as_ref().unwrap(), &data[i]);
            }
        }
    }

    #[test]
    fn no_loss_is_a_noop() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let coded = rs.encode(&shards(2, 8)).unwrap();
        let mut have: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
        rs.reconstruct(&mut have).unwrap();
        for (h, c) in have.iter().zip(&coded) {
            assert_eq!(h.as_ref().unwrap(), c);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(ReedSolomon::new(0, 4).is_err());
        assert!(ReedSolomon::new(4, 4).is_err());
        assert!(ReedSolomon::new(4, 3).is_err());
        assert!(ReedSolomon::new(128, 257).is_err());
        assert!(ReedSolomon::new(128, 256).is_ok());
    }

    #[test]
    fn mismatched_shard_lengths_rejected() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let bad = vec![vec![0u8; 8], vec![0u8; 9]];
        assert_eq!(rs.encode(&bad), Err(CodeError::ShardSizeMismatch));
    }

    #[test]
    fn wrong_shard_count_rejected() {
        let rs = ReedSolomon::new(3, 5).unwrap();
        assert_eq!(rs.encode(&shards(2, 8)), Err(CodeError::ShardSizeMismatch));
        let mut wrong = vec![Some(vec![0u8; 4]); 4];
        assert_eq!(rs.reconstruct(&mut wrong), Err(CodeError::ShardSizeMismatch));
    }

    #[test]
    fn empty_shards_roundtrip() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let data = vec![Vec::new(), Vec::new()];
        let coded = rs.encode(&data).unwrap();
        assert!(coded.iter().all(Vec::is_empty));
    }
}
