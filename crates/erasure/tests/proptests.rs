//! Property-based tests for the erasure codes: the invariants the deep
//! archival argument rests on must hold for *arbitrary* data and erasure
//! patterns, not just hand-picked cases.

use oceanstore_erasure::object::{split_into_shards, join_shards, CodeKind, ObjectCodec};
use oceanstore_erasure::rs::ReedSolomon;
use oceanstore_erasure::tornado::Tornado;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reed-Solomon: any k-subset of shards reconstructs every shard
    /// exactly, for arbitrary data and arbitrary k-subsets.
    #[test]
    fn rs_any_k_subset_reconstructs(
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        k in 2usize..8,
        extra in 1usize..8,
        subset_seed in any::<u64>(),
    ) {
        let n = k + extra;
        let rs = ReedSolomon::new(k, n).expect("valid");
        let shards = split_into_shards(&data, k);
        let coded = rs.encode(&shards).expect("encodes");
        // Choose a pseudo-random k-subset to survive.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = subset_seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let mut have: Vec<Option<Vec<u8>>> = vec![None; n];
        for &i in order.iter().take(k) {
            have[i] = Some(coded[i].clone());
        }
        rs.reconstruct(&mut have).expect("any k suffice");
        for (i, c) in coded.iter().enumerate() {
            prop_assert_eq!(have[i].as_ref().expect("filled"), c);
        }
        // And the object reassembles bit-exactly.
        let rebuilt: Vec<Vec<u8>> =
            have[..k].iter().map(|x| x.clone().expect("data shard")).collect();
        prop_assert_eq!(join_shards(&rebuilt).expect("joins"), data);
    }

    /// Tornado: whenever decoding succeeds, the result is exactly right —
    /// never silently wrong — for arbitrary survivor sets.
    #[test]
    fn tornado_never_wrong(
        data in proptest::collection::vec(any::<u8>(), 1..1500),
        k in 2usize..8,
        seed in any::<u64>(),
        survivors in proptest::collection::vec(any::<bool>(), 24),
    ) {
        let n = 3 * k;
        let t = Tornado::new(k, n, seed).expect("valid");
        let shards = split_into_shards(&data, k);
        let coded = t.encode(&shards).expect("encodes");
        let mut have: Vec<Option<Vec<u8>>> = coded
            .iter()
            .enumerate()
            .map(|(i, c)| survivors.get(i).copied().unwrap_or(false).then(|| c.clone()))
            .collect();
        if t.reconstruct(&mut have).is_ok() {
            for (i, c) in coded.iter().enumerate() {
                prop_assert_eq!(have[i].as_ref().expect("filled"), c);
            }
        }
    }

    /// Object framing: split/join is the identity for every (data, k).
    #[test]
    fn framing_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..4000),
        k in 1usize..20,
    ) {
        let shards = split_into_shards(&data, k);
        prop_assert_eq!(shards.len(), k);
        let l0 = shards[0].len();
        prop_assert!(shards.iter().all(|s| s.len() == l0));
        prop_assert_eq!(join_shards(&shards).expect("joins"), data);
    }

    /// Whole-object codec: encode → lose a random non-fatal subset →
    /// decode is the identity (Reed-Solomon flavor).
    #[test]
    fn object_codec_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..3000),
        loss_mask in any::<u16>(),
    ) {
        let codec = ObjectCodec::new(CodeKind::ReedSolomon, 8, 16, 0).expect("valid");
        let frags = codec.encode_object(&data).expect("encodes");
        let mut have: Vec<Option<Vec<u8>>> = frags
            .iter()
            .enumerate()
            .map(|(i, f)| (loss_mask >> i & 1 == 0).then(|| f.clone()))
            .collect();
        let survivors = have.iter().filter(|s| s.is_some()).count();
        let result = codec.decode_object(&mut have);
        if survivors >= 8 {
            prop_assert_eq!(result.expect("enough survivors"), data);
        } else {
            prop_assert!(result.is_err());
        }
    }
}
