//! Open-loop workload generation for sharded OceanStore deployments.
//!
//! The paper argues for a system "constructed from untrusted
//! infrastructure" that still scales to "potentially billions of users";
//! this crate measures how far the reproduction's consensus path actually
//! goes. It drives a [`Deployment`] with an *open-loop* arrival process —
//! requests arrive on a Poisson schedule at a fixed offered rate whether
//! or not earlier requests have finished, the standard way to expose
//! saturation and coordinated omission that closed-loop (submit → wait →
//! submit) harnesses hide.
//!
//! A run reports committed-updates/s against offered load plus the
//! p50/p99/p999 commit-latency profile, and checks a *no committed-update
//! loss* oracle: every update the client saw commit (`m + 1` matching
//! replies) must occupy a serialization slot on the owning ring's
//! primaries.

pub mod zipf;

use std::collections::HashMap;

use oceanstore_naming::guid::Guid;
use oceanstore_replica::{build_deployment, Deployment, DeploymentOpts};
use oceanstore_sim::{NodeId, ParCoverage, SimDuration, SimTime};
use oceanstore_update::update::Action;
use oceanstore_update::Update;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::zipf::Zipf;

pub use oceanstore_consensus::messages::RequestId;

/// Parameters of one open-loop run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Consensus rings sharing the secondary substrate.
    pub rings: usize,
    /// Faults tolerated per ring (`3m + 1` primaries each).
    pub m: usize,
    /// Secondary replicas (the "nodes" of a scale-out run).
    pub secondaries: usize,
    /// Client population; writes rotate round-robin across it.
    pub clients: usize,
    /// Distinct objects addressed by the workload.
    pub objects: usize,
    /// Zipf popularity exponent over the objects (0 = uniform).
    pub zipf_s: f64,
    /// Fraction of arrivals that are writes; the rest are reads served
    /// locally by a random secondary's committed view.
    pub write_fraction: f64,
    /// Offered load in arrivals per simulated second.
    pub rate: f64,
    /// Arrival window: requests are injected in `[0, duration)`.
    pub duration: SimDuration,
    /// Settle time after the last arrival before outcomes are counted.
    /// Kept finite on purpose — a saturated tier does *not* get unlimited
    /// time to drain, which is what makes saturation observable.
    pub drain: SimDuration,
    /// Uniform one-way mesh latency.
    pub latency: SimDuration,
    /// RNG/key seed (arrival schedule and deployment both derive from it).
    pub seed: u64,
    /// Simulator worker threads (1 = sequential). Any value yields the
    /// identical schedule and report; threads only change wall-clock time.
    pub threads: usize,
    /// Optional mid-run random-drop burst. Drop verdicts are counter-mode
    /// hashes of each routing attempt (never a shared RNG stream), so the
    /// burst changes neither the determinism contract nor the parallel
    /// schedule: the report stays identical at every thread count.
    pub drop_phase: Option<DropPhase>,
}

/// A random-drop burst in the middle of a run: `drop_prob` is raised to
/// `prob` at `start` and restored to zero at `end` (both measured in
/// simulated time since the run began), at exact simulated instants so
/// the toggle is identical at every thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropPhase {
    /// Burst start, relative to the run's start.
    pub start: SimDuration,
    /// Burst end, relative to the run's start.
    pub end: SimDuration,
    /// Random-drop probability while the burst is active.
    pub prob: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            rings: 1,
            m: 1,
            secondaries: 16,
            clients: 2,
            objects: 32,
            zipf_s: 0.9,
            write_fraction: 0.8,
            rate: 20.0,
            duration: SimDuration::from_secs(10),
            drain: SimDuration::from_secs(4),
            latency: SimDuration::from_millis(20),
            seed: 1,
            threads: 1,
            drop_phase: None,
        }
    }
}

/// What one run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// Writes injected during the arrival window.
    pub offered: u64,
    /// Writes that reached `m + 1` matching replies by the end of drain.
    pub committed: u64,
    /// Reads served (from secondaries' committed views).
    pub reads: u64,
    /// Reads that observed fewer committed records than the owning ring's
    /// frontier at read time (dissemination lag).
    pub stale_reads: u64,
    /// Committed outcomes with no backing serialization slot on the owning
    /// ring — the no-loss oracle; always 0 for a correct tier.
    pub lost: u64,
    /// Offered write load, per simulated second.
    pub offered_per_sec: f64,
    /// Committed throughput, per simulated second of the arrival window.
    pub committed_per_sec: f64,
    /// Commit-latency percentiles over committed writes, microseconds.
    pub p50_us: u64,
    /// 99th percentile commit latency, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile commit latency, microseconds.
    pub p999_us: u64,
    /// Worst observed commit latency, microseconds.
    pub max_us: u64,
    /// Requests still uncommitted when drain ended.
    pub pending: u64,
    /// Largest per-replica peak of retained commit records — the
    /// bounded-memory gauge for the record log. Stays near the retention
    /// window on long runs while `store_records_applied` keeps growing.
    pub peak_retained_records: u64,
    /// Commit records applied across every replica store (monotonic with
    /// run length).
    pub store_records_applied: u64,
    /// Commit records truncated below the certified low-water mark across
    /// every replica store.
    pub store_records_dropped: u64,
    /// Block puts elided by dedup across every replica store.
    pub dedup_hits: u64,
    /// Bytes those elided puts saved.
    pub dedup_bytes_saved: u64,
    /// Block reads served by the in-memory replica because the blob
    /// backend missed — 0 on a healthy backend (store-health oracle).
    pub store_fallback_reads: u64,
}

impl WorkloadReport {
    /// Whether the tier kept up: every offered write committed within the
    /// run. A `false` here at a given rate is the saturation point.
    pub fn kept_up(&self) -> bool {
        self.committed == self.offered
    }

    /// Bounded-memory oracle for the replica record log: no store's peak
    /// retained records may exceed the retention window (plus the
    /// uncertified in-flight tail) per addressed object.
    pub fn records_bounded(&self, objects: usize, slack: u64) -> bool {
        self.peak_retained_records
            <= objects as u64 * (oceanstore_replica::RECORD_RETENTION + slack)
    }
}

/// Sums replica-store health over every primary and secondary in the
/// deployment; `peak_retained_records` takes the per-store maximum (it is
/// a per-node memory bound, not a fleet total).
fn collect_store_health(dep: &Deployment) -> oceanstore_replica::StoreHealth {
    let mut total = oceanstore_replica::StoreHealth::default();
    let stores = dep
        .rings
        .iter()
        .flat_map(|r| r.primaries.iter())
        .filter_map(|&p| dep.sim.node(p).as_primary().map(|n| &n.store))
        .chain(
            dep.secondaries
                .iter()
                .filter_map(|&s| dep.sim.node(s).as_secondary().map(|n| &n.store)),
        );
    for store in stores {
        let h = store.health();
        total.objects += h.objects;
        total.retained_records += h.retained_records;
        total.peak_retained_records = total.peak_retained_records.max(h.peak_retained_records);
        total.total_records_applied += h.total_records_applied;
        total.records_dropped += h.records_dropped;
        total.blob_count += h.blob_count;
        total.blob_bytes += h.blob_bytes;
        total.dedup_hits += h.dedup_hits;
        total.dedup_bytes_saved += h.dedup_bytes_saved;
        total.fallback_reads += h.fallback_reads;
        total.blob_put_failures += h.blob_put_failures;
    }
    total
}

/// One scheduled arrival.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write { object: usize },
    Read { object: usize, secondary: usize },
}

/// The open-loop arrival schedule: Poisson arrivals (exponential
/// inter-arrival gaps) at `spec.rate`, each tagged with a Zipf-popular
/// object and a read/write coin. Generated up front so injection cannot
/// be back-pressured by the system under test.
fn arrival_schedule(spec: &WorkloadSpec) -> Vec<(SimTime, Op)> {
    let zipf = Zipf::new(spec.objects, spec.zipf_s);
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let horizon = spec.duration.as_micros() as f64 / 1e6;
    let mut schedule = Vec::new();
    let mut t = 0.0f64;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / spec.rate;
        if t >= horizon {
            return schedule;
        }
        let object = zipf.sample(&mut rng);
        let op = if rng.gen_range(0.0..1.0) < spec.write_fraction {
            Op::Write { object }
        } else {
            Op::Read { object, secondary: rng.gen_range(0..spec.secondaries) }
        };
        schedule.push((SimTime::ZERO + SimDuration::from_micros((t * 1e6) as u64), op));
    }
}

/// The object GUID of workload rank `i`.
fn object_guid(i: usize) -> Guid {
    Guid::from_label(&format!("wl-obj-{i}"))
}

/// Highest committed serialization index for `object` across the owning
/// ring's primaries — the authoritative frontier reads are judged against.
fn ring_frontier(dep: &Deployment, object: &Guid) -> u64 {
    dep.ring_for(object)
        .primaries
        .iter()
        .filter_map(|&p| dep.sim.node(p).as_primary())
        .filter_map(|prim| prim.store.get(object).map(|st| st.next_index))
        .max()
        .unwrap_or(0)
}

/// Nearest-rank percentile of an ascending latency sample: the value at
/// rank `⌈q · len⌉` (1-based, clamped to the sample). The previous
/// `((len − 1) · q).round()` interpolation over-reported the median (for
/// 10 samples it returned the 6th, not the 5th) and could under-report
/// tails on small samples; nearest-rank always answers with an observed
/// value at or above the requested quantile.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs one open-loop workload and reports throughput, latency, and the
/// no-loss oracle.
pub fn run_workload(spec: &WorkloadSpec) -> WorkloadReport {
    run_workload_with_coverage(spec).0
}

/// [`run_workload`] plus the simulator's parallel-coverage counters.
///
/// Coverage is returned *beside* the report, never inside it: the report
/// is asserted bit-identical across thread counts, while coverage
/// (windows scheduled, fallbacks taken, serial-fraction wall time)
/// legitimately varies with the thread count and the host.
pub fn run_workload_with_coverage(spec: &WorkloadSpec) -> (WorkloadReport, ParCoverage) {
    assert!(spec.rate > 0.0, "offered rate must be positive");
    assert!(
        (0.0..=1.0).contains(&spec.write_fraction),
        "write fraction must be a probability"
    );
    let mut dep = build_deployment(&DeploymentOpts {
        rings: spec.rings,
        m: spec.m,
        secondaries: spec.secondaries,
        clients: spec.clients,
        latency: spec.latency,
        seed: spec.seed,
        ..DeploymentOpts::default()
    });
    dep.sim.set_threads(spec.threads.max(1));
    let schedule = arrival_schedule(spec);

    // Drop-phase toggles, applied at exact simulated instants (not at the
    // nearest arrival) so the fault window is identical for every thread
    // count and arrival schedule.
    let toggles: Vec<(SimTime, f64)> = spec.drop_phase.map_or_else(Vec::new, |p| {
        assert!(p.start <= p.end, "drop phase must not end before it starts");
        vec![(SimTime::ZERO + p.start, p.prob), (SimTime::ZERO + p.end, 0.0)]
    });
    let mut next_toggle = 0usize;
    macro_rules! advance_to {
        ($to:expr) => {{
            let to = $to;
            while next_toggle < toggles.len() && toggles[next_toggle].0 <= to {
                let (at, prob) = toggles[next_toggle];
                dep.sim.run_until(at);
                dep.sim.set_drop_prob(prob);
                next_toggle += 1;
            }
            dep.sim.run_until(to);
        }};
    }

    // Inject the schedule. Writes rotate over the client population and
    // are tracked as (client node, request id, object rank) for outcome
    // collection; reads probe a secondary's committed view against the
    // owning ring's frontier at that instant.
    let mut submissions: Vec<(NodeId, RequestId, usize)> = Vec::new();
    let mut reads = 0u64;
    let mut stale_reads = 0u64;
    let mut next_client = 0usize;
    for (at, op) in schedule {
        advance_to!(at);
        match op {
            Op::Write { object } => {
                let client = dep.clients[next_client % dep.clients.len()];
                next_client += 1;
                let guid = object_guid(object);
                let marker = submissions.len() as u64;
                let update = Update::unconditional(vec![Action::Append {
                    ciphertext: marker.to_le_bytes().to_vec(),
                }]);
                let id = dep.sim.with_node_ctx(client, |node, ctx| {
                    node.as_client_mut().expect("client node").submit(ctx, guid, &update)
                });
                submissions.push((client, id, object));
            }
            Op::Read { object, secondary } => {
                let guid = object_guid(object);
                let have = dep
                    .sim
                    .node(dep.secondaries[secondary])
                    .as_secondary()
                    .expect("secondary node")
                    .store
                    .get(&guid)
                    .map_or(0, |st| st.next_index);
                reads += 1;
                if have < ring_frontier(&dep, &guid) {
                    stale_reads += 1;
                }
            }
        }
    }
    advance_to!(SimTime::ZERO + spec.duration + spec.drain);

    // Collect outcomes and run the no-loss oracle: each object's committed
    // count must be covered by serialization slots on its owning ring.
    let mut latencies = Vec::new();
    let mut pending = 0u64;
    let mut committed_per_object: HashMap<usize, u64> = HashMap::new();
    for &(client, id, object) in &submissions {
        let outcome =
            dep.sim.node(client).as_client().expect("client node").outcome(id).copied();
        match outcome {
            Some(o) => {
                latencies.push(o.committed_at.saturating_since(o.sent_at).as_micros());
                *committed_per_object.entry(object).or_default() += 1;
            }
            None => pending += 1,
        }
    }
    let lost: u64 = committed_per_object
        .iter()
        .map(|(&object, &count)| {
            count.saturating_sub(ring_frontier(&dep, &object_guid(object)))
        })
        .sum();
    latencies.sort_unstable();

    let offered = submissions.len() as u64;
    let committed = latencies.len() as u64;
    let window = spec.duration.as_micros() as f64 / 1e6;
    let store = collect_store_health(&dep);
    let coverage = dep.sim.par_coverage();
    let report = WorkloadReport {
        offered,
        committed,
        reads,
        stale_reads,
        lost,
        offered_per_sec: offered as f64 / window,
        committed_per_sec: committed as f64 / window,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        max_us: latencies.last().copied().unwrap_or(0),
        pending,
        peak_retained_records: store.peak_retained_records,
        store_records_applied: store.total_records_applied,
        store_records_dropped: store.records_dropped,
        dedup_hits: store.dedup_hits,
        dedup_bytes_saved: store.dedup_bytes_saved,
        store_fallback_reads: store.fallback_reads,
    };
    (report, coverage)
}

/// Runs `spec` at each offered rate in turn (same seed, fresh deployment
/// per rate) — the saturation sweep: committed-updates/s tracks the
/// offered rate until the tier saturates, then plateaus while tail
/// latency and pending counts blow up.
pub fn sweep(spec: &WorkloadSpec, rates: &[f64]) -> Vec<WorkloadReport> {
    rates
        .iter()
        .map(|&rate| run_workload(&WorkloadSpec { rate, ..spec.clone() }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        // Ten known samples: nearest-rank p50 is the 5th value (the old
        // rounding interpolation returned the 6th), and the tails pin to
        // the 10th.
        let v: Vec<u64> = (1..=10).map(|i| i * 10).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.90), 90);
        assert_eq!(percentile(&v, 0.99), 100);
        assert_eq!(percentile(&v, 0.999), 100);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.5), 0, "empty sample reports 0");
        assert_eq!(percentile(&[7], 0.5), 7);
        assert_eq!(percentile(&[7], 0.999), 7);
        let v = [1u64, 2, 3, 4];
        assert_eq!(percentile(&v, 0.0), 1, "q = 0 clamps to the minimum");
        assert_eq!(percentile(&v, 0.25), 1);
        assert_eq!(percentile(&v, 0.50), 2);
        assert_eq!(percentile(&v, 0.75), 3);
        assert_eq!(percentile(&v, 0.99), 4);
        assert_eq!(percentile(&v, 1.0), 4);
    }

    #[test]
    fn percentile_rank_five_of_a_thousand_nines() {
        // 1000 samples 0..1000: p999 must be the 999th rank, p50 the
        // 500th — exact nearest-rank indices at a size where an off-by-one
        // is visible.
        let v: Vec<u64> = (0..1000).collect();
        assert_eq!(percentile(&v, 0.50), 499);
        assert_eq!(percentile(&v, 0.99), 989);
        assert_eq!(percentile(&v, 0.999), 998);
    }

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            secondaries: 8,
            objects: 8,
            rate: 10.0,
            duration: SimDuration::from_secs(5),
            drain: SimDuration::from_secs(3),
            ..WorkloadSpec::default()
        }
    }

    #[test]
    fn underloaded_run_commits_everything() {
        let report = run_workload(&small_spec());
        assert!(report.offered > 20, "5 s at 10/s must offer real load");
        assert!(report.kept_up(), "underloaded tier fell behind: {report:?}");
        assert_eq!(report.lost, 0, "no-loss oracle");
        assert_eq!(report.pending, 0);
        assert!(report.p50_us > 0, "commit latency must be measurable");
        assert!(report.p99_us >= report.p50_us);
        assert!(report.p999_us >= report.p99_us);
        assert!(report.max_us >= report.p999_us);
    }

    #[test]
    fn runs_are_deterministic() {
        assert_eq!(run_workload(&small_spec()), run_workload(&small_spec()));
    }

    #[test]
    fn report_is_identical_at_any_thread_count() {
        let sequential = run_workload(&small_spec());
        for threads in [2usize, 8] {
            let parallel = run_workload(&WorkloadSpec { threads, ..small_spec() });
            assert_eq!(parallel, sequential, "threads={threads} changed the report");
        }
    }

    #[test]
    fn read_write_mix_produces_reads() {
        let spec = WorkloadSpec { write_fraction: 0.5, ..small_spec() };
        let report = run_workload(&spec);
        assert!(report.reads > 5, "half the arrivals must be reads");
        assert!(report.offered > 5, "half the arrivals must be writes");
        assert!(report.stale_reads <= report.reads);
    }

    #[test]
    fn sharded_run_commits_across_rings() {
        let spec = WorkloadSpec { rings: 4, secondaries: 15, ..small_spec() };
        let report = run_workload(&spec);
        assert!(report.kept_up(), "4-ring tier fell behind: {report:?}");
        assert_eq!(report.lost, 0);
    }

    #[test]
    fn overload_is_visible_as_saturation() {
        // Far beyond a single ring's service rate at this latency: the
        // queue grows without bound during the window (commit latency is
        // hundreds of ms against a ~66 ms unloaded baseline) and the
        // bounded drain cannot absorb the backlog.
        let spec = WorkloadSpec {
            rate: 2_000.0,
            duration: SimDuration::from_secs(2),
            drain: SimDuration::from_millis(250),
            write_fraction: 1.0,
            ..small_spec()
        };
        let report = run_workload(&spec);
        assert!(report.offered > 3_000);
        assert!(
            !report.kept_up(),
            "an open-loop overload must saturate: {report:?}"
        );
        assert!(
            report.p99_us > 250_000,
            "overload must show queueing in the tail: {report:?}"
        );
        assert_eq!(report.lost, 0, "saturation must not lose committed updates");
        assert_eq!(report.committed + report.pending, report.offered);
    }

    #[test]
    fn long_horizon_record_log_stays_bounded() {
        // Hammer two objects with writes only, long enough that each
        // object certifies several retention windows' worth of commits:
        // the record log must truncate (drops observed, totals far above
        // what any store retains) while committed data stays lossless.
        let spec = WorkloadSpec {
            secondaries: 8,
            objects: 2,
            zipf_s: 0.0,
            write_fraction: 1.0,
            rate: 40.0,
            duration: SimDuration::from_secs(20),
            drain: SimDuration::from_secs(4),
            ..WorkloadSpec::default()
        };
        let report = run_workload(&spec);
        assert!(report.offered > 600, "20 s at 40/s must offer real load");
        assert_eq!(report.lost, 0, "truncation must never lose committed updates");
        assert!(
            report.store_records_applied > report.offered * 4,
            "every commit lands on 4 primaries and 8 secondaries; the fleet \
             total must dwarf the offered count"
        );
        assert!(report.store_records_dropped > 0, "long run must actually truncate");
        assert!(
            report.records_bounded(spec.objects, 64),
            "replica memory unbounded: peak {} retained records",
            report.peak_retained_records
        );
        assert_eq!(report.store_fallback_reads, 0, "healthy backend serves all blocks");
    }

    #[test]
    fn parallel_drop_phase_keeps_report_identical_and_stays_parallel() {
        // A mid-run drop burst must not change the report at any thread
        // count (counter-mode drop verdicts) and must not knock the
        // scheduler off the parallel path (the old engine-RNG scheme
        // forced a sequential fallback here).
        let spec = WorkloadSpec {
            drop_phase: Some(DropPhase {
                start: SimDuration::from_secs(1),
                end: SimDuration::from_secs(3),
                prob: 0.1,
            }),
            ..small_spec()
        };
        let (seq_report, seq_cov) = run_workload_with_coverage(&spec);
        assert_eq!(seq_cov, ParCoverage::default(), "threads=1 must never shard");
        assert_eq!(seq_report.lost, 0, "drop burst must not lose committed updates");
        for threads in [2usize, 8] {
            let (report, cov) =
                run_workload_with_coverage(&WorkloadSpec { threads, ..spec.clone() });
            assert_eq!(report, seq_report, "threads={threads} changed the report");
            assert!(
                cov.windows_parallel + cov.windows_inline > 0,
                "threads={threads}: no parallel windows scheduled"
            );
            assert_eq!(
                cov.fallback_entries, 0,
                "threads={threads}: drop burst forced a sequential fallback"
            );
        }
    }

    /// Scale-out smoke at the paper's target node counts. Ignored by
    /// default (minutes of wall clock); CI runs the 500-node smoke binary
    /// instead, and `cargo test -p oceanstore-workload -- --ignored`
    /// exercises this one.
    #[test]
    #[ignore = "10k-node run; minutes of wall clock"]
    fn ten_thousand_node_run_commits() {
        let spec = WorkloadSpec {
            rings: 4,
            secondaries: 10_000,
            clients: 4,
            objects: 64,
            rate: 30.0,
            duration: SimDuration::from_secs(5),
            drain: SimDuration::from_secs(4),
            ..WorkloadSpec::default()
        };
        let report = run_workload(&spec);
        assert!(report.kept_up(), "10k-node tier fell behind: {report:?}");
        assert_eq!(report.lost, 0);
    }
}
