//! CI smoke for the scale-out path: a 2-ring, 500-node deployment driven
//! at three offered rates, with the no-committed-update-loss oracle
//! enforced at every rate. Exits non-zero if the oracle fails or if the
//! tier cannot keep up at the lowest (clearly feasible) rate.

use oceanstore_sim::SimDuration;
use oceanstore_workload::{run_workload, WorkloadSpec};

fn main() {
    // 2 rings × 4 primaries + 488 secondaries + 4 clients = 500 nodes.
    let spec = WorkloadSpec {
        rings: 2,
        m: 1,
        secondaries: 488,
        clients: 4,
        objects: 32,
        zipf_s: 0.9,
        write_fraction: 0.8,
        rate: 0.0, // set per sweep point below
        duration: SimDuration::from_secs(8),
        drain: SimDuration::from_secs(4),
        latency: SimDuration::from_millis(20),
        seed: 7,
        // The schedule is identical at any worker count, so the smoke can
        // use whatever cores CI has (env `WORKLOAD_THREADS` overrides).
        threads: std::env::var("WORKLOAD_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(1)
            }),
        drop_phase: None,
    };
    let rates = [5.0, 20.0, 60.0];
    let mut failed = false;
    // The blob backend is picked up from the environment by every
    // node-local store (`OCEANSTORE_STORE_BACKEND`); the CI matrix runs
    // this smoke once per backend.
    let backend = std::env::var("OCEANSTORE_STORE_BACKEND").unwrap_or_else(|_| "memory".into());
    println!("workload-smoke: rings=2 nodes=500 duration=8s drain=4s backend={backend}");
    println!(
        "{:>8} {:>9} {:>10} {:>12} {:>9} {:>9} {:>9} {:>6} {:>9} {:>9}",
        "rate/s", "offered", "committed", "committed/s", "p50_ms", "p99_ms", "p999_ms", "lost",
        "peak_rec", "dropped"
    );
    for rate in rates {
        let report = run_workload(&WorkloadSpec { rate, ..spec.clone() });
        println!(
            "{:>8.1} {:>9} {:>10} {:>12.2} {:>9.2} {:>9.2} {:>9.2} {:>6} {:>9} {:>9}",
            rate,
            report.offered,
            report.committed,
            report.committed_per_sec,
            report.p50_us as f64 / 1e3,
            report.p99_us as f64 / 1e3,
            report.p999_us as f64 / 1e3,
            report.lost,
            report.peak_retained_records,
            report.store_records_dropped,
        );
        if report.lost != 0 {
            eprintln!("FAIL: rate {rate}: {} committed updates lost", report.lost);
            failed = true;
        }
        if rate == rates[0] && !report.kept_up() {
            eprintln!(
                "FAIL: rate {rate}: tier fell behind a clearly feasible load \
                 ({}/{} committed)",
                report.committed, report.offered
            );
            failed = true;
        }
        // Bounded replica record logs: no store may retain more than one
        // retention window (plus in-flight slack) per object.
        if !report.records_bounded(spec.objects, 64) {
            eprintln!(
                "FAIL: rate {rate}: record log unbounded (peak {} retained records)",
                report.peak_retained_records
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("workload-smoke: OK");
}
