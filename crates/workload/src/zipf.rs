//! Zipf-distributed object popularity.
//!
//! OceanStore's motivating workloads (shared file systems, groupware) are
//! heavily skewed: a few hot objects take most of the traffic while a long
//! tail stays almost cold. The generator models that with a Zipf law over
//! the object ranks — rank `i` (1-based) is drawn with probability
//! proportional to `1 / i^s`.

use rand::Rng;

/// A precomputed Zipf sampler over `n` ranks with exponent `s`.
///
/// Sampling is a binary search over the cumulative mass, so one draw costs
/// `O(log n)` and a single `f64` from the RNG — cheap enough to drive
/// millions of arrivals deterministically.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probability mass, `cdf[i]` = P(rank <= i+1).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over ranks `0..n` with exponent `s` (`s = 0` is
    /// uniform; larger `s` is more skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 1..=n {
            total += 1.0 / (i as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `0..n` (0 is the most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never: construction requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn skewed_draws_favor_low_ranks() {
        let zipf = Zipf::new(100, 1.1);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 dominates and the head outweighs the tail.
        assert!(counts[0] > counts[10], "head rank must beat rank 10");
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[90..].iter().sum();
        assert!(head > 10 * tail.max(1), "head must dwarf the tail");
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((3_500..6_500).contains(&c), "uniform draw out of band: {c}");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let zipf = Zipf::new(64, 0.9);
        let draw = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..256).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }
}
